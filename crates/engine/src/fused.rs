//! The fused pass driver: one sweep per pass stage, feeding every
//! in-flight copy.
//!
//! Under counter-mode randomness both estimators expose their copies as
//! resumable stage objects ([`degentri_core::MainCopyStages`],
//! [`degentri_dynamic::DynamicCopyStages`]): `begin_pass → fold(batch) →
//! finish_pass`. Per-copy scheduling executes `passes` sweeps *per copy* —
//! with 4+ copies per job the dominant cost is re-streaming the same
//! snapshot slice copy after copy. This driver inverts the loop nest:
//! each pass stage is **one** sweep over the snapshot that dispatches
//! every copy's fold on each chunk, so snapshot traversal, chunk dispatch
//! and memory bandwidth are paid once per cohort (a chunk is still hot in
//! cache when the second copy folds it), collapsing `passes × copies`
//! sweeps into `passes`.
//!
//! Results are **bit-identical** to per-copy scheduling: the driver calls
//! the same stage methods with the same chunk positions, and every pass's
//! per-shard accumulators merge associatively in shard order — so fusing,
//! sharding and cohort grouping change wall-clock time only (asserted
//! across the full copies × shards × workers sweep in
//! `crates/engine/tests/fused_parity.rs`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use degentri_core::faults;
use degentri_core::{
    IdealCopyStages, IdealStageAcc, MainCohortPlan, MainCohortScratch, MainCopyStages,
    MainStageAcc, SequentialCopyStages,
};
use degentri_dynamic::{DynamicCohortPlan, DynamicCopyStages, DynamicStageAcc};
use degentri_graph::Edge;
use degentri_obs::{Counter, Hist, Recorder, ShardReport, Span};
use degentri_stream::{EdgeUpdate, QueueScope, ShardedSnapshot, StreamStats, TaskResult};

use crate::cancel::CancelToken;
use crate::{EngineError, Result};

/// One pass of a fused cohort as the driver observed it: plan-build and
/// sweep wall times plus the per-shard breakdown, in shard order. Collected
/// only when the recorder is enabled (the vector stays empty under
/// [`degentri_obs::NoopRecorder`]) and assembled into
/// [`degentri_obs::PassReport`]s by the scheduler.
#[derive(Debug, Clone, Default)]
pub(crate) struct PassTrace {
    /// Pass index within the cohort's budget.
    pub pass: usize,
    /// Nanoseconds spent building the cohort's union probe structures.
    pub plan_nanos: u64,
    /// Nanoseconds of the fused sweep (fold + shard merge hand-off).
    pub sweep_nanos: u64,
    /// Per-shard items and busy time; one synthetic shard when unsharded.
    pub shards: Vec<ShardReport>,
}

/// A copy executable by the fused driver: the engine-facing facade over
/// the estimator crates' stage objects.
pub(crate) trait StagedCopy: Send + Sync + Sized {
    /// The snapshot item type (an edge or a signed update).
    type Item: Copy + Send + Sync;
    /// The opaque per-pass fold accumulator.
    type Acc: Send;
    /// Cohort-level union structures for the current pass (see
    /// [`plan_pass`](StagedCopy::plan_pass)); `()` when the copy type has
    /// no cross-copy probe sharing.
    type Plan: Send + Sync;
    /// Per-sweeping-thread scratch for the cohort fold (hit buffers for
    /// the branchless collect-then-apply fan-out); `()` when the copy type
    /// needs none. The driver allocates one per shard closure and reuses
    /// it across chunks and passes.
    type Scratch: Default + Send;

    fn finished(&self) -> bool;
    fn pass_index(&self) -> usize;
    fn begin_pass(&self) -> Self::Acc;
    fn finish_pass(&mut self, accs: Vec<Self::Acc>) -> Result<()>;
    fn record_pass_nanos(&mut self, pass: usize, nanos: u64);

    /// Builds the cohort's shared probe structures for the current pass.
    /// The default has none.
    fn plan_pass(copies: &[Self]) -> Self::Plan;

    /// Whether the cohort's copies share probe structures through the
    /// plan **on this pass**. When `false`, the unsharded sweep drives the
    /// copies one at a time — begin, fold the whole slice, finish — so
    /// each copy's pass state is freed before the next copy's is built:
    /// the peak working set stays one copy wide and the allocator hands
    /// the next copy the pages the previous one just released. When
    /// `true`, the fused sweep consults the pass's union plan once per
    /// item and fans out to the hitting copies. Bit-identical either way —
    /// independent copies never read each other's state and the folds are
    /// order-insensitive. Pass-dependent because the turnstile copies mix
    /// both shapes: their sorted-table passes share a union key table
    /// while their sketch passes fold private banks.
    fn shares_probes(pass: usize) -> bool {
        let _ = pass;
        true
    }

    /// Copy-interleave granularity for fused sweeps over a slice of
    /// `slice_len` items: the sweep folds this many items into every copy
    /// before moving to the next chunk. Copy types with shared union
    /// probes keep the configured batch (the shared lookups of a chunk
    /// stay cache-hot across copies); copy types whose cohort fold is an
    /// independent per-copy loop override this to the whole slice, so each
    /// copy's sketch working set stays resident instead of every chunk
    /// boundary evicting it with the other copies' state (this matters in
    /// the sharded arm, where copies still fold side by side). Either
    /// granularity is bit-identical — the folds are order-insensitive and
    /// each copy's accumulator sees exactly the same updates.
    fn cohort_batch(batch: usize, slice_len: usize) -> usize {
        let _ = slice_len;
        batch
    }

    /// Folds one chunk into every copy's accumulator through the plan.
    /// The default is the plain per-copy loop; implementations with union
    /// probe structures replace the `copies` independent lookups per item
    /// with one shared lookup that fans out to the hitting copies —
    /// bit-identical, since each copy receives exactly the updates its own
    /// fold would have produced.
    fn fold_cohort(
        plan: &Self::Plan,
        copies: &[Self],
        accs: &mut [Self::Acc],
        scratch: &mut Self::Scratch,
        pos: u64,
        chunk: &[Self::Item],
    );

    /// Folds one chunk into this copy alone — the per-copy reference path
    /// the fused fold mirrors bit for bit. The containment fallback uses
    /// it to re-execute a panicked fused sweep copy by copy (sound and
    /// repeatable because folds take `&self` and are deterministic), and
    /// the no-shared-probes serial arm uses it directly.
    fn fold_one(&self, acc: &mut Self::Acc, pos: u64, chunk: &[Self::Item]);
}

impl StagedCopy for MainCopyStages {
    type Item = Edge;
    type Acc = MainStageAcc;
    type Plan = MainCohortPlan;
    type Scratch = MainCohortScratch;

    fn finished(&self) -> bool {
        MainCopyStages::finished(self)
    }

    fn pass_index(&self) -> usize {
        MainCopyStages::pass_index(self)
    }

    fn begin_pass(&self) -> MainStageAcc {
        MainCopyStages::begin_pass(self)
    }

    fn finish_pass(&mut self, accs: Vec<MainStageAcc>) -> Result<()> {
        MainCopyStages::finish_pass(self, accs).map_err(crate::EngineError::from)
    }

    fn record_pass_nanos(&mut self, pass: usize, nanos: u64) {
        MainCopyStages::set_pass_nanos(self, pass, nanos)
    }

    fn plan_pass(copies: &[Self]) -> MainCohortPlan {
        MainCopyStages::plan_cohort(copies)
    }

    fn fold_cohort(
        plan: &MainCohortPlan,
        copies: &[Self],
        accs: &mut [MainStageAcc],
        scratch: &mut MainCohortScratch,
        pos: u64,
        chunk: &[Edge],
    ) {
        MainCopyStages::fold_cohort(plan, copies, accs, scratch, pos, chunk)
    }

    fn fold_one(&self, acc: &mut MainStageAcc, pos: u64, chunk: &[Edge]) {
        MainCopyStages::fold(self, acc, pos, chunk)
    }
}

impl StagedCopy for DynamicCopyStages {
    type Item = EdgeUpdate;
    type Acc = DynamicStageAcc;
    type Plan = DynamicCohortPlan;
    type Scratch = ();

    fn finished(&self) -> bool {
        DynamicCopyStages::finished(self)
    }

    fn pass_index(&self) -> usize {
        DynamicCopyStages::pass_index(self)
    }

    fn begin_pass(&self) -> DynamicStageAcc {
        DynamicCopyStages::begin_pass(self)
    }

    fn finish_pass(&mut self, accs: Vec<DynamicStageAcc>) -> Result<()> {
        DynamicCopyStages::finish_pass(self, accs).map_err(crate::EngineError::from)
    }

    fn record_pass_nanos(&mut self, pass: usize, nanos: u64) {
        DynamicCopyStages::set_pass_nanos(self, pass, nanos)
    }

    fn plan_pass(copies: &[Self]) -> DynamicCohortPlan {
        DynamicCopyStages::plan_cohort(copies)
    }

    fn shares_probes(pass: usize) -> bool {
        // The sorted-table passes (degrees, closure) fuse N copies'
        // lookups into one union binary search per update; the ℓ0 sketch
        // passes keep private banks per copy.
        DynamicCopyStages::shares_probes(pass)
    }

    fn cohort_batch(_batch: usize, slice_len: usize) -> usize {
        // On the sketch passes the cohort fold is an independent per-copy
        // loop, so chunk-interleaving the copies only evicts each bank's
        // sketch and touch-cache working set at every chunk boundary; on
        // the union passes the fold walks the chunk once for the whole
        // cohort, so granularity is cache-neutral. Whole-slice chunks are
        // right (or neutral) for every pass.
        slice_len
    }

    fn fold_cohort(
        plan: &DynamicCohortPlan,
        copies: &[Self],
        accs: &mut [DynamicStageAcc],
        _scratch: &mut (),
        pos: u64,
        chunk: &[EdgeUpdate],
    ) {
        DynamicCopyStages::fold_cohort(plan, copies, accs, pos, chunk)
    }

    fn fold_one(&self, acc: &mut DynamicStageAcc, pos: u64, chunk: &[EdgeUpdate]) {
        DynamicCopyStages::fold(self, acc, pos, chunk)
    }
}

/// One ideal-estimator **job** as a cohort member: the 3-pass stage object
/// internally fuses all of the job's copies (its accumulators hold every
/// copy's pick cell), so a cohort of ideal members shares each snapshot
/// sweep across jobs and each member's fold fans the chunk out to its own
/// copies. No cross-member probe structures exist (`Plan = ()`), but the
/// members still share the sweep — `shares_probes` stays `true` so the
/// driver feeds them all from one traversal.
impl<'o> StagedCopy for IdealCopyStages<'o, StreamStats> {
    type Item = Edge;
    type Acc = IdealStageAcc;
    type Plan = ();
    type Scratch = ();

    fn finished(&self) -> bool {
        IdealCopyStages::finished(self)
    }

    fn pass_index(&self) -> usize {
        IdealCopyStages::pass_index(self)
    }

    fn begin_pass(&self) -> IdealStageAcc {
        IdealCopyStages::begin_pass(self)
    }

    fn finish_pass(&mut self, accs: Vec<IdealStageAcc>) -> Result<()> {
        IdealCopyStages::finish_pass(self, accs).map_err(crate::EngineError::from)
    }

    fn record_pass_nanos(&mut self, pass: usize, nanos: u64) {
        IdealCopyStages::set_pass_nanos(self, pass, nanos)
    }

    fn plan_pass(_copies: &[Self]) -> Self::Plan {}

    fn fold_cohort(
        _plan: &(),
        copies: &[Self],
        accs: &mut [IdealStageAcc],
        _scratch: &mut (),
        pos: u64,
        chunk: &[Edge],
    ) {
        for (stages, acc) in copies.iter().zip(accs.iter_mut()) {
            stages.fold(acc, pos, chunk);
        }
    }

    fn fold_one(&self, acc: &mut IdealStageAcc, pos: u64, chunk: &[Edge]) {
        IdealCopyStages::fold(self, acc, pos, chunk)
    }
}

/// The sweep-execution substrate of the fused drivers: where a sharded
/// sweep's per-shard closures actually run. The engine's single work queue
/// ([`QueueScope`]) implements it by pushing the shards to the front of
/// the shared queue — cohort sweeps and per-copy tasks then interleave on
/// one worker pool instead of draining in separate phases.
pub(crate) trait SweepPool {
    /// Runs `count` indexed shard closures to completion and returns each
    /// shard's outcome (panics caught per shard) and busy nanoseconds, in
    /// shard order.
    fn sweep_shards<T, F>(&mut self, count: usize, fold: F) -> Vec<(TaskResult<T>, u64)>
    where
        T: Send,
        F: Fn(usize) -> T + Sync;
}

impl<W> SweepPool for QueueScope<'_, '_, W> {
    fn sweep_shards<T, F>(&mut self, count: usize, fold: F) -> Vec<(TaskResult<T>, u64)>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        QueueScope::run_shards(self, count, fold)
    }
}

/// The reference substrate for exercising the [`SweepPool`] contract in
/// isolation: every shard runs inline on the calling thread, under the
/// same per-shard panic boundary the queued pool provides.
#[cfg(test)]
pub(crate) struct InlineSweeps;

#[cfg(test)]
impl SweepPool for InlineSweeps {
    fn sweep_shards<T, F>(&mut self, count: usize, fold: F) -> Vec<(TaskResult<T>, u64)>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        (0..count)
            .map(|s| {
                let started = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| fold(s)));
                (result, started.elapsed().as_nanos() as u64)
            })
            .collect()
    }
}

/// Re-nests shard-major accumulators (`per_shard[s][k]`) into copy-major
/// (`per_copy[k][s]`), preserving shard order within each copy — the
/// order [`StagedCopy::finish_pass`] requires.
fn transpose<T>(per_shard: Vec<Vec<T>>, copies: usize) -> Vec<Vec<T>> {
    let shards = per_shard.len();
    let mut per_copy: Vec<Vec<T>> = (0..copies).map(|_| Vec::with_capacity(shards)).collect();
    for shard_accs in per_shard {
        for (k, acc) in shard_accs.into_iter().enumerate() {
            per_copy[k].push(acc);
        }
    }
    per_copy
}

/// Containment metadata carried alongside each cohort member, index-aligned
/// with the copies vector (the driver evicts both in sync).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CohortMemberMeta {
    /// Index of the job this copy belongs to — containment's default
    /// failure unit: when any copy of a group fails, the whole group is
    /// evicted, unless the member is [`contained`](Self::contained).
    pub group: usize,
    /// The copy's index within its job (per-copy seed index), used by the
    /// scheduler to keep fold-back ordering after evictions.
    pub copy: usize,
    /// Absolute deadline of the copy's job, when it has one.
    pub deadline: Option<Instant>,
    /// The copy's fault-injection key — its per-copy seed, so the same key
    /// addresses the copy on every execution tier.
    pub fault_key: u64,
    /// Copy-level containment: when `true` (the member's job has a retry
    /// policy or a degradation-accepting quorum), a fault of this member
    /// evicts **only this member** — recorded in
    /// [`CohortOutcome::copy_failures`] — and its group keeps running.
    /// Deadlines and cancellation stay group-level either way (lockstep
    /// cohort copies are all equally late).
    pub contained: bool,
}

/// What [`drive_cohort`] did: completed sweeps, copies evicted by
/// containment, and the first error of each failed group (in eviction
/// order).
#[derive(Debug, Default)]
pub(crate) struct CohortOutcome {
    /// Completed shared sweeps (aborted sweeps are not counted, keeping
    /// `edges_streamed = sweeps × snapshot_len` an upper bound of what a
    /// cut run actually streamed).
    pub sweeps: u64,
    /// Copies removed from the cohort by evictions (group or copy level).
    pub evicted: usize,
    /// `(group, first error)` per failed group.
    pub failures: Vec<(usize, EngineError)>,
    /// `(group, copy, error)` per contained copy-level eviction: the
    /// member alone left the cohort; its group's survivors kept running
    /// (feeds the scheduler's retry/degradation layer).
    pub copy_failures: Vec<(usize, usize, EngineError)>,
    /// Measured thread-busy nanoseconds of the cohort's sweeps: the sum of
    /// per-shard fold times in the sharded arms, sweep wall time in the
    /// serial arms — the fused side of the engine's per-tier attribution.
    pub busy_nanos: u64,
}

/// Whether `group` already failed during the current pass.
fn doomed(failures: &[(usize, EngineError)], group: usize) -> bool {
    failures.iter().any(|(g, _)| *g == group)
}

/// Whether member `k` should skip the rest of the current pass: it failed
/// itself, or a **non-contained** member of its group failed (dooming the
/// whole group). A contained sibling's failure never dooms survivors.
/// `failures` is keyed by member index, valid because evictions only
/// happen at pass boundaries.
fn member_doomed(failures: &[(usize, EngineError)], meta: &[CohortMemberMeta], k: usize) -> bool {
    failures
        .iter()
        .any(|&(j, _)| j == k || (meta[j].group == meta[k].group && !meta[j].contained))
}

/// Evicts the single `(group, copy)` member, recording a copy-level
/// failure. Survivor order is preserved.
fn evict_copy<C>(
    copies: &mut Vec<C>,
    meta: &mut Vec<CohortMemberMeta>,
    outcome: &mut CohortOutcome,
    group: usize,
    copy: usize,
    error: EngineError,
) {
    if let Some(k) = meta
        .iter()
        .position(|mm| mm.group == group && mm.copy == copy)
    {
        copies.remove(k);
        meta.remove(k);
        outcome.evicted += 1;
    }
    outcome.copy_failures.push((group, copy, error));
}

/// Resolves one pass's member-indexed failures into evictions: failures of
/// non-contained members evict their whole group (first error wins);
/// failures of contained members evict just that copy, unless the group
/// was fatally evicted in the same batch. Member indices stay valid until
/// the first eviction, so identities are resolved before any removal.
fn resolve_failures<C>(
    copies: &mut Vec<C>,
    meta: &mut Vec<CohortMemberMeta>,
    outcome: &mut CohortOutcome,
    failures: Vec<(usize, EngineError)>,
) {
    let mut group_fatal: Vec<(usize, EngineError)> = Vec::new();
    let mut copy_level: Vec<(usize, usize, EngineError)> = Vec::new();
    for (k, error) in failures {
        let mm = meta[k];
        if mm.contained {
            copy_level.push((mm.group, mm.copy, error));
        } else if !doomed(&group_fatal, mm.group) {
            group_fatal.push((mm.group, error));
        }
    }
    for (group, error) in group_fatal {
        evict_group(copies, meta, outcome, group, error);
    }
    for (group, copy, error) in copy_level {
        if doomed(&outcome.failures, group) {
            continue;
        }
        evict_copy(copies, meta, outcome, group, copy, error);
    }
}

/// Evicts every copy of `group` from the cohort, recording the group's
/// first error. Survivor order is preserved, so per-job fold-back ordering
/// is unaffected.
fn evict_group<C>(
    copies: &mut Vec<C>,
    meta: &mut Vec<CohortMemberMeta>,
    outcome: &mut CohortOutcome,
    group: usize,
    error: EngineError,
) {
    if !doomed(&outcome.failures, group) {
        outcome.failures.push((group, error));
    }
    let mut k = 0;
    while k < copies.len() {
        if meta[k].group == group {
            copies.remove(k);
            meta.remove(k);
            outcome.evicted += 1;
        } else {
            k += 1;
        }
    }
}

/// Evicts every remaining group with a clone of `error` (cancellation).
fn fail_all<C>(
    copies: &mut Vec<C>,
    meta: &mut Vec<CohortMemberMeta>,
    outcome: &mut CohortOutcome,
    error: &EngineError,
) {
    while let Some(mm) = meta.first() {
        let group = mm.group;
        evict_group(copies, meta, outcome, group, error.clone());
    }
}

/// Executes one copy's pass fold under a panic boundary: begin, fold the
/// whole slice chunk by chunk via [`StagedCopy::fold_one`], return the
/// accumulator (or the panic payload). `AssertUnwindSafe` is sound because
/// folds take `&self` — an unwinding fold cannot tear the copy, only the
/// local accumulator, which is discarded with the `Err`.
fn fold_copy_caught<C: StagedCopy>(
    copy: &C,
    batch: usize,
    items: &[C::Item],
    cancel: &CancelToken,
) -> std::thread::Result<C::Acc> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut acc = copy.begin_pass();
        let chunk_len = C::cohort_batch(batch, items.len()).max(1);
        let mut pos = 0u64;
        for chunk in items.chunks(chunk_len) {
            if cancel.is_cancelled() {
                break;
            }
            copy.fold_one(&mut acc, pos, chunk);
            pos += chunk.len() as u64;
        }
        acc
    }))
}

/// Finishes one copy's pass under a panic boundary. `AssertUnwindSafe` is
/// sound because a panicking `finish_pass` (`&mut self`) may tear the copy,
/// but the caller evicts the copy's whole group on `Err` — the torn state
/// is never observed again.
fn finish_copy_caught<C: StagedCopy>(
    copy: &mut C,
    accs: Vec<C::Acc>,
) -> std::thread::Result<Result<()>> {
    catch_unwind(AssertUnwindSafe(move || copy.finish_pass(accs)))
}

/// Executes one cohort of staged copies over a shared snapshot slice:
/// while any copy has passes left, run **one sweep** that feeds every
/// unfinished copy's fold chunk by chunk — sharded across `workers` scoped
/// threads (over `shards` contiguous shards) when `workers > 1`. Cohorts
/// without shared probes ([`StagedCopy::SHARES_PROBES`] = `false`) drive
/// each sweep copy-at-a-time instead, keeping one copy's pass state live
/// at a time.
///
/// ## Failure containment
///
/// Failures are contained at **group** (job) granularity, never at run
/// granularity:
///
/// * A copy that panics or returns an error — in a fold, a `finish_pass`,
///   or an injected pass-boundary fault — evicts its whole group from the
///   cohort: the group's copies leave `copies`/`meta`, the next pass's
///   plan is rebuilt from the survivors only, and the group's first error
///   is reported in the returned [`CohortOutcome`].
/// * Members with [`CohortMemberMeta::contained`] set shrink that unit to
///   the **copy**: only the faulting member is evicted (reported in
///   [`CohortOutcome::copy_failures`]) and its group's survivors keep
///   running in lockstep — eviction removes the member's stage object
///   outright, so a partially-folded pass state can never reach
///   `finish_pass` or the job's aggregate. Deadlines and cancellation
///   remain group-level: lockstep copies are all equally late.
/// * When a **shared** fused sweep panics, the driver cannot tell which
///   copy unwound, so it re-executes the pass copy by copy through
///   [`StagedCopy::fold_one`] under per-copy panic boundaries. This is
///   sound and bit-identical because folds take `&self` and are
///   deterministic — the per-copy path is exactly the reference semantics
///   the fused fold mirrors.
/// * Survivors are **bit-identical** to a run that never contained the
///   failed group: per-copy randomness is position-keyed (counter mode),
///   so a copy's accumulators are a pure function of its own seed and the
///   chunk positions, independent of which other copies share the sweep.
/// * Expired group deadlines evict at pass boundaries
///   ([`EngineError::DeadlineExceeded`] with the completed pass count);
///   a fired [`CancelToken`] fails every remaining group at the next
///   pass/chunk boundary ([`EngineError::Cancelled`]) and aborts the
///   in-flight sweep without counting it.
///
/// All copies of a cohort have the same pass budget, so survivors stay in
/// lockstep and, absent failures, the sweep count equals that budget.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_cohort<C: StagedCopy, R: Recorder, P: SweepPool>(
    copies: &mut Vec<C>,
    meta: &mut Vec<CohortMemberMeta>,
    cancel: &CancelToken,
    num_vertices: usize,
    items: &[C::Item],
    batch: usize,
    workers: usize,
    shards: usize,
    recorder: &R,
    lane: usize,
    trace: &mut Vec<PassTrace>,
    pool: &mut P,
) -> CohortOutcome {
    debug_assert_eq!(copies.len(), meta.len());
    let mut outcome = CohortOutcome::default();
    let batch = batch.max(1);
    // Cohort copies share a pass budget, so they run in lockstep: every
    // sweep advances every surviving copy by one pass.
    while copies.iter().any(|c| !c.finished()) {
        debug_assert!(
            copies.iter().all(|c| !c.finished()),
            "cohort copies run in lockstep"
        );
        let completed = copies[0].pass_index();
        if cancel.is_cancelled() {
            fail_all(
                copies,
                meta,
                &mut outcome,
                &EngineError::Cancelled {
                    completed_passes: completed,
                },
            );
            break;
        }
        // One clock read per pass covers every group's deadline.
        let now = Instant::now();
        let mut expired: Vec<usize> = Vec::new();
        for mm in meta.iter() {
            if mm.deadline.is_some_and(|d| now >= d) && !expired.contains(&mm.group) {
                expired.push(mm.group);
            }
        }
        for group in expired {
            evict_group(
                copies,
                meta,
                &mut outcome,
                group,
                EngineError::DeadlineExceeded {
                    completed_passes: completed,
                },
            );
        }
        if copies.is_empty() {
            break;
        }
        // Pass-boundary fault probes, one per copy, keyed by the copy's
        // seed. An injected panic is contained to the probed copy's group
        // — or to the copy alone when the member opted into copy-level
        // containment.
        if faults::ENABLED {
            let mut hit: Vec<(usize, EngineError)> = Vec::new();
            for (k, mm) in meta.iter().enumerate() {
                let probed = catch_unwind(AssertUnwindSafe(|| {
                    faults::probe(faults::FaultSite::PassBoundary, mm.fault_key)
                }));
                if let Err(payload) = probed {
                    hit.push((k, EngineError::panicked(k, payload)));
                }
            }
            resolve_failures(copies, meta, &mut outcome, hit);
            if copies.is_empty() {
                break;
            }
        }
        let pass = copies[0].pass_index();
        let plan_started = Instant::now();
        let plan = C::plan_pass(copies);
        let plan_nanos = if R::ENABLED {
            plan_started.elapsed().as_nanos() as u64
        } else {
            0
        };
        let started = Instant::now();
        let mut shard_reports: Vec<ShardReport> = Vec::new();
        let mut pass_failures: Vec<(usize, EngineError)> = Vec::new();
        // `None` when the arm finishes copies inline (serial, no shared
        // probes); `Some(per-copy fold results)` otherwise, finished below
        // once the sweep clock stops.
        let mut copy_busy_nanos = 0u64;
        let per_copy: Option<Vec<std::thread::Result<Vec<C::Acc>>>> = if !C::shares_probes(pass)
            && workers <= 1
        {
            // Independent copies (no shared plan): drive them one at a
            // time — begin, fold the whole slice, finish — so only one
            // copy's pass state is live at once. Each copy's pass time
            // includes its finish, matching the per-copy driver's clock.
            for (k, copy) in copies.iter_mut().enumerate() {
                if member_doomed(&pass_failures, meta, k) {
                    continue;
                }
                if cancel.is_cancelled() {
                    break;
                }
                let copy_started = Instant::now();
                match fold_copy_caught(copy, batch, items, cancel) {
                    Err(payload) => pass_failures.push((k, EngineError::panicked(k, payload))),
                    Ok(acc) => {
                        if cancel.is_cancelled() {
                            break;
                        }
                        let copy_pass = copy.pass_index();
                        match finish_copy_caught(copy, vec![acc]) {
                            Ok(Ok(())) => copy.record_pass_nanos(
                                copy_pass,
                                copy_started.elapsed().as_nanos() as u64,
                            ),
                            Ok(Err(e)) => pass_failures.push((k, e)),
                            Err(payload) => {
                                pass_failures.push((k, EngineError::panicked(k, payload)))
                            }
                        }
                    }
                }
                copy_busy_nanos += copy_started.elapsed().as_nanos() as u64;
            }
            None
        } else {
            let shared: Option<Vec<Vec<C::Acc>>> = if workers > 1 {
                let view: ShardedSnapshot<'_, C::Item> =
                    ShardedSnapshot::new(num_vertices, items, shards.max(1));
                let copies_ref: &[C] = copies;
                let plan_ref = &plan;
                let fold = |s: usize| {
                    let slice = view.shard(s);
                    let mut accs: Vec<C::Acc> = copies_ref.iter().map(|c| c.begin_pass()).collect();
                    let mut scratch = C::Scratch::default();
                    let mut pos = view.shard_range(s).start as u64;
                    let batch = C::cohort_batch(batch, slice.len()).max(1);
                    for chunk in slice.chunks(batch) {
                        if cancel.is_cancelled() {
                            break;
                        }
                        C::fold_cohort(plan_ref, copies_ref, &mut accs, &mut scratch, pos, chunk);
                        pos += chunk.len() as u64;
                    }
                    accs
                };
                // The shard closures run on the shared pool (interleaved
                // with any queued per-copy tasks); panics are caught per
                // shard, so an unwound shard keeps the other shards' work
                // and the engine thread alive. Any shard panic discards the
                // sweep and drops to the per-copy fallback below, which
                // isolates the unwinding copy. Sound because folds take
                // `&self`: an unwound shard leaves the copies untouched —
                // only its local accumulators (discarded) and the partial
                // shard reports (cleared) are torn.
                let results = pool.sweep_shards(view.shards(), fold);
                let mut per_shard = Vec::with_capacity(results.len());
                let mut panicked = false;
                for (s, (result, nanos)) in results.into_iter().enumerate() {
                    match result {
                        Ok(accs) => {
                            copy_busy_nanos += nanos;
                            if R::ENABLED {
                                shard_reports.push(ShardReport {
                                    items: view.shard(s).len() as u64,
                                    nanos,
                                });
                            }
                            per_shard.push(accs);
                        }
                        Err(_) => panicked = true,
                    }
                }
                if panicked {
                    shard_reports.clear();
                    copy_busy_nanos = 0;
                    None
                } else {
                    Some(transpose(per_shard, copies.len()))
                }
            } else {
                let copies_ref: &[C] = copies;
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    let mut accs: Vec<C::Acc> = copies_ref.iter().map(|c| c.begin_pass()).collect();
                    let mut scratch = C::Scratch::default();
                    let mut pos = 0u64;
                    let batch = C::cohort_batch(batch, items.len()).max(1);
                    for chunk in items.chunks(batch) {
                        if cancel.is_cancelled() {
                            break;
                        }
                        C::fold_cohort(&plan, copies_ref, &mut accs, &mut scratch, pos, chunk);
                        pos += chunk.len() as u64;
                    }
                    accs
                }));
                attempt
                    .ok()
                    .map(|accs| accs.into_iter().map(|acc| vec![acc]).collect())
            };
            match shared {
                Some(per_copy) => Some(per_copy.into_iter().map(Ok).collect()),
                None => {
                    // The shared sweep panicked somewhere in the cohort
                    // fold. Re-execute the pass copy by copy to isolate the
                    // unwinding copy; survivors reproduce their fused
                    // accumulators bit for bit (deterministic `&self`
                    // folds), so containment never perturbs them.
                    Some(
                        copies
                            .iter()
                            .map(|c| fold_copy_caught(c, batch, items, cancel).map(|a| vec![a]))
                            .collect(),
                    )
                }
            }
        };
        drop(plan);
        let nanos = started.elapsed().as_nanos() as u64;
        if cancel.is_cancelled() {
            // The sweep was aborted at a chunk boundary: evict the members
            // that already failed with their specific errors, then fail the
            // rest as cancelled. The aborted sweep is not counted.
            resolve_failures(copies, meta, &mut outcome, pass_failures);
            fail_all(
                copies,
                meta,
                &mut outcome,
                &EngineError::Cancelled {
                    completed_passes: completed,
                },
            );
            break;
        }
        if let Some(per_copy) = per_copy {
            for (k, result) in per_copy.into_iter().enumerate() {
                if member_doomed(&pass_failures, meta, k) {
                    continue;
                }
                match result {
                    Err(payload) => pass_failures.push((k, EngineError::panicked(k, payload))),
                    Ok(accs) => {
                        let copy_pass = copies[k].pass_index();
                        match finish_copy_caught(&mut copies[k], accs) {
                            Ok(Ok(())) => copies[k].record_pass_nanos(copy_pass, nanos),
                            Ok(Err(e)) => pass_failures.push((k, e)),
                            Err(payload) => {
                                pass_failures.push((k, EngineError::panicked(k, payload)))
                            }
                        }
                    }
                }
            }
        }
        if R::ENABLED {
            if workers <= 1 && shard_reports.is_empty() {
                // Unsharded sweeps report one synthetic whole-stream shard
                // so the report shape is uniform.
                shard_reports.push(ShardReport {
                    items: items.len() as u64,
                    nanos,
                });
            }
            recorder.add(lane, Counter::SweepsExecuted, 1);
            recorder.span(lane, Span::PlanBuild, plan_nanos);
            recorder.span(lane, Span::FusedSweep, nanos);
            recorder.observe(lane, Hist::PassNanos, nanos);
            for (s, shard) in shard_reports.iter().enumerate() {
                recorder.observe(s, Hist::ShardNanos, shard.nanos);
            }
            trace.push(PassTrace {
                pass,
                plan_nanos,
                sweep_nanos: nanos,
                shards: std::mem::take(&mut shard_reports),
            });
        }
        outcome.sweeps += 1;
        // Sharded and copy-at-a-time arms measured their busy time
        // directly; the single-threaded shared arms (and the per-copy
        // fallback, which re-folds inline) are wall = busy.
        outcome.busy_nanos += if copy_busy_nanos > 0 {
            copy_busy_nanos
        } else {
            nanos
        };
        resolve_failures(copies, meta, &mut outcome, pass_failures);
    }
    outcome
}

/// The heterogeneous fused cohort of one edge-snapshot batch, grouped by
/// execution shape:
///
/// * `mains` — six-pass counter-mode copies sharing union probe plans;
/// * `ideals` — 3-pass ideal-estimator **job** members (each internally
///   fuses its own copies) that ride the first three shared sweeps, then
///   retire from the sweep schedule;
/// * `seqs` — sequential-mode six-pass copies that join the shared sweeps
///   only on their order-insensitive passes (degrees, closure, assignment
///   membership) and run the RNG-consuming passes as private traversals.
///
/// Members carry [`CohortMemberMeta`] exactly like the homogeneous driver;
/// group indices are global across the three vectors, so containment
/// evicts a failed job's copies wherever they live.
pub(crate) struct EdgeCohort<'o> {
    pub mains: Vec<MainCopyStages>,
    pub main_meta: Vec<CohortMemberMeta>,
    pub ideals: Vec<IdealCopyStages<'o, StreamStats>>,
    pub ideal_meta: Vec<CohortMemberMeta>,
    pub seqs: Vec<SequentialCopyStages>,
    pub seq_meta: Vec<CohortMemberMeta>,
}

impl EdgeCohort<'_> {
    /// Total cohort members across the three groups.
    pub fn len(&self) -> usize {
        self.mains.len() + self.ideals.len() + self.seqs.len()
    }

    /// Whether any group has members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn unfinished(&self) -> bool {
        self.mains.iter().any(|c| !StagedCopy::finished(c))
            || self.ideals.iter().any(|c| !c.finished())
            || self.seqs.iter().any(|c| !c.finished())
    }

    /// The pass index every unfinished member sits at (lockstep).
    fn stage(&self) -> usize {
        self.mains
            .iter()
            .map(StagedCopy::pass_index)
            .chain(
                self.ideals
                    .iter()
                    .filter(|c| !c.finished())
                    .map(|c| c.pass_index()),
            )
            .chain(self.seqs.iter().map(|c| c.pass_index()))
            .next()
            .unwrap_or(0)
    }
}

/// Removes every copy of `group` from one (copies, meta) pair, returning
/// how many members left. Survivor order is preserved.
fn evict_members<C>(copies: &mut Vec<C>, meta: &mut Vec<CohortMemberMeta>, group: usize) -> usize {
    let mut removed = 0;
    let mut k = 0;
    while k < copies.len() {
        if meta[k].group == group {
            copies.remove(k);
            meta.remove(k);
            removed += 1;
        } else {
            k += 1;
        }
    }
    removed
}

/// Evicts `group` from every group vector of the mixed cohort.
fn evict_mixed(
    cohort: &mut EdgeCohort<'_>,
    outcome: &mut CohortOutcome,
    group: usize,
    error: EngineError,
) {
    if !doomed(&outcome.failures, group) {
        outcome.failures.push((group, error));
    }
    outcome.evicted += evict_members(&mut cohort.mains, &mut cohort.main_meta, group);
    outcome.evicted += evict_members(&mut cohort.ideals, &mut cohort.ideal_meta, group);
    outcome.evicted += evict_members(&mut cohort.seqs, &mut cohort.seq_meta, group);
}

/// One stage failure of the mixed cohort, resolved to member identity at
/// record time — member indices are per-group-vector, so unlike the
/// homogeneous driver the mixed driver cannot key failures by one flat
/// index. `(group, copy)` is unique across the three vectors (a copy
/// lives in exactly one of them).
struct MixedFailure {
    group: usize,
    copy: usize,
    contained: bool,
    error: EngineError,
}

impl MixedFailure {
    fn of(mm: &CohortMemberMeta, error: EngineError) -> Self {
        MixedFailure {
            group: mm.group,
            copy: mm.copy,
            contained: mm.contained,
            error,
        }
    }
}

/// Whether the member described by `mm` should skip the rest of the
/// current stage: it failed itself, or a non-contained member of its
/// group failed (dooming the whole group).
fn mixed_doomed(failures: &[MixedFailure], mm: &CohortMemberMeta) -> bool {
    failures
        .iter()
        .any(|f| f.group == mm.group && (!f.contained || f.copy == mm.copy))
}

/// Removes the single `(group, copy)` member from one (copies, meta) pair
/// when present.
fn remove_one<C>(
    copies: &mut Vec<C>,
    meta: &mut Vec<CohortMemberMeta>,
    group: usize,
    copy: usize,
) -> bool {
    if let Some(k) = meta
        .iter()
        .position(|mm| mm.group == group && mm.copy == copy)
    {
        copies.remove(k);
        meta.remove(k);
        true
    } else {
        false
    }
}

/// Evicts the single `(group, copy)` member from whichever group vector
/// holds it, recording a copy-level failure.
fn evict_copy_mixed(
    cohort: &mut EdgeCohort<'_>,
    outcome: &mut CohortOutcome,
    group: usize,
    copy: usize,
    error: EngineError,
) {
    let removed = remove_one(&mut cohort.mains, &mut cohort.main_meta, group, copy)
        || remove_one(&mut cohort.ideals, &mut cohort.ideal_meta, group, copy)
        || remove_one(&mut cohort.seqs, &mut cohort.seq_meta, group, copy);
    if removed {
        outcome.evicted += 1;
    }
    outcome.copy_failures.push((group, copy, error));
}

/// Resolves one stage's failures into evictions, mirroring
/// [`resolve_failures`] for the mixed cohort: non-contained failures evict
/// their whole group (first error wins), contained ones evict just the
/// copy unless the group fell in the same batch.
fn resolve_mixed_failures(
    cohort: &mut EdgeCohort<'_>,
    outcome: &mut CohortOutcome,
    failures: Vec<MixedFailure>,
) {
    let mut group_fatal: Vec<(usize, EngineError)> = Vec::new();
    let mut copy_level: Vec<(usize, usize, EngineError)> = Vec::new();
    for f in failures {
        if f.contained {
            copy_level.push((f.group, f.copy, f.error));
        } else if !doomed(&group_fatal, f.group) {
            group_fatal.push((f.group, f.error));
        }
    }
    for (group, error) in group_fatal {
        evict_mixed(cohort, outcome, group, error);
    }
    for (group, copy, error) in copy_level {
        if doomed(&outcome.failures, group) {
            continue;
        }
        evict_copy_mixed(cohort, outcome, group, copy, error);
    }
}

/// Fails every remaining group of the mixed cohort with a clone of `error`.
fn fail_all_mixed(cohort: &mut EdgeCohort<'_>, outcome: &mut CohortOutcome, error: &EngineError) {
    loop {
        let group = cohort
            .main_meta
            .first()
            .or(cohort.ideal_meta.first())
            .or(cohort.seq_meta.first())
            .map(|mm| mm.group);
        match group {
            Some(g) => evict_mixed(cohort, outcome, g, error.clone()),
            None => break,
        }
    }
}

/// The per-shard accumulator bundle of one mixed shared sweep, in group
/// order (mains, ideals, seqs).
type MixedAccs = (Vec<MainStageAcc>, Vec<IdealStageAcc>, Vec<Vec<u64>>);

/// Executes a mixed cohort of six-pass, ideal and sequential copies over
/// one shared edge snapshot: each stage of the schedule runs **one**
/// shared sweep feeding every participating member — the six-pass copies
/// through their union plans, each ideal job's fold, and the sequential
/// copies' order-insensitive shared folds — plus one private serial
/// traversal per sequential copy on its RNG-consuming stages. Members
/// whose pass budget is exhausted (ideal jobs after stage 2) retire from
/// the sweep schedule; the survivors keep fusing.
///
/// Containment, deadlines, cancellation and fault probes follow
/// [`drive_cohort`] exactly, at job granularity across all three groups
/// (copy granularity for members with [`CohortMemberMeta::contained`]).
/// Bit-identity holds for the same reason as the homogeneous driver:
/// every fold a member sees is the same fold, on the same chunks at the
/// same positions, that its per-copy execution would have run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_edge_cohort<R: Recorder, P: SweepPool>(
    cohort: &mut EdgeCohort<'_>,
    cancel: &CancelToken,
    num_vertices: usize,
    edges: &[Edge],
    batch: usize,
    workers: usize,
    shards: usize,
    recorder: &R,
    lane: usize,
    trace: &mut Vec<PassTrace>,
    pool: &mut P,
) -> CohortOutcome {
    debug_assert_eq!(cohort.mains.len(), cohort.main_meta.len());
    debug_assert_eq!(cohort.ideals.len(), cohort.ideal_meta.len());
    debug_assert_eq!(cohort.seqs.len(), cohort.seq_meta.len());
    let mut outcome = CohortOutcome::default();
    let batch = batch.max(1);
    while cohort.unfinished() {
        let stage = cohort.stage();
        debug_assert!(
            cohort
                .mains
                .iter()
                .map(StagedCopy::pass_index)
                .chain(
                    cohort
                        .ideals
                        .iter()
                        .filter(|c| !c.finished())
                        .map(|c| c.pass_index())
                )
                .chain(cohort.seqs.iter().map(|c| c.pass_index()))
                .all(|p| p == stage),
            "mixed cohort members run in stage lockstep"
        );
        if cancel.is_cancelled() {
            fail_all_mixed(
                cohort,
                &mut outcome,
                &EngineError::Cancelled {
                    completed_passes: stage,
                },
            );
            break;
        }
        // One clock read per stage covers every group's deadline.
        let now = Instant::now();
        let mut expired: Vec<usize> = Vec::new();
        for mm in cohort
            .main_meta
            .iter()
            .chain(&cohort.ideal_meta)
            .chain(&cohort.seq_meta)
        {
            if mm.deadline.is_some_and(|d| now >= d) && !expired.contains(&mm.group) {
                expired.push(mm.group);
            }
        }
        for group in expired {
            evict_mixed(
                cohort,
                &mut outcome,
                group,
                EngineError::DeadlineExceeded {
                    completed_passes: stage,
                },
            );
        }
        if cohort.is_empty() {
            break;
        }
        // Stage-boundary fault probes, one per member, keyed by the
        // member's fault key — identical cadence to the homogeneous driver.
        if faults::ENABLED {
            let mut hit: Vec<MixedFailure> = Vec::new();
            for (k, mm) in cohort
                .main_meta
                .iter()
                .chain(&cohort.ideal_meta)
                .chain(&cohort.seq_meta)
                .enumerate()
            {
                let probed = catch_unwind(AssertUnwindSafe(|| {
                    faults::probe(faults::FaultSite::PassBoundary, mm.fault_key)
                }));
                if let Err(payload) = probed {
                    hit.push(MixedFailure::of(mm, EngineError::panicked(k, payload)));
                }
            }
            resolve_mixed_failures(cohort, &mut outcome, hit);
            if cohort.is_empty() {
                break;
            }
        }
        let mut stage_failures: Vec<MixedFailure> = Vec::new();

        // ---- private sequential traversals of this stage ---------------
        if !SequentialCopyStages::pass_is_shared(stage) && !cohort.seqs.is_empty() {
            let mut aborted = false;
            for k in 0..cohort.seqs.len() {
                let mm = cohort.seq_meta[k];
                if mixed_doomed(&stage_failures, &mm) {
                    continue;
                }
                if cancel.is_cancelled() {
                    aborted = true;
                    break;
                }
                let copy_started = Instant::now();
                let seq = &mut cohort.seqs[k];
                // `AssertUnwindSafe`: a panicking private fold may tear
                // this copy's RNG state, but the caller evicts the copy's
                // whole group on `Err` — the torn state is never observed.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    for chunk in edges.chunks(batch) {
                        if cancel.is_cancelled() {
                            return Ok(false);
                        }
                        seq.fold_private(chunk);
                    }
                    seq.finish_private().map(|()| true)
                }));
                match result {
                    Ok(Ok(true)) => {
                        let nanos = copy_started.elapsed().as_nanos() as u64;
                        cohort.seqs[k].set_pass_nanos(stage, nanos);
                        outcome.sweeps += 1;
                        outcome.busy_nanos += nanos;
                        if R::ENABLED {
                            recorder.add(lane, Counter::SweepsExecuted, 1);
                        }
                    }
                    Ok(Ok(false)) => {
                        aborted = true;
                        break;
                    }
                    Ok(Err(e)) => stage_failures.push(MixedFailure::of(&mm, EngineError::from(e))),
                    Err(payload) => stage_failures
                        .push(MixedFailure::of(&mm, EngineError::panicked(k, payload))),
                }
            }
            if aborted || cancel.is_cancelled() {
                resolve_mixed_failures(cohort, &mut outcome, stage_failures);
                fail_all_mixed(
                    cohort,
                    &mut outcome,
                    &EngineError::Cancelled {
                        completed_passes: stage,
                    },
                );
                break;
            }
        }

        // ---- the stage's shared sweep ----------------------------------
        let ideals_active = cohort.ideals.iter().any(|c| !c.finished());
        let seqs_shared = SequentialCopyStages::pass_is_shared(stage) && !cohort.seqs.is_empty();
        let sweep_needed = !cohort.mains.is_empty() || ideals_active || seqs_shared;
        if sweep_needed {
            let plan_started = Instant::now();
            let main_plan: Option<MainCohortPlan> =
                (!cohort.mains.is_empty()).then(|| MainCopyStages::plan_cohort(&cohort.mains));
            let plan_nanos = if R::ENABLED {
                plan_started.elapsed().as_nanos() as u64
            } else {
                0
            };
            let started = Instant::now();
            let mut shard_reports: Vec<ShardReport> = Vec::new();
            let mut sweep_busy = 0u64;
            let mains: &[MainCopyStages] = &cohort.mains;
            let ideals: &[IdealCopyStages<'_, StreamStats>] = &cohort.ideals;
            let seqs: &[SequentialCopyStages] = &cohort.seqs;
            let plan_ref = &main_plan;
            let fold_slice = |slice: &[Edge], start: u64| -> MixedAccs {
                let mut main_accs: Vec<MainStageAcc> =
                    mains.iter().map(StagedCopy::begin_pass).collect();
                let mut scratch = MainCohortScratch::default();
                let mut ideal_accs: Vec<IdealStageAcc> = if ideals_active {
                    ideals.iter().map(|c| c.begin_pass()).collect()
                } else {
                    Vec::new()
                };
                let mut seq_accs: Vec<Vec<u64>> = if seqs_shared {
                    seqs.iter().map(|c| c.begin_shared()).collect()
                } else {
                    Vec::new()
                };
                let mut pos = start;
                for chunk in slice.chunks(batch) {
                    if cancel.is_cancelled() {
                        break;
                    }
                    if let Some(plan) = plan_ref {
                        MainCopyStages::fold_cohort(
                            plan,
                            mains,
                            &mut main_accs,
                            &mut scratch,
                            pos,
                            chunk,
                        );
                    }
                    if ideals_active {
                        for (stages, acc) in ideals.iter().zip(ideal_accs.iter_mut()) {
                            stages.fold(acc, pos, chunk);
                        }
                    }
                    if seqs_shared {
                        for (stages, acc) in seqs.iter().zip(seq_accs.iter_mut()) {
                            stages.fold_shared(acc, chunk);
                        }
                    }
                    pos += chunk.len() as u64;
                }
                (main_accs, ideal_accs, seq_accs)
            };
            // `None` = some shard panicked; drop to the per-member
            // fallback, exactly like the homogeneous driver.
            let per_shard: Option<Vec<MixedAccs>> = if workers > 1 {
                let view: ShardedSnapshot<'_, Edge> =
                    ShardedSnapshot::new(num_vertices, edges, shards.max(1));
                let results = pool.sweep_shards(view.shards(), |s| {
                    fold_slice(view.shard(s), view.shard_range(s).start as u64)
                });
                let mut collected = Vec::with_capacity(results.len());
                let mut panicked = false;
                for (s, (result, nanos)) in results.into_iter().enumerate() {
                    match result {
                        Ok(accs) => {
                            sweep_busy += nanos;
                            if R::ENABLED {
                                shard_reports.push(ShardReport {
                                    items: view.shard(s).len() as u64,
                                    nanos,
                                });
                            }
                            collected.push(accs);
                        }
                        Err(_) => panicked = true,
                    }
                }
                if panicked {
                    shard_reports.clear();
                    sweep_busy = 0;
                    None
                } else {
                    Some(collected)
                }
            } else {
                catch_unwind(AssertUnwindSafe(|| fold_slice(edges, 0)))
                    .ok()
                    .map(|accs| vec![accs])
            };
            // Per-member fold results, flattened back to (kind, member) —
            // either from the shared sweep's shard transposition or from
            // the per-member panic-isolation fallback.
            #[allow(clippy::type_complexity)]
            let (main_folds, ideal_folds, seq_folds): (
                Vec<std::thread::Result<Vec<MainStageAcc>>>,
                Vec<std::thread::Result<Vec<IdealStageAcc>>>,
                Vec<std::thread::Result<Vec<Vec<u64>>>>,
            ) = match per_shard {
                Some(shards_accs) => {
                    let mut main_shards: Vec<Vec<MainStageAcc>> = Vec::new();
                    let mut ideal_shards: Vec<Vec<IdealStageAcc>> = Vec::new();
                    let mut seq_shards: Vec<Vec<Vec<u64>>> = Vec::new();
                    for (m, i, q) in shards_accs {
                        main_shards.push(m);
                        ideal_shards.push(i);
                        seq_shards.push(q);
                    }
                    (
                        transpose(main_shards, mains.len())
                            .into_iter()
                            .map(Ok)
                            .collect(),
                        transpose(ideal_shards, if ideals_active { ideals.len() } else { 0 })
                            .into_iter()
                            .map(Ok)
                            .collect(),
                        transpose(seq_shards, if seqs_shared { seqs.len() } else { 0 })
                            .into_iter()
                            .map(Ok)
                            .collect(),
                    )
                }
                None => {
                    let main_folds = mains
                        .iter()
                        .map(|c| fold_copy_caught(c, batch, edges, cancel).map(|a| vec![a]))
                        .collect();
                    let ideal_folds = if ideals_active {
                        ideals
                            .iter()
                            .map(|c| {
                                catch_unwind(AssertUnwindSafe(|| {
                                    let mut acc = c.begin_pass();
                                    let mut pos = 0u64;
                                    for chunk in edges.chunks(batch) {
                                        if cancel.is_cancelled() {
                                            break;
                                        }
                                        c.fold(&mut acc, pos, chunk);
                                        pos += chunk.len() as u64;
                                    }
                                    vec![acc]
                                }))
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let seq_folds = if seqs_shared {
                        seqs.iter()
                            .map(|c| {
                                catch_unwind(AssertUnwindSafe(|| {
                                    let mut acc = c.begin_shared();
                                    for chunk in edges.chunks(batch) {
                                        if cancel.is_cancelled() {
                                            break;
                                        }
                                        c.fold_shared(&mut acc, chunk);
                                    }
                                    vec![acc]
                                }))
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    (main_folds, ideal_folds, seq_folds)
                }
            };
            drop(main_plan);
            let nanos = started.elapsed().as_nanos() as u64;
            if cancel.is_cancelled() {
                resolve_mixed_failures(cohort, &mut outcome, stage_failures);
                fail_all_mixed(
                    cohort,
                    &mut outcome,
                    &EngineError::Cancelled {
                        completed_passes: stage,
                    },
                );
                break;
            }
            // Finish every participating member, containing failures at
            // group granularity (copy granularity for contained members).
            for (k, result) in main_folds.into_iter().enumerate() {
                let mm = cohort.main_meta[k];
                if mixed_doomed(&stage_failures, &mm) {
                    continue;
                }
                match result {
                    Err(payload) => stage_failures
                        .push(MixedFailure::of(&mm, EngineError::panicked(k, payload))),
                    Ok(accs) => match finish_copy_caught(&mut cohort.mains[k], accs) {
                        Ok(Ok(())) => cohort.mains[k].set_pass_nanos(stage, nanos),
                        Ok(Err(e)) => stage_failures.push(MixedFailure::of(&mm, e)),
                        Err(payload) => stage_failures
                            .push(MixedFailure::of(&mm, EngineError::panicked(k, payload))),
                    },
                }
            }
            for (k, result) in ideal_folds.into_iter().enumerate() {
                let mm = cohort.ideal_meta[k];
                if mixed_doomed(&stage_failures, &mm) {
                    continue;
                }
                match result {
                    Err(payload) => stage_failures
                        .push(MixedFailure::of(&mm, EngineError::panicked(k, payload))),
                    Ok(accs) => {
                        let finish =
                            catch_unwind(AssertUnwindSafe(|| cohort.ideals[k].finish_pass(accs)));
                        match finish {
                            Ok(Ok(())) => cohort.ideals[k].set_pass_nanos(stage, nanos),
                            Ok(Err(e)) => {
                                stage_failures.push(MixedFailure::of(&mm, EngineError::from(e)))
                            }
                            Err(payload) => stage_failures
                                .push(MixedFailure::of(&mm, EngineError::panicked(k, payload))),
                        }
                    }
                }
            }
            for (k, result) in seq_folds.into_iter().enumerate() {
                let mm = cohort.seq_meta[k];
                if mixed_doomed(&stage_failures, &mm) {
                    continue;
                }
                match result {
                    Err(payload) => stage_failures
                        .push(MixedFailure::of(&mm, EngineError::panicked(k, payload))),
                    Ok(accs) => {
                        let finish =
                            catch_unwind(AssertUnwindSafe(|| cohort.seqs[k].finish_shared(accs)));
                        match finish {
                            Ok(Ok(())) => cohort.seqs[k].set_pass_nanos(stage, nanos),
                            Ok(Err(e)) => {
                                stage_failures.push(MixedFailure::of(&mm, EngineError::from(e)))
                            }
                            Err(payload) => stage_failures
                                .push(MixedFailure::of(&mm, EngineError::panicked(k, payload))),
                        }
                    }
                }
            }
            if R::ENABLED {
                if workers <= 1 && shard_reports.is_empty() {
                    shard_reports.push(ShardReport {
                        items: edges.len() as u64,
                        nanos,
                    });
                }
                recorder.add(lane, Counter::SweepsExecuted, 1);
                recorder.span(lane, Span::PlanBuild, plan_nanos);
                recorder.span(lane, Span::FusedSweep, nanos);
                recorder.observe(lane, Hist::PassNanos, nanos);
                for (s, shard) in shard_reports.iter().enumerate() {
                    recorder.observe(s, Hist::ShardNanos, shard.nanos);
                }
                trace.push(PassTrace {
                    pass: stage,
                    plan_nanos,
                    sweep_nanos: nanos,
                    shards: std::mem::take(&mut shard_reports),
                });
            }
            outcome.sweeps += 1;
            outcome.busy_nanos += if sweep_busy > 0 { sweep_busy } else { nanos };
        }
        resolve_mixed_failures(cohort, &mut outcome, stage_failures);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_sweeps_preserves_shard_order_and_contains_panics() {
        let mut pool = InlineSweeps;
        let out = pool.sweep_shards(5, |s| {
            assert!(s != 3, "shard 3 exploded");
            s * 10
        });
        assert_eq!(out.len(), 5);
        for (s, (result, _nanos)) in out.iter().enumerate() {
            match result {
                Ok(v) => assert_eq!(*v, s * 10),
                Err(_) => assert_eq!(s, 3),
            }
        }
        // A panicking shard never prevents later shards from running.
        assert!(out[4].0.is_ok());
    }
}
