//! The fused pass driver: one sweep per pass stage, feeding every
//! in-flight copy.
//!
//! Under counter-mode randomness both estimators expose their copies as
//! resumable stage objects ([`degentri_core::MainCopyStages`],
//! [`degentri_dynamic::DynamicCopyStages`]): `begin_pass → fold(batch) →
//! finish_pass`. Per-copy scheduling executes `passes` sweeps *per copy* —
//! with 4+ copies per job the dominant cost is re-streaming the same
//! snapshot slice copy after copy. This driver inverts the loop nest:
//! each pass stage is **one** sweep over the snapshot that dispatches
//! every copy's fold on each chunk, so snapshot traversal, chunk dispatch
//! and memory bandwidth are paid once per cohort (a chunk is still hot in
//! cache when the second copy folds it), collapsing `passes × copies`
//! sweeps into `passes`.
//!
//! Results are **bit-identical** to per-copy scheduling: the driver calls
//! the same stage methods with the same chunk positions, and every pass's
//! per-shard accumulators merge associatively in shard order — so fusing,
//! sharding and cohort grouping change wall-clock time only (asserted
//! across the full copies × shards × workers sweep in
//! `crates/engine/tests/fused_parity.rs`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use degentri_core::faults;
use degentri_core::{MainCohortPlan, MainCohortScratch, MainCopyStages, MainStageAcc};
use degentri_dynamic::{DynamicCopyStages, DynamicStageAcc};
use degentri_graph::Edge;
use degentri_obs::{Counter, Hist, Recorder, ShardReport, Span};
use degentri_stream::{EdgeUpdate, ShardedSnapshot};

use crate::cancel::CancelToken;
use crate::{EngineError, Result};

/// One pass of a fused cohort as the driver observed it: plan-build and
/// sweep wall times plus the per-shard breakdown, in shard order. Collected
/// only when the recorder is enabled (the vector stays empty under
/// [`degentri_obs::NoopRecorder`]) and assembled into
/// [`degentri_obs::PassReport`]s by the scheduler.
#[derive(Debug, Clone, Default)]
pub(crate) struct PassTrace {
    /// Pass index within the cohort's budget.
    pub pass: usize,
    /// Nanoseconds spent building the cohort's union probe structures.
    pub plan_nanos: u64,
    /// Nanoseconds of the fused sweep (fold + shard merge hand-off).
    pub sweep_nanos: u64,
    /// Per-shard items and busy time; one synthetic shard when unsharded.
    pub shards: Vec<ShardReport>,
}

/// A copy executable by the fused driver: the engine-facing facade over
/// the estimator crates' stage objects.
pub(crate) trait StagedCopy: Send + Sync + Sized {
    /// The snapshot item type (an edge or a signed update).
    type Item: Copy + Send + Sync;
    /// The opaque per-pass fold accumulator.
    type Acc: Send;
    /// Cohort-level union structures for the current pass (see
    /// [`plan_pass`](StagedCopy::plan_pass)); `()` when the copy type has
    /// no cross-copy probe sharing.
    type Plan: Send + Sync;
    /// Per-sweeping-thread scratch for the cohort fold (hit buffers for
    /// the branchless collect-then-apply fan-out); `()` when the copy type
    /// needs none. The driver allocates one per shard closure and reuses
    /// it across chunks and passes.
    type Scratch: Default + Send;

    fn finished(&self) -> bool;
    fn pass_index(&self) -> usize;
    fn begin_pass(&self) -> Self::Acc;
    fn finish_pass(&mut self, accs: Vec<Self::Acc>) -> Result<()>;
    fn record_pass_nanos(&mut self, pass: usize, nanos: u64);

    /// Builds the cohort's shared probe structures for the current pass.
    /// The default has none.
    fn plan_pass(copies: &[Self]) -> Self::Plan;

    /// Whether the cohort's copies share probe structures through the
    /// plan. When `false` (`Plan = ()`-style copies), the unsharded sweep
    /// drives the copies one at a time — begin, fold the whole slice,
    /// finish — so each copy's pass state is freed before the next copy's
    /// is built: the peak working set stays one copy wide and the
    /// allocator hands the next copy the pages the previous one just
    /// released. Bit-identical either way — independent copies never read
    /// each other's state and the folds are order-insensitive.
    const SHARES_PROBES: bool = true;

    /// Copy-interleave granularity for fused sweeps over a slice of
    /// `slice_len` items: the sweep folds this many items into every copy
    /// before moving to the next chunk. Copy types with shared union
    /// probes keep the configured batch (the shared lookups of a chunk
    /// stay cache-hot across copies); copy types whose cohort fold is an
    /// independent per-copy loop override this to the whole slice, so each
    /// copy's sketch working set stays resident instead of every chunk
    /// boundary evicting it with the other copies' state (this matters in
    /// the sharded arm, where copies still fold side by side). Either
    /// granularity is bit-identical — the folds are order-insensitive and
    /// each copy's accumulator sees exactly the same updates.
    fn cohort_batch(batch: usize, slice_len: usize) -> usize {
        let _ = slice_len;
        batch
    }

    /// Folds one chunk into every copy's accumulator through the plan.
    /// The default is the plain per-copy loop; implementations with union
    /// probe structures replace the `copies` independent lookups per item
    /// with one shared lookup that fans out to the hitting copies —
    /// bit-identical, since each copy receives exactly the updates its own
    /// fold would have produced.
    fn fold_cohort(
        plan: &Self::Plan,
        copies: &[Self],
        accs: &mut [Self::Acc],
        scratch: &mut Self::Scratch,
        pos: u64,
        chunk: &[Self::Item],
    );

    /// Folds one chunk into this copy alone — the per-copy reference path
    /// the fused fold mirrors bit for bit. The containment fallback uses
    /// it to re-execute a panicked fused sweep copy by copy (sound and
    /// repeatable because folds take `&self` and are deterministic), and
    /// the no-shared-probes serial arm uses it directly.
    fn fold_one(&self, acc: &mut Self::Acc, pos: u64, chunk: &[Self::Item]);
}

impl StagedCopy for MainCopyStages {
    type Item = Edge;
    type Acc = MainStageAcc;
    type Plan = MainCohortPlan;
    type Scratch = MainCohortScratch;

    fn finished(&self) -> bool {
        MainCopyStages::finished(self)
    }

    fn pass_index(&self) -> usize {
        MainCopyStages::pass_index(self)
    }

    fn begin_pass(&self) -> MainStageAcc {
        MainCopyStages::begin_pass(self)
    }

    fn finish_pass(&mut self, accs: Vec<MainStageAcc>) -> Result<()> {
        MainCopyStages::finish_pass(self, accs).map_err(crate::EngineError::from)
    }

    fn record_pass_nanos(&mut self, pass: usize, nanos: u64) {
        MainCopyStages::set_pass_nanos(self, pass, nanos)
    }

    fn plan_pass(copies: &[Self]) -> MainCohortPlan {
        MainCopyStages::plan_cohort(copies)
    }

    fn fold_cohort(
        plan: &MainCohortPlan,
        copies: &[Self],
        accs: &mut [MainStageAcc],
        scratch: &mut MainCohortScratch,
        pos: u64,
        chunk: &[Edge],
    ) {
        MainCopyStages::fold_cohort(plan, copies, accs, scratch, pos, chunk)
    }

    fn fold_one(&self, acc: &mut MainStageAcc, pos: u64, chunk: &[Edge]) {
        MainCopyStages::fold(self, acc, pos, chunk)
    }
}

impl StagedCopy for DynamicCopyStages {
    type Item = EdgeUpdate;
    type Acc = DynamicStageAcc;
    type Plan = ();
    type Scratch = ();

    fn finished(&self) -> bool {
        DynamicCopyStages::finished(self)
    }

    fn pass_index(&self) -> usize {
        DynamicCopyStages::pass_index(self)
    }

    fn begin_pass(&self) -> DynamicStageAcc {
        DynamicCopyStages::begin_pass(self)
    }

    fn finish_pass(&mut self, accs: Vec<DynamicStageAcc>) -> Result<()> {
        DynamicCopyStages::finish_pass(self, accs).map_err(crate::EngineError::from)
    }

    fn record_pass_nanos(&mut self, pass: usize, nanos: u64) {
        DynamicCopyStages::set_pass_nanos(self, pass, nanos)
    }

    fn plan_pass(_copies: &[Self]) -> Self::Plan {}

    const SHARES_PROBES: bool = false;

    fn cohort_batch(_batch: usize, slice_len: usize) -> usize {
        // Dynamic copies share no probe structures (`Plan = ()`), so
        // chunk-interleaving the copies only evicts each bank's sketch and
        // touch-cache working set at every chunk boundary. Fold the whole
        // slice into one copy at a time instead.
        slice_len
    }

    fn fold_cohort(
        _plan: &(),
        copies: &[Self],
        accs: &mut [DynamicStageAcc],
        _scratch: &mut (),
        pos: u64,
        chunk: &[EdgeUpdate],
    ) {
        for (stages, acc) in copies.iter().zip(accs.iter_mut()) {
            stages.fold(acc, pos, chunk);
        }
    }

    fn fold_one(&self, acc: &mut DynamicStageAcc, pos: u64, chunk: &[EdgeUpdate]) {
        DynamicCopyStages::fold(self, acc, pos, chunk)
    }
}

/// Re-nests shard-major accumulators (`per_shard[s][k]`) into copy-major
/// (`per_copy[k][s]`), preserving shard order within each copy — the
/// order [`StagedCopy::finish_pass`] requires.
fn transpose<T>(per_shard: Vec<Vec<T>>, copies: usize) -> Vec<Vec<T>> {
    let shards = per_shard.len();
    let mut per_copy: Vec<Vec<T>> = (0..copies).map(|_| Vec::with_capacity(shards)).collect();
    for shard_accs in per_shard {
        for (k, acc) in shard_accs.into_iter().enumerate() {
            per_copy[k].push(acc);
        }
    }
    per_copy
}

/// Containment metadata carried alongside each cohort member, index-aligned
/// with the copies vector (the driver evicts both in sync).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CohortMemberMeta {
    /// Index of the job this copy belongs to — containment's failure unit:
    /// when any copy of a group fails, the whole group is evicted.
    pub group: usize,
    /// The copy's index within its job (per-copy seed index), used by the
    /// scheduler to keep fold-back ordering after evictions.
    pub copy: usize,
    /// Absolute deadline of the copy's job, when it has one.
    pub deadline: Option<Instant>,
    /// The copy's fault-injection key — its per-copy seed, so the same key
    /// addresses the copy on every execution tier.
    pub fault_key: u64,
}

/// What [`drive_cohort`] did: completed sweeps, copies evicted by
/// containment, and the first error of each failed group (in eviction
/// order).
#[derive(Debug, Default)]
pub(crate) struct CohortOutcome {
    /// Completed shared sweeps (aborted sweeps are not counted, keeping
    /// `edges_streamed = sweeps × snapshot_len` an upper bound of what a
    /// cut run actually streamed).
    pub sweeps: u64,
    /// Copies removed from the cohort by group evictions.
    pub evicted: usize,
    /// `(group, first error)` per failed group.
    pub failures: Vec<(usize, EngineError)>,
}

/// Whether `group` already failed during the current pass.
fn doomed(failures: &[(usize, EngineError)], group: usize) -> bool {
    failures.iter().any(|(g, _)| *g == group)
}

/// Evicts every copy of `group` from the cohort, recording the group's
/// first error. Survivor order is preserved, so per-job fold-back ordering
/// is unaffected.
fn evict_group<C>(
    copies: &mut Vec<C>,
    meta: &mut Vec<CohortMemberMeta>,
    outcome: &mut CohortOutcome,
    group: usize,
    error: EngineError,
) {
    if !doomed(&outcome.failures, group) {
        outcome.failures.push((group, error));
    }
    let mut k = 0;
    while k < copies.len() {
        if meta[k].group == group {
            copies.remove(k);
            meta.remove(k);
            outcome.evicted += 1;
        } else {
            k += 1;
        }
    }
}

/// Evicts every remaining group with a clone of `error` (cancellation).
fn fail_all<C>(
    copies: &mut Vec<C>,
    meta: &mut Vec<CohortMemberMeta>,
    outcome: &mut CohortOutcome,
    error: &EngineError,
) {
    while let Some(mm) = meta.first() {
        let group = mm.group;
        evict_group(copies, meta, outcome, group, error.clone());
    }
}

/// Executes one copy's pass fold under a panic boundary: begin, fold the
/// whole slice chunk by chunk via [`StagedCopy::fold_one`], return the
/// accumulator (or the panic payload). `AssertUnwindSafe` is sound because
/// folds take `&self` — an unwinding fold cannot tear the copy, only the
/// local accumulator, which is discarded with the `Err`.
fn fold_copy_caught<C: StagedCopy>(
    copy: &C,
    batch: usize,
    items: &[C::Item],
    cancel: &CancelToken,
) -> std::thread::Result<C::Acc> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut acc = copy.begin_pass();
        let chunk_len = C::cohort_batch(batch, items.len()).max(1);
        let mut pos = 0u64;
        for chunk in items.chunks(chunk_len) {
            if cancel.is_cancelled() {
                break;
            }
            copy.fold_one(&mut acc, pos, chunk);
            pos += chunk.len() as u64;
        }
        acc
    }))
}

/// Finishes one copy's pass under a panic boundary. `AssertUnwindSafe` is
/// sound because a panicking `finish_pass` (`&mut self`) may tear the copy,
/// but the caller evicts the copy's whole group on `Err` — the torn state
/// is never observed again.
fn finish_copy_caught<C: StagedCopy>(
    copy: &mut C,
    accs: Vec<C::Acc>,
) -> std::thread::Result<Result<()>> {
    catch_unwind(AssertUnwindSafe(move || copy.finish_pass(accs)))
}

/// Executes one cohort of staged copies over a shared snapshot slice:
/// while any copy has passes left, run **one sweep** that feeds every
/// unfinished copy's fold chunk by chunk — sharded across `workers` scoped
/// threads (over `shards` contiguous shards) when `workers > 1`. Cohorts
/// without shared probes ([`StagedCopy::SHARES_PROBES`] = `false`) drive
/// each sweep copy-at-a-time instead, keeping one copy's pass state live
/// at a time.
///
/// ## Failure containment
///
/// Failures are contained at **group** (job) granularity, never at run
/// granularity:
///
/// * A copy that panics or returns an error — in a fold, a `finish_pass`,
///   or an injected pass-boundary fault — evicts its whole group from the
///   cohort: the group's copies leave `copies`/`meta`, the next pass's
///   plan is rebuilt from the survivors only, and the group's first error
///   is reported in the returned [`CohortOutcome`].
/// * When a **shared** fused sweep panics, the driver cannot tell which
///   copy unwound, so it re-executes the pass copy by copy through
///   [`StagedCopy::fold_one`] under per-copy panic boundaries. This is
///   sound and bit-identical because folds take `&self` and are
///   deterministic — the per-copy path is exactly the reference semantics
///   the fused fold mirrors.
/// * Survivors are **bit-identical** to a run that never contained the
///   failed group: per-copy randomness is position-keyed (counter mode),
///   so a copy's accumulators are a pure function of its own seed and the
///   chunk positions, independent of which other copies share the sweep.
/// * Expired group deadlines evict at pass boundaries
///   ([`EngineError::DeadlineExceeded`] with the completed pass count);
///   a fired [`CancelToken`] fails every remaining group at the next
///   pass/chunk boundary ([`EngineError::Cancelled`]) and aborts the
///   in-flight sweep without counting it.
///
/// All copies of a cohort have the same pass budget, so survivors stay in
/// lockstep and, absent failures, the sweep count equals that budget.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_cohort<C: StagedCopy, R: Recorder>(
    copies: &mut Vec<C>,
    meta: &mut Vec<CohortMemberMeta>,
    cancel: &CancelToken,
    num_vertices: usize,
    items: &[C::Item],
    batch: usize,
    workers: usize,
    shards: usize,
    recorder: &R,
    lane: usize,
    trace: &mut Vec<PassTrace>,
) -> CohortOutcome {
    debug_assert_eq!(copies.len(), meta.len());
    let mut outcome = CohortOutcome::default();
    let batch = batch.max(1);
    // Cohort copies share a pass budget, so they run in lockstep: every
    // sweep advances every surviving copy by one pass.
    while copies.iter().any(|c| !c.finished()) {
        debug_assert!(
            copies.iter().all(|c| !c.finished()),
            "cohort copies run in lockstep"
        );
        let completed = copies[0].pass_index();
        if cancel.is_cancelled() {
            fail_all(
                copies,
                meta,
                &mut outcome,
                &EngineError::Cancelled {
                    completed_passes: completed,
                },
            );
            break;
        }
        // One clock read per pass covers every group's deadline.
        let now = Instant::now();
        let mut expired: Vec<usize> = Vec::new();
        for mm in meta.iter() {
            if mm.deadline.is_some_and(|d| now >= d) && !expired.contains(&mm.group) {
                expired.push(mm.group);
            }
        }
        for group in expired {
            evict_group(
                copies,
                meta,
                &mut outcome,
                group,
                EngineError::DeadlineExceeded {
                    completed_passes: completed,
                },
            );
        }
        if copies.is_empty() {
            break;
        }
        // Pass-boundary fault probes, one per copy, keyed by the copy's
        // seed. An injected panic is contained to the probed copy's group.
        if faults::ENABLED {
            let mut hit: Vec<(usize, EngineError)> = Vec::new();
            for (k, mm) in meta.iter().enumerate() {
                let probed = catch_unwind(AssertUnwindSafe(|| {
                    faults::probe(faults::FaultSite::PassBoundary, mm.fault_key)
                }));
                if let Err(payload) = probed {
                    if !doomed(&hit, mm.group) {
                        hit.push((mm.group, EngineError::panicked(k, payload)));
                    }
                }
            }
            for (group, error) in hit {
                evict_group(copies, meta, &mut outcome, group, error);
            }
            if copies.is_empty() {
                break;
            }
        }
        let pass = copies[0].pass_index();
        let plan_started = Instant::now();
        let plan = C::plan_pass(copies);
        let plan_nanos = if R::ENABLED {
            plan_started.elapsed().as_nanos() as u64
        } else {
            0
        };
        let started = Instant::now();
        let mut shard_reports: Vec<ShardReport> = Vec::new();
        let mut pass_failures: Vec<(usize, EngineError)> = Vec::new();
        // `None` when the arm finishes copies inline (serial, no shared
        // probes); `Some(per-copy fold results)` otherwise, finished below
        // once the sweep clock stops.
        let per_copy: Option<Vec<std::thread::Result<Vec<C::Acc>>>> = if !C::SHARES_PROBES
            && workers <= 1
        {
            // Independent copies (no shared plan): drive them one at a
            // time — begin, fold the whole slice, finish — so only one
            // copy's pass state is live at once. Each copy's pass time
            // includes its finish, matching the per-copy driver's clock.
            for k in 0..copies.len() {
                let group = meta[k].group;
                if doomed(&pass_failures, group) {
                    continue;
                }
                if cancel.is_cancelled() {
                    break;
                }
                let copy_started = Instant::now();
                match fold_copy_caught(&copies[k], batch, items, cancel) {
                    Err(payload) => pass_failures.push((group, EngineError::panicked(k, payload))),
                    Ok(acc) => {
                        if cancel.is_cancelled() {
                            break;
                        }
                        let copy_pass = copies[k].pass_index();
                        match finish_copy_caught(&mut copies[k], vec![acc]) {
                            Ok(Ok(())) => copies[k].record_pass_nanos(
                                copy_pass,
                                copy_started.elapsed().as_nanos() as u64,
                            ),
                            Ok(Err(e)) => pass_failures.push((group, e)),
                            Err(payload) => {
                                pass_failures.push((group, EngineError::panicked(k, payload)))
                            }
                        }
                    }
                }
            }
            None
        } else {
            let shared: Option<Vec<Vec<C::Acc>>> = if workers > 1 {
                let view: ShardedSnapshot<'_, C::Item> =
                    ShardedSnapshot::new(num_vertices, items, shards.max(1));
                let copies_ref: &[C] = copies;
                let plan_ref = &plan;
                let fold = |s: usize, slice: &[C::Item]| {
                    let mut accs: Vec<C::Acc> = copies_ref.iter().map(|c| c.begin_pass()).collect();
                    let mut scratch = C::Scratch::default();
                    let mut pos = view.shard_range(s).start as u64;
                    let batch = C::cohort_batch(batch, slice.len()).max(1);
                    for chunk in slice.chunks(batch) {
                        if cancel.is_cancelled() {
                            break;
                        }
                        C::fold_cohort(plan_ref, copies_ref, &mut accs, &mut scratch, pos, chunk);
                        pos += chunk.len() as u64;
                    }
                    accs
                };
                // A panic on any sweeping thread re-surfaces at the scope
                // join; catching it here keeps the engine thread alive so
                // the per-copy fallback below can isolate the culprit.
                // `AssertUnwindSafe`: folds take `&self`, so an unwound
                // sweep leaves the copies untouched; only its local
                // accumulators (discarded) and the partial shard reports
                // (cleared) are torn.
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    if R::ENABLED {
                        let timed = view.pass_sharded_timed(workers, fold);
                        let mut per_shard = Vec::with_capacity(timed.len());
                        for (s, (accs, nanos)) in timed.into_iter().enumerate() {
                            shard_reports.push(ShardReport {
                                items: view.shard(s).len() as u64,
                                nanos,
                            });
                            per_shard.push(accs);
                        }
                        per_shard
                    } else {
                        view.pass_sharded(workers, fold)
                    }
                }));
                match attempt {
                    Ok(per_shard) => Some(transpose(per_shard, copies.len())),
                    Err(_) => {
                        shard_reports.clear();
                        None
                    }
                }
            } else {
                let copies_ref: &[C] = copies;
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    let mut accs: Vec<C::Acc> = copies_ref.iter().map(|c| c.begin_pass()).collect();
                    let mut scratch = C::Scratch::default();
                    let mut pos = 0u64;
                    let batch = C::cohort_batch(batch, items.len()).max(1);
                    for chunk in items.chunks(batch) {
                        if cancel.is_cancelled() {
                            break;
                        }
                        C::fold_cohort(&plan, copies_ref, &mut accs, &mut scratch, pos, chunk);
                        pos += chunk.len() as u64;
                    }
                    accs
                }));
                attempt
                    .ok()
                    .map(|accs| accs.into_iter().map(|acc| vec![acc]).collect())
            };
            match shared {
                Some(per_copy) => Some(per_copy.into_iter().map(Ok).collect()),
                None => {
                    // The shared sweep panicked somewhere in the cohort
                    // fold. Re-execute the pass copy by copy to isolate the
                    // unwinding copy; survivors reproduce their fused
                    // accumulators bit for bit (deterministic `&self`
                    // folds), so containment never perturbs them.
                    Some(
                        copies
                            .iter()
                            .map(|c| fold_copy_caught(c, batch, items, cancel).map(|a| vec![a]))
                            .collect(),
                    )
                }
            }
        };
        drop(plan);
        let nanos = started.elapsed().as_nanos() as u64;
        if cancel.is_cancelled() {
            // The sweep was aborted at a chunk boundary: evict the groups
            // that already failed with their specific errors, then fail the
            // rest as cancelled. The aborted sweep is not counted.
            for (group, error) in pass_failures {
                evict_group(copies, meta, &mut outcome, group, error);
            }
            fail_all(
                copies,
                meta,
                &mut outcome,
                &EngineError::Cancelled {
                    completed_passes: completed,
                },
            );
            break;
        }
        if let Some(per_copy) = per_copy {
            for (k, result) in per_copy.into_iter().enumerate() {
                let group = meta[k].group;
                if doomed(&pass_failures, group) {
                    continue;
                }
                match result {
                    Err(payload) => pass_failures.push((group, EngineError::panicked(k, payload))),
                    Ok(accs) => {
                        let copy_pass = copies[k].pass_index();
                        match finish_copy_caught(&mut copies[k], accs) {
                            Ok(Ok(())) => copies[k].record_pass_nanos(copy_pass, nanos),
                            Ok(Err(e)) => pass_failures.push((group, e)),
                            Err(payload) => {
                                pass_failures.push((group, EngineError::panicked(k, payload)))
                            }
                        }
                    }
                }
            }
        }
        if R::ENABLED {
            if workers <= 1 && shard_reports.is_empty() {
                // Unsharded sweeps report one synthetic whole-stream shard
                // so the report shape is uniform.
                shard_reports.push(ShardReport {
                    items: items.len() as u64,
                    nanos,
                });
            }
            recorder.add(lane, Counter::SweepsExecuted, 1);
            recorder.span(lane, Span::PlanBuild, plan_nanos);
            recorder.span(lane, Span::FusedSweep, nanos);
            recorder.observe(lane, Hist::PassNanos, nanos);
            for (s, shard) in shard_reports.iter().enumerate() {
                recorder.observe(s, Hist::ShardNanos, shard.nanos);
            }
            trace.push(PassTrace {
                pass,
                plan_nanos,
                sweep_nanos: nanos,
                shards: std::mem::take(&mut shard_reports),
            });
        }
        outcome.sweeps += 1;
        for (group, error) in pass_failures {
            evict_group(copies, meta, &mut outcome, group, error);
        }
    }
    outcome
}
