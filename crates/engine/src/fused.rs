//! The fused pass driver: one sweep per pass stage, feeding every
//! in-flight copy.
//!
//! Under counter-mode randomness both estimators expose their copies as
//! resumable stage objects ([`degentri_core::MainCopyStages`],
//! [`degentri_dynamic::DynamicCopyStages`]): `begin_pass → fold(batch) →
//! finish_pass`. Per-copy scheduling executes `passes` sweeps *per copy* —
//! with 4+ copies per job the dominant cost is re-streaming the same
//! snapshot slice copy after copy. This driver inverts the loop nest:
//! each pass stage is **one** sweep over the snapshot that dispatches
//! every copy's fold on each chunk, so snapshot traversal, chunk dispatch
//! and memory bandwidth are paid once per cohort (a chunk is still hot in
//! cache when the second copy folds it), collapsing `passes × copies`
//! sweeps into `passes`.
//!
//! Results are **bit-identical** to per-copy scheduling: the driver calls
//! the same stage methods with the same chunk positions, and every pass's
//! per-shard accumulators merge associatively in shard order — so fusing,
//! sharding and cohort grouping change wall-clock time only (asserted
//! across the full copies × shards × workers sweep in
//! `crates/engine/tests/fused_parity.rs`).

use std::time::Instant;

use degentri_core::{MainCohortPlan, MainCohortScratch, MainCopyStages, MainStageAcc};
use degentri_dynamic::{DynamicCopyStages, DynamicStageAcc};
use degentri_graph::Edge;
use degentri_obs::{Counter, Hist, Recorder, ShardReport, Span};
use degentri_stream::{EdgeUpdate, ShardedSnapshot};

use crate::Result;

/// One pass of a fused cohort as the driver observed it: plan-build and
/// sweep wall times plus the per-shard breakdown, in shard order. Collected
/// only when the recorder is enabled (the vector stays empty under
/// [`degentri_obs::NoopRecorder`]) and assembled into
/// [`degentri_obs::PassReport`]s by the scheduler.
#[derive(Debug, Clone, Default)]
pub(crate) struct PassTrace {
    /// Pass index within the cohort's budget.
    pub pass: usize,
    /// Nanoseconds spent building the cohort's union probe structures.
    pub plan_nanos: u64,
    /// Nanoseconds of the fused sweep (fold + shard merge hand-off).
    pub sweep_nanos: u64,
    /// Per-shard items and busy time; one synthetic shard when unsharded.
    pub shards: Vec<ShardReport>,
}

/// A copy executable by the fused driver: the engine-facing facade over
/// the estimator crates' stage objects.
pub(crate) trait StagedCopy: Send + Sync + Sized {
    /// The snapshot item type (an edge or a signed update).
    type Item: Copy + Send + Sync;
    /// The opaque per-pass fold accumulator.
    type Acc: Send;
    /// Cohort-level union structures for the current pass (see
    /// [`plan_pass`](StagedCopy::plan_pass)); `()` when the copy type has
    /// no cross-copy probe sharing.
    type Plan: Send + Sync;
    /// Per-sweeping-thread scratch for the cohort fold (hit buffers for
    /// the branchless collect-then-apply fan-out); `()` when the copy type
    /// needs none. The driver allocates one per shard closure and reuses
    /// it across chunks and passes.
    type Scratch: Default + Send;

    fn finished(&self) -> bool;
    fn pass_index(&self) -> usize;
    fn begin_pass(&self) -> Self::Acc;
    fn finish_pass(&mut self, accs: Vec<Self::Acc>) -> Result<()>;
    fn record_pass_nanos(&mut self, pass: usize, nanos: u64);

    /// Builds the cohort's shared probe structures for the current pass.
    /// The default has none.
    fn plan_pass(copies: &[Self]) -> Self::Plan;

    /// Whether the cohort's copies share probe structures through the
    /// plan. When `false` (`Plan = ()`-style copies), the unsharded sweep
    /// drives the copies one at a time — begin, fold the whole slice,
    /// finish — so each copy's pass state is freed before the next copy's
    /// is built: the peak working set stays one copy wide and the
    /// allocator hands the next copy the pages the previous one just
    /// released. Bit-identical either way — independent copies never read
    /// each other's state and the folds are order-insensitive.
    const SHARES_PROBES: bool = true;

    /// Copy-interleave granularity for fused sweeps over a slice of
    /// `slice_len` items: the sweep folds this many items into every copy
    /// before moving to the next chunk. Copy types with shared union
    /// probes keep the configured batch (the shared lookups of a chunk
    /// stay cache-hot across copies); copy types whose cohort fold is an
    /// independent per-copy loop override this to the whole slice, so each
    /// copy's sketch working set stays resident instead of every chunk
    /// boundary evicting it with the other copies' state (this matters in
    /// the sharded arm, where copies still fold side by side). Either
    /// granularity is bit-identical — the folds are order-insensitive and
    /// each copy's accumulator sees exactly the same updates.
    fn cohort_batch(batch: usize, slice_len: usize) -> usize {
        let _ = slice_len;
        batch
    }

    /// Folds one chunk into every copy's accumulator through the plan.
    /// The default is the plain per-copy loop; implementations with union
    /// probe structures replace the `copies` independent lookups per item
    /// with one shared lookup that fans out to the hitting copies —
    /// bit-identical, since each copy receives exactly the updates its own
    /// fold would have produced.
    fn fold_cohort(
        plan: &Self::Plan,
        copies: &[Self],
        accs: &mut [Self::Acc],
        scratch: &mut Self::Scratch,
        pos: u64,
        chunk: &[Self::Item],
    );
}

impl StagedCopy for MainCopyStages {
    type Item = Edge;
    type Acc = MainStageAcc;
    type Plan = MainCohortPlan;
    type Scratch = MainCohortScratch;

    fn finished(&self) -> bool {
        MainCopyStages::finished(self)
    }

    fn pass_index(&self) -> usize {
        MainCopyStages::pass_index(self)
    }

    fn begin_pass(&self) -> MainStageAcc {
        MainCopyStages::begin_pass(self)
    }

    fn finish_pass(&mut self, accs: Vec<MainStageAcc>) -> Result<()> {
        MainCopyStages::finish_pass(self, accs).map_err(crate::EngineError::from)
    }

    fn record_pass_nanos(&mut self, pass: usize, nanos: u64) {
        MainCopyStages::set_pass_nanos(self, pass, nanos)
    }

    fn plan_pass(copies: &[Self]) -> MainCohortPlan {
        MainCopyStages::plan_cohort(copies)
    }

    fn fold_cohort(
        plan: &MainCohortPlan,
        copies: &[Self],
        accs: &mut [MainStageAcc],
        scratch: &mut MainCohortScratch,
        pos: u64,
        chunk: &[Edge],
    ) {
        MainCopyStages::fold_cohort(plan, copies, accs, scratch, pos, chunk)
    }
}

impl StagedCopy for DynamicCopyStages {
    type Item = EdgeUpdate;
    type Acc = DynamicStageAcc;
    type Plan = ();
    type Scratch = ();

    fn finished(&self) -> bool {
        DynamicCopyStages::finished(self)
    }

    fn pass_index(&self) -> usize {
        DynamicCopyStages::pass_index(self)
    }

    fn begin_pass(&self) -> DynamicStageAcc {
        DynamicCopyStages::begin_pass(self)
    }

    fn finish_pass(&mut self, accs: Vec<DynamicStageAcc>) -> Result<()> {
        DynamicCopyStages::finish_pass(self, accs).map_err(crate::EngineError::from)
    }

    fn record_pass_nanos(&mut self, pass: usize, nanos: u64) {
        DynamicCopyStages::set_pass_nanos(self, pass, nanos)
    }

    fn plan_pass(_copies: &[Self]) -> Self::Plan {}

    const SHARES_PROBES: bool = false;

    fn cohort_batch(_batch: usize, slice_len: usize) -> usize {
        // Dynamic copies share no probe structures (`Plan = ()`), so
        // chunk-interleaving the copies only evicts each bank's sketch and
        // touch-cache working set at every chunk boundary. Fold the whole
        // slice into one copy at a time instead.
        slice_len
    }

    fn fold_cohort(
        _plan: &(),
        copies: &[Self],
        accs: &mut [DynamicStageAcc],
        _scratch: &mut (),
        pos: u64,
        chunk: &[EdgeUpdate],
    ) {
        for (stages, acc) in copies.iter().zip(accs.iter_mut()) {
            stages.fold(acc, pos, chunk);
        }
    }
}

/// Re-nests shard-major accumulators (`per_shard[s][k]`) into copy-major
/// (`per_copy[k][s]`), preserving shard order within each copy — the
/// order [`StagedCopy::finish_pass`] requires.
fn transpose<T>(per_shard: Vec<Vec<T>>, copies: usize) -> Vec<Vec<T>> {
    let shards = per_shard.len();
    let mut per_copy: Vec<Vec<T>> = (0..copies).map(|_| Vec::with_capacity(shards)).collect();
    for shard_accs in per_shard {
        for (k, acc) in shard_accs.into_iter().enumerate() {
            per_copy[k].push(acc);
        }
    }
    per_copy
}

/// Executes one cohort of staged copies over a shared snapshot slice:
/// while any copy has passes left, run **one sweep** that feeds every
/// unfinished copy's fold chunk by chunk — sharded across `workers` scoped
/// threads (over `shards` contiguous shards) when `workers > 1`. Cohorts
/// without shared probes ([`StagedCopy::SHARES_PROBES`] = `false`) drive
/// each sweep copy-at-a-time instead, keeping one copy's pass state live
/// at a time. Returns the number of sweeps executed (one per lockstep
/// pass).
///
/// All copies of a cohort have the same pass budget, so they stay in
/// lockstep and the sweep count equals that budget.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_cohort<C: StagedCopy, R: Recorder>(
    copies: &mut [C],
    num_vertices: usize,
    items: &[C::Item],
    batch: usize,
    workers: usize,
    shards: usize,
    recorder: &R,
    lane: usize,
    trace: &mut Vec<PassTrace>,
) -> Result<u64> {
    if copies.is_empty() {
        return Ok(0);
    }
    let batch = batch.max(1);
    let mut sweeps = 0u64;
    // Cohort copies share a pass budget, so they run in lockstep: every
    // sweep advances every copy by one pass.
    while copies.iter().any(|c| !c.finished()) {
        debug_assert!(
            copies.iter().all(|c| !c.finished()),
            "cohort copies run in lockstep"
        );
        sweeps += 1;
        let pass = copies[0].pass_index();
        let plan_started = Instant::now();
        let plan = C::plan_pass(copies);
        let plan_nanos = if R::ENABLED {
            plan_started.elapsed().as_nanos() as u64
        } else {
            0
        };
        let started = Instant::now();
        let mut shard_reports: Vec<ShardReport> = Vec::new();
        let per_copy: Vec<Vec<C::Acc>> = if workers > 1 {
            let view: ShardedSnapshot<'_, C::Item> =
                ShardedSnapshot::new(num_vertices, items, shards.max(1));
            let copies_ref = &*copies;
            let plan_ref = &plan;
            let fold = |s: usize, slice: &[C::Item]| {
                let mut accs: Vec<C::Acc> = copies_ref.iter().map(|c| c.begin_pass()).collect();
                let mut scratch = C::Scratch::default();
                let mut pos = view.shard_range(s).start as u64;
                let batch = C::cohort_batch(batch, slice.len()).max(1);
                for chunk in slice.chunks(batch) {
                    C::fold_cohort(plan_ref, copies_ref, &mut accs, &mut scratch, pos, chunk);
                    pos += chunk.len() as u64;
                }
                accs
            };
            let per_shard = if R::ENABLED {
                let timed = view.pass_sharded_timed(workers, fold);
                let mut per_shard = Vec::with_capacity(timed.len());
                for (s, (accs, nanos)) in timed.into_iter().enumerate() {
                    shard_reports.push(ShardReport {
                        items: view.shard(s).len() as u64,
                        nanos,
                    });
                    per_shard.push(accs);
                }
                per_shard
            } else {
                view.pass_sharded(workers, fold)
            };
            transpose(per_shard, copies.len())
        } else if !C::SHARES_PROBES {
            // Independent copies (no shared plan): drive them one at a
            // time — begin, fold the whole slice, finish — so only one
            // copy's pass state is live at once. Each copy's pass time
            // includes its finish, matching the per-copy driver's clock.
            for k in 0..copies.len() {
                let copy_started = Instant::now();
                let mut acc = copies[k].begin_pass();
                let mut scratch = C::Scratch::default();
                let mut pos = 0u64;
                let batch = C::cohort_batch(batch, items.len()).max(1);
                for chunk in items.chunks(batch) {
                    C::fold_cohort(
                        &plan,
                        &copies[k..k + 1],
                        std::slice::from_mut(&mut acc),
                        &mut scratch,
                        pos,
                        chunk,
                    );
                    pos += chunk.len() as u64;
                }
                let copy_pass = copies[k].pass_index();
                copies[k].finish_pass(vec![acc])?;
                copies[k].record_pass_nanos(copy_pass, copy_started.elapsed().as_nanos() as u64);
            }
            Vec::new()
        } else {
            let mut accs: Vec<C::Acc> = copies.iter().map(|c| c.begin_pass()).collect();
            let mut scratch = C::Scratch::default();
            let mut pos = 0u64;
            let batch = C::cohort_batch(batch, items.len()).max(1);
            for chunk in items.chunks(batch) {
                C::fold_cohort(&plan, copies, &mut accs, &mut scratch, pos, chunk);
                pos += chunk.len() as u64;
            }
            accs.into_iter().map(|acc| vec![acc]).collect()
        };
        drop(plan);
        let nanos = started.elapsed().as_nanos() as u64;
        if R::ENABLED {
            if workers <= 1 {
                // Unsharded sweeps report one synthetic whole-stream shard
                // so the report shape is uniform.
                shard_reports.push(ShardReport {
                    items: items.len() as u64,
                    nanos,
                });
            }
            recorder.add(lane, Counter::SweepsExecuted, 1);
            recorder.span(lane, Span::PlanBuild, plan_nanos);
            recorder.span(lane, Span::FusedSweep, nanos);
            recorder.observe(lane, Hist::PassNanos, nanos);
            for (s, shard) in shard_reports.iter().enumerate() {
                recorder.observe(s, Hist::ShardNanos, shard.nanos);
            }
            trace.push(PassTrace {
                pass,
                plan_nanos,
                sweep_nanos: nanos,
                shards: std::mem::take(&mut shard_reports),
            });
        }
        for (accs, copy) in per_copy.into_iter().zip(copies.iter_mut()) {
            let pass = copy.pass_index();
            copy.finish_pass(accs)?;
            copy.record_pass_nanos(pass, nanos);
        }
    }
    Ok(sweeps)
}
