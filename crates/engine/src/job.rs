//! Job specifications and per-job results.

use std::fmt;
use std::time::Duration;

use degentri_baselines::{BaselineOutcome, StreamingTriangleCounter};
use degentri_core::{EstimatorConfig, RngMode, TriangleEstimation};
use degentri_dynamic::{DynamicEstimatorConfig, DynamicOutcome};

/// A baseline algorithm boxed for concurrent execution.
pub type BoxedBaseline = Box<dyn StreamingTriangleCounter + Send + Sync>;

/// What a job runs.
pub enum JobKind {
    /// The paper's six-pass estimator (Algorithm 2), `config.copies` copies
    /// aggregated by median-of-means.
    Main(EstimatorConfig),
    /// The three-pass ideal (degree-oracle) estimator of Section 4; the
    /// engine builds the degree table once per run and shares it.
    Ideal(EstimatorConfig),
    /// Any Table-1 baseline through the common
    /// [`StreamingTriangleCounter`] trait (one task per job).
    Baseline(BoxedBaseline),
    /// The turnstile (insert/delete) estimator of `degentri-dynamic`,
    /// `config.copies` copies aggregated by their median. Runs over a
    /// shared dynamic snapshot through
    /// [`Engine::run_dynamic`](crate::Engine::run_dynamic).
    Dynamic(DynamicEstimatorConfig),
}

impl JobKind {
    /// The insert-only estimator configuration, when the job has one.
    pub fn config(&self) -> Option<&EstimatorConfig> {
        match self {
            JobKind::Main(c) | JobKind::Ideal(c) => Some(c),
            JobKind::Baseline(_) | JobKind::Dynamic(_) => None,
        }
    }

    /// The turnstile estimator configuration, when the job has one.
    pub fn dynamic_config(&self) -> Option<&DynamicEstimatorConfig> {
        match self {
            JobKind::Dynamic(c) => Some(c),
            _ => None,
        }
    }

    /// Number of schedulable tasks this job expands into — the engine
    /// schedules exactly this many. Zero only for a `copies = 0`
    /// configuration, which [`Engine::run`](crate::Engine::run) rejects
    /// during validation before expanding any job.
    pub fn task_count(&self) -> usize {
        match self {
            JobKind::Main(c) | JobKind::Ideal(c) => c.copies,
            JobKind::Baseline(_) => 1,
            JobKind::Dynamic(c) => c.copies,
        }
    }

    /// Whether this job's copies can run passes shard-parallel over a
    /// sharded snapshot view ([`ShardedStream`](degentri_stream::ShardedStream)
    /// / [`ShardedDynamicStream`](degentri_stream::ShardedDynamicStream))
    /// when executed under `effective_mode` (the engine's
    /// [`rng_mode`](crate::EngineConfig::rng_mode) override, or the job's
    /// own mode when the engine respects it).
    ///
    /// The six-pass estimator always supports it — its order-insensitive
    /// passes shard in either mode, and under [`RngMode::Counter`] all six
    /// do. The ideal estimator's passes 1–2 consume RNG per edge, so it
    /// shards only under [`RngMode::Counter`]; likewise the turnstile
    /// estimator, whose sketch folds shard once its seeds come from keyed
    /// counter hashes. Baselines build stateful per-edge structures and
    /// never shard.
    pub fn supports_intra_task_sharding(&self, effective_mode: RngMode) -> bool {
        match self {
            JobKind::Main(_) => true,
            JobKind::Ideal(_) | JobKind::Dynamic(_) => effective_mode == RngMode::Counter,
            JobKind::Baseline(_) => false,
        }
    }
}

impl fmt::Debug for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobKind::Main(c) => f.debug_tuple("Main").field(c).finish(),
            JobKind::Ideal(c) => f.debug_tuple("Ideal").field(c).finish(),
            JobKind::Baseline(b) => f.debug_tuple("Baseline").field(&b.name()).finish(),
            JobKind::Dynamic(c) => f.debug_tuple("Dynamic").field(c).finish(),
        }
    }
}

/// One unit of work submitted to the engine.
#[derive(Debug)]
pub struct JobSpec {
    /// Human-readable label echoed in the [`JobResult`].
    pub label: String,
    /// What to run.
    pub kind: JobKind,
    /// Optional wall-clock budget, measured from run start. When it
    /// elapses, this job (alone) is cut at the next pass/task boundary with
    /// [`EngineError::DeadlineExceeded`](crate::EngineError::DeadlineExceeded);
    /// batchmates sharing the run are unaffected.
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// A job running the paper's six-pass estimator.
    pub fn main(label: impl Into<String>, config: EstimatorConfig) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Main(config),
            deadline: None,
        }
    }

    /// A job running the ideal (degree-oracle) estimator.
    pub fn ideal(label: impl Into<String>, config: EstimatorConfig) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Ideal(config),
            deadline: None,
        }
    }

    /// A job running a Table-1 baseline.
    pub fn baseline(label: impl Into<String>, counter: BoxedBaseline) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Baseline(counter),
            deadline: None,
        }
    }

    /// A job running the turnstile (insert/delete) estimator over a shared
    /// dynamic snapshot (execute with
    /// [`Engine::run_dynamic`](crate::Engine::run_dynamic)) — or over a
    /// shared edge snapshot, which serves the copies the same edges as an
    /// insert-only update stream.
    pub fn dynamic(label: impl Into<String>, config: DynamicEstimatorConfig) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Dynamic(config),
            deadline: None,
        }
    }

    /// Caps this job's wall-clock time, measured from run start.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }
}

/// The successful payload of a [`JobResult`].
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The aggregated estimation (for baselines: a single-copy estimation
    /// carrying the baseline's estimate, passes and space; for turnstile
    /// jobs: the median-of-copies outcome mapped into the common shape).
    pub estimation: TriangleEstimation,
    /// The full turnstile outcome (surviving edges, sketch counts, …) when
    /// this was a [`JobKind::Dynamic`] job; `None` otherwise.
    pub dynamic: Option<DynamicOutcome>,
}

/// Result of one job executed by the engine.
///
/// Execution-time failures (a panicking copy, an estimator error, a blown
/// deadline, cancellation) are contained *per job*: they land in this
/// struct's [`outcome`](JobResult::outcome) instead of failing the run, so
/// one bad job never discards its batchmates' finished work. Pre-flight
/// failures (invalid configuration, empty streams, jobs submitted to the
/// wrong entry point) still fail the whole run before any job starts.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The label of the submitted [`JobSpec`].
    pub label: String,
    /// The job's output, or the first error its tasks hit (in deterministic
    /// task order).
    pub outcome: Result<JobOutput, crate::EngineError>,
    /// Total CPU-busy time the job's tasks consumed across all workers
    /// (larger than the job's share of wall time when copies overlap;
    /// partial for jobs that failed mid-run).
    pub busy: Duration,
    /// Number of tasks (copies, or 1 for a baseline) that started.
    pub tasks: usize,
}

impl JobResult {
    /// Whether the job completed successfully.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// The contained error, when the job failed.
    pub fn error(&self) -> Option<&crate::EngineError> {
        self.outcome.as_ref().err()
    }

    /// The successful output, when there is one.
    pub fn output(&self) -> Option<&JobOutput> {
        self.outcome.as_ref().ok()
    }

    /// The aggregated estimation of a successful job.
    ///
    /// # Panics
    ///
    /// Panics when the job failed — check [`JobResult::is_ok`] or match on
    /// [`JobResult::outcome`] first if failures are expected.
    pub fn estimation(&self) -> &TriangleEstimation {
        match &self.outcome {
            Ok(output) => &output.estimation,
            Err(e) => panic!("job '{}' failed: {e}", self.label),
        }
    }

    /// The aggregated estimation of a successful job, by value.
    ///
    /// # Panics
    ///
    /// Panics when the job failed, like [`JobResult::estimation`].
    pub fn into_estimation(self) -> TriangleEstimation {
        match self.outcome {
            Ok(output) => output.estimation,
            Err(e) => panic!("job '{}' failed: {e}", self.label),
        }
    }

    /// The full turnstile outcome of a successful [`JobKind::Dynamic`] job;
    /// `None` for non-dynamic or failed jobs.
    pub fn dynamic(&self) -> Option<&DynamicOutcome> {
        self.output().and_then(|o| o.dynamic.as_ref())
    }
}

/// Converts a baseline outcome into the engine's common result shape.
pub(crate) fn baseline_estimation(outcome: &BaselineOutcome) -> TriangleEstimation {
    TriangleEstimation {
        estimate: outcome.estimate,
        copy_estimates: vec![outcome.estimate],
        passes_per_copy: outcome.passes,
        space: outcome.space,
        copies: 1,
    }
}

/// Converts a turnstile outcome into the engine's common result shape
/// (the full outcome also travels on [`JobResult::dynamic`]).
pub(crate) fn dynamic_estimation(outcome: &DynamicOutcome) -> TriangleEstimation {
    TriangleEstimation {
        estimate: outcome.estimate,
        copy_estimates: outcome.copy_estimates.clone(),
        passes_per_copy: outcome.passes,
        space: outcome.space,
        copies: outcome.copies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_stream::SpaceReport;

    #[test]
    fn job_kinds_expose_config_and_task_counts() {
        let config = EstimatorConfig::builder().copies(5).build();
        let main = JobSpec::main("m", config.clone());
        assert_eq!(main.kind.task_count(), 5);
        assert_eq!(main.kind.config().unwrap().copies, 5);
        let ideal = JobSpec::ideal("i", config);
        assert_eq!(ideal.kind.task_count(), 5);
        assert!(format!("{:?}", ideal.kind).contains("Ideal"));
        // The six-pass estimator shards in either randomness regime; the
        // ideal estimator needs counter-based randomness for its sampling
        // passes to become order-insensitive.
        assert!(main.kind.supports_intra_task_sharding(RngMode::Sequential));
        assert!(main.kind.supports_intra_task_sharding(RngMode::Counter));
        assert!(!ideal.kind.supports_intra_task_sharding(RngMode::Sequential));
        assert!(ideal.kind.supports_intra_task_sharding(RngMode::Counter));
    }

    #[test]
    fn dynamic_jobs_expose_their_config_and_shard_under_counter_mode() {
        let config = DynamicEstimatorConfig::new(3, 50).with_copies(4);
        let job = JobSpec::dynamic("turnstile", config);
        assert_eq!(job.kind.task_count(), 4);
        assert!(job.kind.config().is_none());
        assert_eq!(job.kind.dynamic_config().unwrap().copies, 4);
        assert!(format!("{:?}", job.kind).contains("Dynamic"));
        // Sketch folds shard only once seeds come from counter hashes.
        assert!(!job.kind.supports_intra_task_sharding(RngMode::Sequential));
        assert!(job.kind.supports_intra_task_sharding(RngMode::Counter));
    }

    #[test]
    fn deadlines_attach_to_any_job_kind() {
        let config = EstimatorConfig::builder().copies(2).build();
        let job = JobSpec::main("m", config).deadline(Duration::from_millis(250));
        assert_eq!(job.deadline, Some(Duration::from_millis(250)));
        let plain = JobSpec::baseline("b", Box::new(degentri_baselines::ExactStreamCounter));
        assert_eq!(plain.deadline, None);
    }

    #[test]
    fn job_results_expose_outcomes_and_contained_errors() {
        let outcome = BaselineOutcome {
            estimate: 5.0,
            passes: 1,
            space: SpaceReport {
                peak_words: 1,
                final_words: 1,
            },
        };
        let ok = JobResult {
            label: "ok".into(),
            outcome: Ok(JobOutput {
                estimation: baseline_estimation(&outcome),
                dynamic: None,
            }),
            busy: Duration::ZERO,
            tasks: 1,
        };
        assert!(ok.is_ok());
        assert!(ok.error().is_none());
        assert_eq!(ok.estimation().estimate, 5.0);
        assert!(ok.dynamic().is_none());
        let failed = JobResult {
            label: "bad".into(),
            outcome: Err(crate::EngineError::DeadlineExceeded {
                completed_passes: 1,
            }),
            busy: Duration::ZERO,
            tasks: 1,
        };
        assert!(!failed.is_ok());
        assert!(failed.output().is_none());
        assert!(matches!(
            failed.error(),
            Some(crate::EngineError::DeadlineExceeded {
                completed_passes: 1
            })
        ));
        assert!(failed.dynamic().is_none());
        let caught = std::panic::catch_unwind(|| failed.estimation().estimate);
        assert!(caught.is_err(), "estimation() panics on a failed job");
    }

    #[test]
    fn baseline_outcomes_map_to_single_copy_estimations() {
        let outcome = BaselineOutcome {
            estimate: 12.5,
            passes: 2,
            space: SpaceReport {
                peak_words: 7,
                final_words: 3,
            },
        };
        let est = baseline_estimation(&outcome);
        assert_eq!(est.estimate, 12.5);
        assert_eq!(est.copy_estimates, vec![12.5]);
        assert_eq!(est.passes_per_copy, 2);
        assert_eq!(est.copies, 1);
        assert_eq!(est.space.peak_words, 7);
    }
}
