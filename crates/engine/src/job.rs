//! Job specifications and per-job results.

use std::fmt;
use std::time::Duration;

use degentri_baselines::{BaselineOutcome, StreamingTriangleCounter};
use degentri_core::{EstimatorConfig, RngMode, TriangleEstimation};
use degentri_dynamic::{DynamicEstimatorConfig, DynamicOutcome};

/// A baseline algorithm boxed for concurrent execution.
pub type BoxedBaseline = Box<dyn StreamingTriangleCounter + Send + Sync>;

/// What a job runs.
pub enum JobKind {
    /// The paper's six-pass estimator (Algorithm 2), `config.copies` copies
    /// aggregated by median-of-means.
    Main(EstimatorConfig),
    /// The three-pass ideal (degree-oracle) estimator of Section 4; the
    /// engine builds the degree table once per run and shares it.
    Ideal(EstimatorConfig),
    /// Any Table-1 baseline through the common
    /// [`StreamingTriangleCounter`] trait (one task per job).
    Baseline(BoxedBaseline),
    /// The turnstile (insert/delete) estimator of `degentri-dynamic`,
    /// `config.copies` copies aggregated by their median. Runs over a
    /// shared dynamic snapshot through
    /// [`Engine::run_dynamic`](crate::Engine::run_dynamic).
    Dynamic(DynamicEstimatorConfig),
}

impl JobKind {
    /// The insert-only estimator configuration, when the job has one.
    pub fn config(&self) -> Option<&EstimatorConfig> {
        match self {
            JobKind::Main(c) | JobKind::Ideal(c) => Some(c),
            JobKind::Baseline(_) | JobKind::Dynamic(_) => None,
        }
    }

    /// The turnstile estimator configuration, when the job has one.
    pub fn dynamic_config(&self) -> Option<&DynamicEstimatorConfig> {
        match self {
            JobKind::Dynamic(c) => Some(c),
            _ => None,
        }
    }

    /// Number of schedulable tasks this job expands into — the engine
    /// schedules exactly this many. Zero only for a `copies = 0`
    /// configuration, which [`Engine::run`](crate::Engine::run) rejects
    /// during validation before expanding any job.
    pub fn task_count(&self) -> usize {
        match self {
            JobKind::Main(c) | JobKind::Ideal(c) => c.copies,
            JobKind::Baseline(_) => 1,
            JobKind::Dynamic(c) => c.copies,
        }
    }

    /// Whether this job's copies can run passes shard-parallel over a
    /// sharded snapshot view ([`ShardedStream`](degentri_stream::ShardedStream)
    /// / [`ShardedDynamicStream`](degentri_stream::ShardedDynamicStream))
    /// when executed under `effective_mode` (the engine's
    /// [`rng_mode`](crate::EngineConfig::rng_mode) override, or the job's
    /// own mode when the engine respects it).
    ///
    /// The six-pass estimator always supports it — its order-insensitive
    /// passes shard in either mode, and under [`RngMode::Counter`] all six
    /// do. The ideal estimator's passes 1–2 consume RNG per edge, so it
    /// shards only under [`RngMode::Counter`]; likewise the turnstile
    /// estimator, whose sketch folds shard once its seeds come from keyed
    /// counter hashes. Baselines build stateful per-edge structures and
    /// never shard.
    pub fn supports_intra_task_sharding(&self, effective_mode: RngMode) -> bool {
        match self {
            JobKind::Main(_) => true,
            JobKind::Ideal(_) | JobKind::Dynamic(_) => effective_mode == RngMode::Counter,
            JobKind::Baseline(_) => false,
        }
    }
}

impl fmt::Debug for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobKind::Main(c) => f.debug_tuple("Main").field(c).finish(),
            JobKind::Ideal(c) => f.debug_tuple("Ideal").field(c).finish(),
            JobKind::Baseline(b) => f.debug_tuple("Baseline").field(&b.name()).finish(),
            JobKind::Dynamic(c) => f.debug_tuple("Dynamic").field(c).finish(),
        }
    }
}

/// One unit of work submitted to the engine.
#[derive(Debug)]
pub struct JobSpec {
    /// Human-readable label echoed in the [`JobResult`].
    pub label: String,
    /// What to run.
    pub kind: JobKind,
}

impl JobSpec {
    /// A job running the paper's six-pass estimator.
    pub fn main(label: impl Into<String>, config: EstimatorConfig) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Main(config),
        }
    }

    /// A job running the ideal (degree-oracle) estimator.
    pub fn ideal(label: impl Into<String>, config: EstimatorConfig) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Ideal(config),
        }
    }

    /// A job running a Table-1 baseline.
    pub fn baseline(label: impl Into<String>, counter: BoxedBaseline) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Baseline(counter),
        }
    }

    /// A job running the turnstile (insert/delete) estimator over a shared
    /// dynamic snapshot (execute with
    /// [`Engine::run_dynamic`](crate::Engine::run_dynamic)).
    pub fn dynamic(label: impl Into<String>, config: DynamicEstimatorConfig) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Dynamic(config),
        }
    }
}

/// Result of one job executed by the engine.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The label of the submitted [`JobSpec`].
    pub label: String,
    /// The aggregated estimation (for baselines: a single-copy estimation
    /// carrying the baseline's estimate, passes and space; for turnstile
    /// jobs: the median-of-copies outcome mapped into the common shape).
    pub estimation: TriangleEstimation,
    /// The full turnstile outcome (surviving edges, sketch counts, …) when
    /// this was a [`JobKind::Dynamic`] job; `None` otherwise.
    pub dynamic: Option<DynamicOutcome>,
    /// Total CPU-busy time the job's tasks consumed across all workers
    /// (larger than the job's share of wall time when copies overlap).
    pub busy: Duration,
    /// Number of tasks (copies, or 1 for a baseline) that ran.
    pub tasks: usize,
}

/// Converts a baseline outcome into the engine's common result shape.
pub(crate) fn baseline_estimation(outcome: &BaselineOutcome) -> TriangleEstimation {
    TriangleEstimation {
        estimate: outcome.estimate,
        copy_estimates: vec![outcome.estimate],
        passes_per_copy: outcome.passes,
        space: outcome.space,
        copies: 1,
    }
}

/// Converts a turnstile outcome into the engine's common result shape
/// (the full outcome also travels on [`JobResult::dynamic`]).
pub(crate) fn dynamic_estimation(outcome: &DynamicOutcome) -> TriangleEstimation {
    TriangleEstimation {
        estimate: outcome.estimate,
        copy_estimates: outcome.copy_estimates.clone(),
        passes_per_copy: outcome.passes,
        space: outcome.space,
        copies: outcome.copies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_stream::SpaceReport;

    #[test]
    fn job_kinds_expose_config_and_task_counts() {
        let config = EstimatorConfig::builder().copies(5).build();
        let main = JobSpec::main("m", config.clone());
        assert_eq!(main.kind.task_count(), 5);
        assert_eq!(main.kind.config().unwrap().copies, 5);
        let ideal = JobSpec::ideal("i", config);
        assert_eq!(ideal.kind.task_count(), 5);
        assert!(format!("{:?}", ideal.kind).contains("Ideal"));
        // The six-pass estimator shards in either randomness regime; the
        // ideal estimator needs counter-based randomness for its sampling
        // passes to become order-insensitive.
        assert!(main.kind.supports_intra_task_sharding(RngMode::Sequential));
        assert!(main.kind.supports_intra_task_sharding(RngMode::Counter));
        assert!(!ideal.kind.supports_intra_task_sharding(RngMode::Sequential));
        assert!(ideal.kind.supports_intra_task_sharding(RngMode::Counter));
    }

    #[test]
    fn dynamic_jobs_expose_their_config_and_shard_under_counter_mode() {
        let config = DynamicEstimatorConfig::new(3, 50).with_copies(4);
        let job = JobSpec::dynamic("turnstile", config);
        assert_eq!(job.kind.task_count(), 4);
        assert!(job.kind.config().is_none());
        assert_eq!(job.kind.dynamic_config().unwrap().copies, 4);
        assert!(format!("{:?}", job.kind).contains("Dynamic"));
        // Sketch folds shard only once seeds come from counter hashes.
        assert!(!job.kind.supports_intra_task_sharding(RngMode::Sequential));
        assert!(job.kind.supports_intra_task_sharding(RngMode::Counter));
    }

    #[test]
    fn baseline_outcomes_map_to_single_copy_estimations() {
        let outcome = BaselineOutcome {
            estimate: 12.5,
            passes: 2,
            space: SpaceReport {
                peak_words: 7,
                final_words: 3,
            },
        };
        let est = baseline_estimation(&outcome);
        assert_eq!(est.estimate, 12.5);
        assert_eq!(est.copy_estimates, vec![12.5]);
        assert_eq!(est.passes_per_copy, 2);
        assert_eq!(est.copies, 1);
        assert_eq!(est.space.peak_words, 7);
    }
}
