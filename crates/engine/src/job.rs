//! Job specifications and per-job results.

use std::fmt;
use std::time::Duration;

use degentri_baselines::{BaselineOutcome, StreamingTriangleCounter};
use degentri_core::{EstimatorConfig, RngMode, TriangleEstimation};
use degentri_dynamic::{DynamicEstimatorConfig, DynamicOutcome};

/// A baseline algorithm boxed for concurrent execution.
pub type BoxedBaseline = Box<dyn StreamingTriangleCounter + Send + Sync>;

/// Per-job quorum policy gating graceful degradation.
///
/// The estimators aggregate independent copies (median-of-means / median),
/// so a job that loses a copy is less accurate, not dead. With
/// `allow_degraded` set, a job whose copy failures survive the retry layer
/// still succeeds as long as at least `min_copies` copies completed: its
/// output aggregates exactly the surviving copies and carries a
/// [`Degradation`] record. The default keeps today's all-or-nothing
/// semantics (any copy failure fails the job).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumPolicy {
    /// Minimum surviving copies required to accept a degraded result
    /// (effectively at least 1 — an aggregate over zero copies is
    /// meaningless, so `0` behaves like `1`).
    pub min_copies: usize,
    /// Whether the job may succeed with fewer copies than configured.
    pub allow_degraded: bool,
}

impl QuorumPolicy {
    /// Accept any non-empty surviving subset.
    pub fn best_effort() -> Self {
        QuorumPolicy {
            min_copies: 1,
            allow_degraded: true,
        }
    }

    /// Require at least `min_copies` survivors.
    pub fn at_least(min_copies: usize) -> Self {
        QuorumPolicy {
            min_copies,
            allow_degraded: true,
        }
    }
}

impl Default for QuorumPolicy {
    /// All-or-nothing: any copy failure fails the job.
    fn default() -> Self {
        QuorumPolicy {
            min_copies: 0,
            allow_degraded: false,
        }
    }
}

/// Backoff schedule between retry attempts of a failed copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backoff {
    /// The same delay before every retry.
    Fixed(Duration),
    /// `base`, `2·base`, `4·base`, … capped at `cap`.
    Exponential {
        /// Delay before the first retry.
        base: Duration,
        /// Upper bound on any single delay.
        cap: Duration,
    },
}

/// Deterministic retry policy for failed copies.
///
/// Copy seeds are position-keyed (`RngMode::Counter`), so re-running only
/// the failed copies is bit-identical to an undisturbed run — retrying
/// never perturbs results, it only spends time. Retries run after the
/// main tiers on the coordinator, respect the job deadline and the cancel
/// token (a retry that cannot fit before the deadline short-circuits
/// instead of sleeping), and a copy that exhausts its attempts is
/// quarantined into the degraded path governed by [`QuorumPolicy`].
/// Baseline jobs are not copy-parallel and are never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per copy including the original execution (≥ 1;
    /// `1` means no retries). Validated when a run starts.
    pub max_attempts: usize,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
    /// Optional cap on total retries across all copies of one job; when
    /// spent, remaining failed copies quarantine immediately.
    pub retry_budget: Option<usize>,
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts per copy, no backoff
    /// delay, and no per-job budget.
    pub fn new(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts,
            backoff: Backoff::Fixed(Duration::ZERO),
            retry_budget: None,
        }
    }

    /// Sets the backoff schedule.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Caps total retries across all copies of the job.
    pub fn with_budget(mut self, retries: usize) -> Self {
        self.retry_budget = Some(retries);
        self
    }

    /// The delay before retry number `retry` (1-based). Pure function, so
    /// the schedule is inspectable and testable without sleeping.
    pub fn delay(&self, retry: usize) -> Duration {
        match self.backoff {
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base, cap } => {
                // Saturate the shift well before Duration overflows.
                let doublings = retry.saturating_sub(1).min(32) as u32;
                base.saturating_mul(1u32 << doublings.min(31)).min(cap)
            }
        }
    }
}

/// How a degraded job's output was reduced: which copies were lost and
/// what the surviving aggregate is built from.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Copies whose results the aggregate uses.
    pub copies_used: usize,
    /// Copies lost to unrecovered failures.
    pub copies_lost: usize,
    /// The per-copy errors, in copy order (each copy's first unrecovered
    /// error).
    pub copy_errors: Vec<(usize, crate::EngineError)>,
}

/// What a job runs.
pub enum JobKind {
    /// The paper's six-pass estimator (Algorithm 2), `config.copies` copies
    /// aggregated by median-of-means.
    Main(EstimatorConfig),
    /// The three-pass ideal (degree-oracle) estimator of Section 4; the
    /// engine builds the degree table once per run and shares it.
    Ideal(EstimatorConfig),
    /// Any Table-1 baseline through the common
    /// [`StreamingTriangleCounter`] trait (one task per job).
    Baseline(BoxedBaseline),
    /// The turnstile (insert/delete) estimator of `degentri-dynamic`,
    /// `config.copies` copies aggregated by their median. Runs over a
    /// shared dynamic snapshot through
    /// [`Engine::run_dynamic`](crate::Engine::run_dynamic).
    Dynamic(DynamicEstimatorConfig),
}

impl JobKind {
    /// The insert-only estimator configuration, when the job has one.
    pub fn config(&self) -> Option<&EstimatorConfig> {
        match self {
            JobKind::Main(c) | JobKind::Ideal(c) => Some(c),
            JobKind::Baseline(_) | JobKind::Dynamic(_) => None,
        }
    }

    /// The turnstile estimator configuration, when the job has one.
    pub fn dynamic_config(&self) -> Option<&DynamicEstimatorConfig> {
        match self {
            JobKind::Dynamic(c) => Some(c),
            _ => None,
        }
    }

    /// Number of schedulable tasks this job expands into — the engine
    /// schedules exactly this many. Zero only for a `copies = 0`
    /// configuration, which [`Engine::run`](crate::Engine::run) rejects
    /// during validation before expanding any job.
    pub fn task_count(&self) -> usize {
        match self {
            JobKind::Main(c) | JobKind::Ideal(c) => c.copies,
            JobKind::Baseline(_) => 1,
            JobKind::Dynamic(c) => c.copies,
        }
    }

    /// Whether this job's copies can run passes shard-parallel over a
    /// sharded snapshot view ([`ShardedStream`](degentri_stream::ShardedStream)
    /// / [`ShardedDynamicStream`](degentri_stream::ShardedDynamicStream))
    /// when executed under `effective_mode` (the engine's
    /// [`rng_mode`](crate::EngineConfig::rng_mode) override, or the job's
    /// own mode when the engine respects it).
    ///
    /// The six-pass estimator always supports it — its order-insensitive
    /// passes shard in either mode, and under [`RngMode::Counter`] all six
    /// do. The ideal estimator's passes 1–2 consume RNG per edge, so it
    /// shards only under [`RngMode::Counter`]; likewise the turnstile
    /// estimator, whose sketch folds shard once its seeds come from keyed
    /// counter hashes. Baselines build stateful per-edge structures and
    /// never shard.
    pub fn supports_intra_task_sharding(&self, effective_mode: RngMode) -> bool {
        match self {
            JobKind::Main(_) => true,
            JobKind::Ideal(_) | JobKind::Dynamic(_) => effective_mode == RngMode::Counter,
            JobKind::Baseline(_) => false,
        }
    }
}

impl fmt::Debug for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobKind::Main(c) => f.debug_tuple("Main").field(c).finish(),
            JobKind::Ideal(c) => f.debug_tuple("Ideal").field(c).finish(),
            JobKind::Baseline(b) => f.debug_tuple("Baseline").field(&b.name()).finish(),
            JobKind::Dynamic(c) => f.debug_tuple("Dynamic").field(c).finish(),
        }
    }
}

/// One unit of work submitted to the engine.
#[derive(Debug)]
pub struct JobSpec {
    /// Human-readable label echoed in the [`JobResult`].
    pub label: String,
    /// What to run.
    pub kind: JobKind,
    /// Optional wall-clock budget, measured from run start. When it
    /// elapses, this job (alone) is cut at the next pass/task boundary with
    /// [`EngineError::DeadlineExceeded`](crate::EngineError::DeadlineExceeded);
    /// batchmates sharing the run are unaffected.
    pub deadline: Option<Duration>,
    /// Quorum policy for graceful degradation (default: all-or-nothing).
    pub quorum: QuorumPolicy,
    /// Retry policy for this job's failed copies, overriding the engine's
    /// [`retry_policy`](crate::EngineConfig::retry_policy) default; `None`
    /// falls back to the engine default (which itself defaults to no
    /// retries).
    pub retry: Option<RetryPolicy>,
}

impl JobSpec {
    /// A job running the paper's six-pass estimator.
    pub fn main(label: impl Into<String>, config: EstimatorConfig) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Main(config),
            deadline: None,
            quorum: QuorumPolicy::default(),
            retry: None,
        }
    }

    /// A job running the ideal (degree-oracle) estimator.
    pub fn ideal(label: impl Into<String>, config: EstimatorConfig) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Ideal(config),
            deadline: None,
            quorum: QuorumPolicy::default(),
            retry: None,
        }
    }

    /// A job running a Table-1 baseline.
    pub fn baseline(label: impl Into<String>, counter: BoxedBaseline) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Baseline(counter),
            deadline: None,
            quorum: QuorumPolicy::default(),
            retry: None,
        }
    }

    /// A job running the turnstile (insert/delete) estimator over a shared
    /// dynamic snapshot (execute with
    /// [`Engine::run_dynamic`](crate::Engine::run_dynamic)) — or over a
    /// shared edge snapshot, which serves the copies the same edges as an
    /// insert-only update stream.
    pub fn dynamic(label: impl Into<String>, config: DynamicEstimatorConfig) -> Self {
        JobSpec {
            label: label.into(),
            kind: JobKind::Dynamic(config),
            deadline: None,
            quorum: QuorumPolicy::default(),
            retry: None,
        }
    }

    /// Caps this job's wall-clock time, measured from run start.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Sets the quorum policy for graceful degradation.
    pub fn quorum(mut self, policy: QuorumPolicy) -> Self {
        self.quorum = policy;
        self
    }

    /// Sets this job's retry policy (overriding the engine default).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }
}

/// The successful payload of a [`JobResult`].
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The aggregated estimation (for baselines: a single-copy estimation
    /// carrying the baseline's estimate, passes and space; for turnstile
    /// jobs: the median-of-copies outcome mapped into the common shape).
    pub estimation: TriangleEstimation,
    /// The full turnstile outcome (surviving edges, sketch counts, …) when
    /// this was a [`JobKind::Dynamic`] job; `None` otherwise.
    pub dynamic: Option<DynamicOutcome>,
    /// Present when the job succeeded with fewer copies than configured
    /// (copy failures survived the retry layer but a [`QuorumPolicy`]
    /// accepted the surviving subset); `None` for a full-strength result.
    pub degraded: Option<Degradation>,
}

/// Result of one job executed by the engine.
///
/// Execution-time failures (a panicking copy, an estimator error, a blown
/// deadline, cancellation) are contained *per job*: they land in this
/// struct's [`outcome`](JobResult::outcome) instead of failing the run, so
/// one bad job never discards its batchmates' finished work. Pre-flight
/// failures (invalid configuration, empty streams, jobs submitted to the
/// wrong entry point) still fail the whole run before any job starts.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The label of the submitted [`JobSpec`].
    pub label: String,
    /// The job's output, or the first error its tasks hit (in deterministic
    /// task order).
    pub outcome: Result<JobOutput, crate::EngineError>,
    /// Total CPU-busy time the job's tasks consumed across all workers
    /// (larger than the job's share of wall time when copies overlap;
    /// partial for jobs that failed mid-run).
    pub busy: Duration,
    /// Number of tasks (copies, or 1 for a baseline) that started.
    pub tasks: usize,
}

impl JobResult {
    /// Whether the job completed successfully.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// The contained error, when the job failed.
    pub fn error(&self) -> Option<&crate::EngineError> {
        self.outcome.as_ref().err()
    }

    /// The successful output, when there is one.
    pub fn output(&self) -> Option<&JobOutput> {
        self.outcome.as_ref().ok()
    }

    /// The aggregated estimation of a successful job.
    ///
    /// # Panics
    ///
    /// Panics when the job failed — check [`JobResult::is_ok`] or match on
    /// [`JobResult::outcome`] first if failures are expected.
    pub fn estimation(&self) -> &TriangleEstimation {
        match &self.outcome {
            Ok(output) => &output.estimation,
            Err(e) => panic!("job '{}' failed: {e}", self.label),
        }
    }

    /// The aggregated estimation of a successful job, by value.
    ///
    /// # Panics
    ///
    /// Panics when the job failed, like [`JobResult::estimation`].
    pub fn into_estimation(self) -> TriangleEstimation {
        match self.outcome {
            Ok(output) => output.estimation,
            Err(e) => panic!("job '{}' failed: {e}", self.label),
        }
    }

    /// The full turnstile outcome of a successful [`JobKind::Dynamic`] job;
    /// `None` for non-dynamic or failed jobs.
    pub fn dynamic(&self) -> Option<&DynamicOutcome> {
        self.output().and_then(|o| o.dynamic.as_ref())
    }

    /// The degradation record of a job that succeeded on a surviving-copy
    /// quorum; `None` for full-strength or failed jobs.
    pub fn degradation(&self) -> Option<&Degradation> {
        self.output().and_then(|o| o.degraded.as_ref())
    }

    /// Whether the job succeeded but with fewer copies than configured.
    pub fn is_degraded(&self) -> bool {
        self.degradation().is_some()
    }
}

/// Converts a baseline outcome into the engine's common result shape.
pub(crate) fn baseline_estimation(outcome: &BaselineOutcome) -> TriangleEstimation {
    TriangleEstimation {
        estimate: outcome.estimate,
        copy_estimates: vec![outcome.estimate],
        passes_per_copy: outcome.passes,
        space: outcome.space,
        copies: 1,
    }
}

/// Converts a turnstile outcome into the engine's common result shape
/// (the full outcome also travels on [`JobResult::dynamic`]).
pub(crate) fn dynamic_estimation(outcome: &DynamicOutcome) -> TriangleEstimation {
    TriangleEstimation {
        estimate: outcome.estimate,
        copy_estimates: outcome.copy_estimates.clone(),
        passes_per_copy: outcome.passes,
        space: outcome.space,
        copies: outcome.copies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_stream::SpaceReport;

    #[test]
    fn job_kinds_expose_config_and_task_counts() {
        let config = EstimatorConfig::builder().copies(5).build();
        let main = JobSpec::main("m", config.clone());
        assert_eq!(main.kind.task_count(), 5);
        assert_eq!(main.kind.config().unwrap().copies, 5);
        let ideal = JobSpec::ideal("i", config);
        assert_eq!(ideal.kind.task_count(), 5);
        assert!(format!("{:?}", ideal.kind).contains("Ideal"));
        // The six-pass estimator shards in either randomness regime; the
        // ideal estimator needs counter-based randomness for its sampling
        // passes to become order-insensitive.
        assert!(main.kind.supports_intra_task_sharding(RngMode::Sequential));
        assert!(main.kind.supports_intra_task_sharding(RngMode::Counter));
        assert!(!ideal.kind.supports_intra_task_sharding(RngMode::Sequential));
        assert!(ideal.kind.supports_intra_task_sharding(RngMode::Counter));
    }

    #[test]
    fn dynamic_jobs_expose_their_config_and_shard_under_counter_mode() {
        let config = DynamicEstimatorConfig::new(3, 50).with_copies(4);
        let job = JobSpec::dynamic("turnstile", config);
        assert_eq!(job.kind.task_count(), 4);
        assert!(job.kind.config().is_none());
        assert_eq!(job.kind.dynamic_config().unwrap().copies, 4);
        assert!(format!("{:?}", job.kind).contains("Dynamic"));
        // Sketch folds shard only once seeds come from counter hashes.
        assert!(!job.kind.supports_intra_task_sharding(RngMode::Sequential));
        assert!(job.kind.supports_intra_task_sharding(RngMode::Counter));
    }

    #[test]
    fn deadlines_attach_to_any_job_kind() {
        let config = EstimatorConfig::builder().copies(2).build();
        let job = JobSpec::main("m", config).deadline(Duration::from_millis(250));
        assert_eq!(job.deadline, Some(Duration::from_millis(250)));
        let plain = JobSpec::baseline("b", Box::new(degentri_baselines::ExactStreamCounter));
        assert_eq!(plain.deadline, None);
    }

    #[test]
    fn job_results_expose_outcomes_and_contained_errors() {
        let outcome = BaselineOutcome {
            estimate: 5.0,
            passes: 1,
            space: SpaceReport {
                peak_words: 1,
                final_words: 1,
            },
        };
        let ok = JobResult {
            label: "ok".into(),
            outcome: Ok(JobOutput {
                estimation: baseline_estimation(&outcome),
                dynamic: None,
                degraded: None,
            }),
            busy: Duration::ZERO,
            tasks: 1,
        };
        assert!(ok.is_ok());
        assert!(ok.error().is_none());
        assert_eq!(ok.estimation().estimate, 5.0);
        assert!(ok.dynamic().is_none());
        let failed = JobResult {
            label: "bad".into(),
            outcome: Err(crate::EngineError::DeadlineExceeded {
                completed_passes: 1,
            }),
            busy: Duration::ZERO,
            tasks: 1,
        };
        assert!(!failed.is_ok());
        assert!(failed.output().is_none());
        assert!(matches!(
            failed.error(),
            Some(crate::EngineError::DeadlineExceeded {
                completed_passes: 1
            })
        ));
        assert!(failed.dynamic().is_none());
        let caught = std::panic::catch_unwind(|| failed.estimation().estimate);
        assert!(caught.is_err(), "estimation() panics on a failed job");
    }

    #[test]
    fn recovery_policies_attach_to_jobs_and_default_off() {
        let config = EstimatorConfig::builder().copies(3).build();
        let plain = JobSpec::main("plain", config.clone());
        assert_eq!(plain.quorum, QuorumPolicy::default());
        assert!(!plain.quorum.allow_degraded);
        assert!(plain.retry.is_none());
        let tuned = JobSpec::main("tuned", config)
            .quorum(QuorumPolicy::at_least(2))
            .retry(RetryPolicy::new(3).with_budget(5));
        assert_eq!(tuned.quorum.min_copies, 2);
        assert!(tuned.quorum.allow_degraded);
        assert_eq!(tuned.retry.unwrap().max_attempts, 3);
        assert_eq!(tuned.retry.unwrap().retry_budget, Some(5));
        assert!(QuorumPolicy::best_effort().allow_degraded);
        assert_eq!(QuorumPolicy::best_effort().min_copies, 1);
    }

    #[test]
    fn backoff_schedules_are_pure_and_capped() {
        let fixed = RetryPolicy::new(4).with_backoff(Backoff::Fixed(Duration::from_millis(7)));
        assert_eq!(fixed.delay(1), Duration::from_millis(7));
        assert_eq!(fixed.delay(9), Duration::from_millis(7));
        let expo = RetryPolicy::new(8).with_backoff(Backoff::Exponential {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(45),
        });
        assert_eq!(expo.delay(1), Duration::from_millis(10));
        assert_eq!(expo.delay(2), Duration::from_millis(20));
        assert_eq!(expo.delay(3), Duration::from_millis(40));
        assert_eq!(expo.delay(4), Duration::from_millis(45)); // capped
        assert_eq!(expo.delay(1000), Duration::from_millis(45)); // no overflow
        assert_eq!(RetryPolicy::new(2).delay(1), Duration::ZERO);
    }

    #[test]
    fn baseline_outcomes_map_to_single_copy_estimations() {
        let outcome = BaselineOutcome {
            estimate: 12.5,
            passes: 2,
            space: SpaceReport {
                peak_words: 7,
                final_words: 3,
            },
        };
        let est = baseline_estimation(&outcome);
        assert_eq!(est.estimate, 12.5);
        assert_eq!(est.copy_estimates, vec![12.5]);
        assert_eq!(est.passes_per_copy, 2);
        assert_eq!(est.copies, 1);
        assert_eq!(est.space.peak_words, 7);
    }
}
