//! # degentri-engine — parallel, batched estimation engine
//!
//! The paper's estimator (Algorithm 2 of Bera & Seshadhri, PODS 2020)
//! amplifies a constant-success-probability run by executing many
//! independent copies and taking the median of means — an embarrassingly
//! parallel structure that `degentri_core`'s sequential runner executes one
//! copy at a time. This crate is the scale-out layer on top of the same
//! building blocks:
//!
//! * [`parallel`] — copy-level parallelism: the `copies` independent copies
//!   of Algorithm 2 (or of the ideal estimator) run on a scoped worker
//!   pool with the *same* deterministic per-copy seeds as the sequential
//!   runner ([`degentri_core::main_copy_seed`]) and are folded with the
//!   same aggregation ([`degentri_core::aggregate_copies`]), so the result
//!   is bit-identical to [`degentri_core::estimate_triangles`] at any
//!   worker count.
//! * [`scheduler`] — job-level concurrency: an [`Engine`] accepts many
//!   [`JobSpec`]s (main estimator, ideal estimator, or any Table-1
//!   baseline through its common trait) against one shared graph snapshot
//!   and executes every copy of every job on one worker pool, returning
//!   per-job [`degentri_core::TriangleEstimation`]s plus engine-level
//!   throughput statistics ([`EngineStats`]). Turnstile (insert/delete)
//!   jobs go through the same scheduler over a shared **dynamic** snapshot:
//!   [`JobSpec::dynamic`] + [`Engine::run_dynamic`] run the
//!   `degentri-dynamic` estimator's copies — with the engine's default
//!   counter-mode randomness, each copy's sketch folds shard across spare
//!   workers over one [`degentri_stream::ShardedDynamicStream`] view —
//!   bit-identical to the standalone estimator.
//! * batched streaming — the estimator hot loops consume the stream
//!   through [`degentri_stream::EdgeStream::pass_batched`], which
//!   in-memory snapshots serve as zero-copy slices; every copy the engine
//!   schedules benefits automatically.
//!
//! ```
//! use degentri_core::EstimatorConfig;
//! use degentri_engine::{Engine, EngineConfig, JobSpec};
//! use degentri_stream::{MemoryStream, StreamOrder};
//!
//! let graph = degentri_gen::wheel(600).unwrap();
//! let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(1));
//! let config = EstimatorConfig::builder()
//!     .kappa(3)
//!     .triangle_lower_bound(299)
//!     .copies(6)
//!     .seed(7)
//!     .try_build()
//!     .unwrap();
//!
//! let mut engine = Engine::new(EngineConfig::with_workers(4));
//! engine.submit(JobSpec::main("wheel/main", config.clone()));
//! engine.submit(JobSpec::ideal("wheel/ideal", config));
//! let report = engine.run(&stream).unwrap();
//! assert_eq!(report.jobs.len(), 2);
//! assert!(report.stats.edges_per_second > 0.0);
//! ```
//!
//! ## The fusion matrix: every job kind, every rng regime, one pool
//!
//! Sweep-sharing ("fused execution", on by default) is total across the
//! job-kind × rng-mode matrix. When a batch holds several fusable jobs,
//! their copies form **cohorts** that walk the snapshot together instead
//! of each copy re-streaming it:
//!
//! * counter-mode main copies share all six passes of Algorithm 2;
//! * ideal copies join the *same* cohort through the 3-pass stage object
//!   ([`degentri_core::IdealCopyStages`]) and retire after pass 3 —
//!   ragged memberships are fine, a sweep simply stops folding for
//!   members whose passes are done;
//! * sequential-mode main copies attend the order-insensitive passes
//!   (the 2nd, 4th, and 6th) and run their three RNG-order-sensitive
//!   passes privately, one sweep per copy;
//! * dynamic (turnstile) copies fuse into their own cohort whose shared
//!   probe passes walk one k-way-merged **union key table** — and an
//!   edge snapshot serves them too, as an insert-only update stream.
//!
//! One work queue on one pool schedules fused cohort sweeps and
//! per-copy tasks side by side, and [`EngineStats`] partitions the
//! accounting by tier (`fused_sweeps` + `per_copy_sweeps`, busy time
//! likewise). Every fused path stays bit-identical to per-copy
//! scheduling — fusion changes what a batch *costs*, never what any
//! copy computes:
//!
//! ```
//! use degentri_core::{EstimatorConfig, RngMode};
//! use degentri_dynamic::DynamicEstimatorConfig;
//! use degentri_engine::{Engine, EngineConfig, JobSpec};
//! use degentri_stream::{MemoryStream, StreamOrder};
//!
//! let graph = degentri_gen::wheel(400).unwrap();
//! let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(3));
//! let main = |mode: RngMode| {
//!     EstimatorConfig::builder()
//!         .kappa(3)
//!         .triangle_lower_bound(399)
//!         .copies(3)
//!         .seed(11)
//!         .rng_mode(mode)
//!         .try_build()
//!         .unwrap()
//! };
//! let turnstile = DynamicEstimatorConfig::new(3, 399)
//!     .with_copies(3)
//!     .with_seed(12)
//!     .with_rng_mode(RngMode::Counter);
//!
//! // `job_rng_mode` lets each job keep its own randomness regime.
//! let mut engine = Engine::new(
//!     EngineConfig::builder().workers(4).job_rng_mode().try_build().unwrap(),
//! );
//! engine.submit(JobSpec::main("counter", main(RngMode::Counter)));
//! engine.submit(JobSpec::main("sequential", main(RngMode::Sequential)));
//! engine.submit(JobSpec::ideal("ideal", main(RngMode::Counter)));
//! engine.submit(JobSpec::dynamic("turnstile", turnstile));
//! let report = engine.run(&stream).unwrap();
//! assert!(report.jobs.iter().all(|job| job.is_ok()));
//! // 6 shared six-pass sweeps (serving the counter job, the ideal job's
//! // 3 passes, and the sequential job's order-insensitive passes)
//! // + 3 sequential copies × 3 private RNG passes + 4 turnstile cohort
//! // sweeps + 1 oracle stats pass — versus 52 sweeps unfused.
//! assert_eq!(report.stats.sweeps_executed, 6 + 9 + 4 + 1);
//! assert_eq!(report.stats.fused_cohorts, 2);
//! assert_eq!(
//!     report.stats.fused_sweeps + report.stats.per_copy_sweeps,
//!     report.stats.sweeps_executed
//! );
//! ```
//!
//! ## Robustness: containment, deadlines, cancellation
//!
//! Failures during execution are **contained per job** rather than failing
//! the run: each [`JobResult`] carries
//! `Result<JobOutput, EngineError>` in [`JobResult::outcome`], and a
//! panicking, erroring, late, or cancelled job never disturbs its
//! batchmates — on the fused tier the failing job's copies are evicted
//! from the shared probe structures and the survivors' results stay
//! **bit-identical** to a run submitted without the failed job
//! (counter-mode randomness keys every draw by position, never by what
//! else is in flight). Worker threads survive caught panics; only
//! pre-flight problems (invalid configs, invalid input when
//! [`EngineConfig::validate_input`] is on, empty dynamic streams) fail the
//! whole run as `Err`.
//!
//! Jobs accept a wall-clock budget via [`JobSpec::deadline`]; runs are
//! cooperatively cancellable from any thread through
//! [`Engine::cancel_token`]. Both surface as contained
//! [`EngineError::DeadlineExceeded`] / [`EngineError::Cancelled`] outcomes
//! with partial-progress accounting:
//!
//! ```
//! use std::time::Duration;
//! use degentri_core::EstimatorConfig;
//! use degentri_engine::{Engine, EngineError, JobSpec};
//! use degentri_stream::{MemoryStream, StreamOrder};
//!
//! let graph = degentri_gen::wheel(400).unwrap();
//! let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
//! let config = EstimatorConfig::builder()
//!     .kappa(3)
//!     .triangle_lower_bound(399)
//!     .copies(2)
//!     .try_build()
//!     .unwrap();
//!
//! let mut engine = Engine::with_workers(2);
//! engine.submit(JobSpec::main("healthy", config.clone()));
//! engine.submit(JobSpec::main("late", config).deadline(Duration::ZERO));
//! let report = engine.run(&stream).unwrap();
//! // The late job failed in isolation; its batchmate is untouched.
//! assert!(report.jobs[0].is_ok());
//! assert!(matches!(
//!     report.jobs[1].error(),
//!     Some(EngineError::DeadlineExceeded { .. })
//! ));
//! assert_eq!(report.stats.jobs_failed, 1);
//! ```
//!
//! For fault-drills there is a deterministic injection harness
//! (`degentri_core::faults`, behind the `fault-inject` feature) that can
//! trigger panics, errors, and delays at named engine sites; it compiles
//! to nothing when the feature is off.
//!
//! ## Recovery: quorums, degradation, deterministic retries
//!
//! Containment bounds the blast radius of a fault; the recovery layer
//! shrinks the failure unit further, from the job to the **copy**. The
//! estimators aggregate independent copies, so a job that loses one is
//! less accurate rather than dead:
//!
//! * [`QuorumPolicy`] (per job, [`JobSpec::quorum`]) lets a job succeed on
//!   a surviving-copy quorum. The output then aggregates exactly the
//!   surviving copies — bit-identical to what a clean run over that copy
//!   subset computes — and carries a [`Degradation`] record
//!   (`copies_used`, `copies_lost`, the per-copy errors).
//! * [`RetryPolicy`] ([`JobSpec::retry`] or the engine-wide
//!   [`EngineConfig::retry_policy`]) re-executes failed copies with
//!   [`Backoff`] pacing before any quorum decision. Copy seeds are
//!   position-keyed, so a retried copy reproduces its undisturbed result
//!   bit for bit; retries respect the job deadline and the cancel token,
//!   and a copy that exhausts its attempts quarantines into the degraded
//!   path.
//!
//! Both default off: an untouched configuration keeps the all-or-nothing
//! semantics above. Recovery is observation-transparent too — the run's
//! [`EngineStats`] counts `copies_retried`, `copies_quarantined`,
//! `jobs_degraded`, and backoff time:
//!
//! ```
//! use degentri_core::EstimatorConfig;
//! use degentri_engine::{Engine, EngineConfig, JobSpec, QuorumPolicy, RetryPolicy};
//! use degentri_stream::{MemoryStream, StreamOrder};
//!
//! let graph = degentri_gen::wheel(400).unwrap();
//! let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
//! let config = EstimatorConfig::builder()
//!     .kappa(3)
//!     .triangle_lower_bound(399)
//!     .copies(3)
//!     .try_build()
//!     .unwrap();
//!
//! let mut engine = Engine::new(
//!     EngineConfig::builder()
//!         .workers(2)
//!         .retry_policy(RetryPolicy::new(2)) // one retry per failed copy
//!         .try_build()
//!         .unwrap(),
//! );
//! engine.submit(
//!     JobSpec::main("resilient", config).quorum(QuorumPolicy::at_least(2)),
//! );
//! let report = engine.run(&stream).unwrap();
//! // No faults here, so the job is at full strength and nothing retried —
//! // recovery changes outcomes only when copies actually fail.
//! assert!(report.jobs[0].is_ok());
//! assert!(!report.jobs[0].is_degraded());
//! assert_eq!(report.stats.copies_retried, 0);
//! assert_eq!(report.stats.jobs_degraded, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod config;
pub mod error;
mod fused;
pub mod job;
pub mod parallel;
pub mod scheduler;
pub mod stats;

pub use cancel::CancelToken;
pub use config::{EngineConfig, EngineConfigBuilder};
pub use error::EngineError;
pub use job::{
    Backoff, Degradation, JobKind, JobOutput, JobResult, JobSpec, QuorumPolicy, RetryPolicy,
};
pub use parallel::{
    parallel_estimate_triangles, parallel_estimate_triangles_with,
    parallel_estimate_triangles_with_oracle, parallel_estimate_triangles_with_oracle_and,
};
pub use scheduler::{Engine, EngineReport};
pub use stats::EngineStats;

/// Convenient result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
