//! Copy-level parallelism: the independent copies of an estimator run on a
//! scoped worker pool.
//!
//! Copies use the exact per-copy seeds of the sequential runner
//! ([`degentri_core::main_copy_seed`] / [`degentri_core::ideal_copy_seed`])
//! and are aggregated in copy order with
//! [`degentri_core::aggregate_copies`], so the output is **bit-identical**
//! to [`degentri_core::estimate_triangles`] /
//! [`degentri_core::estimate_triangles_with_oracle`] at every worker count
//! — scheduling only changes wall-clock time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use degentri_core::{
    aggregate_copies, run_ideal_copy, run_main_copy, CopyContribution, EstimatorConfig,
    TriangleEstimation,
};
use degentri_stream::{EdgeStream, StreamStats};

use crate::Result;

/// Executes `count` indexed tasks on up to `workers` scoped threads and
/// returns the outputs in task order. Workers claim tasks from a shared
/// atomic counter (dynamic load balancing: uneven task costs do not idle
/// workers until the tail).
pub(crate) fn run_indexed<T, F>(workers: usize, count: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    if workers <= 1 || count <= 1 {
        return (0..count).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let output = task(i);
                *slots[i].lock().expect("result slot poisoned") = Some(output);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task index was claimed and completed")
        })
        .collect()
}

/// Collects per-copy results in copy order, surfacing the first failure.
fn aggregate_results(
    results: Vec<degentri_core::Result<CopyContribution>>,
) -> Result<TriangleEstimation> {
    let mut contributions = Vec::with_capacity(results.len());
    for result in results {
        contributions.push(result?);
    }
    Ok(aggregate_copies(&contributions))
}

/// Runs `config.copies` independent copies of the six-pass estimator
/// (Algorithm 2) on up to `workers` threads and aggregates them with
/// median-of-means — the parallel equivalent of
/// [`degentri_core::estimate_triangles`], with bit-identical results.
pub fn parallel_estimate_triangles<S>(
    stream: &S,
    config: &EstimatorConfig,
    workers: usize,
) -> Result<TriangleEstimation>
where
    S: EdgeStream + Sync + ?Sized,
{
    config.validate()?;
    let results = run_indexed(workers, config.copies, |copy| {
        run_main_copy(stream, config, copy).map(|o| CopyContribution::from(&o))
    });
    aggregate_results(results)
}

/// Runs `config.copies` copies of the ideal (degree-oracle) estimator on up
/// to `workers` threads — the parallel equivalent of
/// [`degentri_core::estimate_triangles_with_oracle`], with bit-identical
/// results.
///
/// The caller provides the one-pass [`StreamStats`] the oracle is built
/// from (compute it once with [`StreamStats::compute`]); every copy shares
/// the table by reference — `StreamStats` answers degree queries directly,
/// so nothing is cloned per copy.
pub fn parallel_estimate_triangles_with_oracle<S>(
    stream: &S,
    stats: &StreamStats,
    config: &EstimatorConfig,
    workers: usize,
) -> Result<TriangleEstimation>
where
    S: EdgeStream + Sync + ?Sized,
{
    config.validate()?;
    let results = run_indexed(workers, config.copies, |copy| {
        run_ideal_copy(stream, stats, config, copy).map(|o| CopyContribution::from(&o))
    });
    aggregate_results(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_task_order() {
        for workers in [1, 2, 4, 9] {
            let out = run_indexed(workers, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn run_indexed_balances_uneven_tasks() {
        // Tasks touch a shared counter; all must run exactly once.
        let counter = AtomicUsize::new(0);
        let out = run_indexed(3, 37, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 37);
        assert_eq!(counter.load(Ordering::Relaxed), 37);
    }
}
