//! Copy-level parallelism: the independent copies of an estimator run on a
//! scoped worker pool.
//!
//! Copies use the exact per-copy seeds of the sequential runner
//! ([`degentri_core::main_copy_seed`] / [`degentri_core::ideal_copy_seed`])
//! and are aggregated in copy order with
//! [`degentri_core::aggregate_copies`], so the output is **bit-identical**
//! to [`degentri_core::estimate_triangles`] /
//! [`degentri_core::estimate_triangles_with_oracle`] at every worker count
//! — scheduling only changes wall-clock time.
//!
//! Each worker thread owns one [`EstimatorScratch`] arena for its whole
//! lifetime: the hash-free lookup tables of the estimator hot loops are
//! allocated once per worker and reused across every copy the worker
//! claims, so steady-state copies allocate nothing per edge.

use degentri_core::{
    aggregate_copies, run_ideal_copy_with, run_main_copy_with, CopyContribution, EstimatorConfig,
    EstimatorScratch, TriangleEstimation,
};
use degentri_stream::{run_indexed_pool, EdgeStream, StreamStats};

use crate::config::EngineConfig;
use crate::Result;

/// Executes `count` indexed tasks on up to `workers` scoped threads and
/// returns the outputs in task order, threading per-worker state (from
/// `init`) through every task a worker executes — the engine passes a
/// scratch arena here so tables are allocated per worker, not per copy.
///
/// The pool itself ([`degentri_stream::run_indexed_pool`]) is shared with
/// the sharded pass machinery, so the claim-loop concurrency lives in one
/// place.
pub(crate) fn run_indexed_with<W, T, I, F>(workers: usize, count: usize, init: I, task: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    run_indexed_pool(workers, count, init, task)
}

/// Collects per-copy results in copy order, surfacing the first failure.
fn aggregate_results(
    results: Vec<degentri_core::Result<CopyContribution>>,
) -> Result<TriangleEstimation> {
    let mut contributions = Vec::with_capacity(results.len());
    for result in results {
        contributions.push(result?);
    }
    Ok(aggregate_copies(&contributions))
}

/// Runs `config.copies` independent copies of the six-pass estimator
/// (Algorithm 2) on up to `workers` threads and aggregates them with
/// median-of-means — the parallel equivalent of
/// [`degentri_core::estimate_triangles`], with bit-identical results.
pub fn parallel_estimate_triangles<S>(
    stream: &S,
    config: &EstimatorConfig,
    workers: usize,
) -> Result<TriangleEstimation>
where
    S: EdgeStream + Sync + ?Sized,
{
    parallel_estimate_triangles_with(stream, config, &EngineConfig::with_workers(workers))
}

/// [`parallel_estimate_triangles`] driven by a full [`EngineConfig`]
/// (worker count *and* batched-delivery chunk size). Results are
/// bit-identical at every configuration.
pub fn parallel_estimate_triangles_with<S>(
    stream: &S,
    config: &EstimatorConfig,
    engine_config: &EngineConfig,
) -> Result<TriangleEstimation>
where
    S: EdgeStream + Sync + ?Sized,
{
    engine_config.validate()?;
    config.validate()?;
    let batch = engine_config.batch_size;
    let results = run_indexed_with(
        engine_config.workers,
        config.copies,
        EstimatorScratch::new,
        |scratch, copy| {
            run_main_copy_with(stream, config, copy, batch, scratch)
                .map(|o| CopyContribution::from(&o))
        },
    );
    aggregate_results(results)
}

/// Runs `config.copies` copies of the ideal (degree-oracle) estimator on up
/// to `workers` threads — the parallel equivalent of
/// [`degentri_core::estimate_triangles_with_oracle`], with bit-identical
/// results.
///
/// The caller provides the one-pass [`StreamStats`] the oracle is built
/// from (compute it once with [`StreamStats::compute`]); every copy shares
/// the table by reference — `StreamStats` answers degree queries directly,
/// so nothing is cloned per copy.
pub fn parallel_estimate_triangles_with_oracle<S>(
    stream: &S,
    stats: &StreamStats,
    config: &EstimatorConfig,
    workers: usize,
) -> Result<TriangleEstimation>
where
    S: EdgeStream + Sync + ?Sized,
{
    parallel_estimate_triangles_with_oracle_and(
        stream,
        stats,
        config,
        &EngineConfig::with_workers(workers),
    )
}

/// [`parallel_estimate_triangles_with_oracle`] driven by a full
/// [`EngineConfig`].
pub fn parallel_estimate_triangles_with_oracle_and<S>(
    stream: &S,
    stats: &StreamStats,
    config: &EstimatorConfig,
    engine_config: &EngineConfig,
) -> Result<TriangleEstimation>
where
    S: EdgeStream + Sync + ?Sized,
{
    engine_config.validate()?;
    config.validate()?;
    let batch = engine_config.batch_size;
    let results = run_indexed_with(
        engine_config.workers,
        config.copies,
        EstimatorScratch::new,
        |scratch, copy| {
            run_ideal_copy_with(stream, stats, config, copy, batch, scratch)
                .map(|o| CopyContribution::from(&o))
        },
    );
    aggregate_results(results)
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use super::*;

    #[test]
    fn run_indexed_preserves_task_order() {
        for workers in [1, 2, 4, 9] {
            let out = run_indexed_with(workers, 100, || (), |(), i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_indexed_with(4, 0, || (), |(), i| i).is_empty());
    }

    #[test]
    fn run_indexed_balances_uneven_tasks() {
        // Tasks touch a shared counter; all must run exactly once.
        let counter = AtomicUsize::new(0);
        let out = run_indexed_with(
            3,
            37,
            || (),
            |(), i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out.len(), 37);
        assert_eq!(counter.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn worker_local_state_is_threaded_through_tasks() {
        // Single worker: one state instance sees every task in order.
        let out = run_indexed_with(
            1,
            5,
            || 0usize,
            |state, i| {
                *state += 1;
                (*state, i)
            },
        );
        assert_eq!(out, vec![(1, 0), (2, 1), (3, 2), (4, 3), (5, 4)]);
        // Multiple workers: states partition the tasks.
        let out = run_indexed_with(
            3,
            30,
            || 0usize,
            |state, _| {
                *state += 1;
                *state
            },
        );
        assert_eq!(out.len(), 30);
        assert!(out.iter().all(|&n| (1..=30).contains(&n)));
    }
}
