//! The job scheduler: many estimation jobs over one shared snapshot.
//!
//! [`Engine::submit`] queues jobs (different ε/κ/seed/algorithm, including
//! the Table-1 baselines through their common trait and the turnstile
//! estimator); [`Engine::run_snapshot`] executes every queued job over one
//! [`Snapshot`] — the enum unifying insert-only edge slices and turnstile
//! update slices — on a single scoped worker pool. The historical typed
//! entry points [`Engine::run`] (edges) and [`Engine::run_dynamic`]
//! (updates) are thin wrappers that borrow the stream's storage as a
//! `Snapshot` (materializing one owned copy for exotic streams that do not
//! expose their storage).
//!
//! Scheduling happens in two tiers:
//!
//! * **Fused cohorts** — counter-mode estimator jobs whose copies expose
//!   the resumable stage-object API (`begin_pass → fold → finish_pass`)
//!   are grouped into one cohort per snapshot flavor and executed by the
//!   fused pass driver ([`crate::fused`]): each pass stage is **one**
//!   physical sweep over the snapshot that feeds every in-flight copy's
//!   fold chunk by chunk, so `passes × copies` traversals collapse into
//!   `passes`. With spare workers the sweep itself is sharded (per-shard
//!   accumulators merge in shard order).
//! * **Per-copy tasks** — everything else (sequential-mode jobs, the ideal
//!   estimator, baselines, or every job when
//!   [`EngineConfig::fused_execution`] is off) is flattened into
//!   independent tasks — one per estimator copy, one per baseline — and
//!   executed on the pool exactly as in earlier releases, including
//!   intra-copy sharded passes when the pool is wider than the task list.
//!
//! Both tiers use the same per-copy seeds ([`main_copy_seed`] /
//! [`ideal_copy_seed`] / [`dynamic_copy_seed`]) and the same fold
//! implementations, so every scheduling decision — fused or per-copy,
//! sharded or not, any worker count — produces **bit-identical** results;
//! only wall-clock time and the physical sweep count
//! ([`EngineStats::sweeps_executed`]) change.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use degentri_core::faults;
use degentri_core::{
    ideal_copy_seed, main_copy_seed, run_ideal_copy_sharded, run_ideal_copy_with,
    run_main_copy_sharded, run_main_copy_with, validate_edges, CopyContribution, EstimatorConfig,
    EstimatorError, EstimatorScratch, IdealCopyStages, MainCopyStages, RngMode,
    SequentialCopyStages,
};
use degentri_dynamic::{
    aggregate_dynamic_copies, dynamic_copy_seed, run_dynamic_copy_sharded, run_dynamic_copy_with,
    validate_updates, DynamicCopyOutcome, DynamicCopyStages, DynamicError, DynamicEstimatorConfig,
};
use degentri_graph::Edge;
use degentri_obs::{
    CohortReport, Counter, Hist, JobReport, MetricsRecorder, NoopRecorder, PassReport, PassTally,
    Recorder, RunReport, Span,
};
use degentri_stream::{
    run_queued, DynamicEdgeStream, EdgeStream, EdgeUpdate, ShardedDynamicStream, ShardedStream,
    Snapshot, StreamStats,
};

use crate::cancel::CancelToken;
use crate::config::EngineConfig;
use crate::fused::{
    drive_cohort, drive_edge_cohort, CohortMemberMeta, CohortOutcome, EdgeCohort, PassTrace,
};
use crate::job::{
    baseline_estimation, dynamic_estimation, Degradation, JobKind, JobOutput, JobResult, JobSpec,
    RetryPolicy,
};
use crate::stats::{EngineStats, RecoveryTotals};
use crate::{EngineError, Result};

/// How many shards each intra-copy or fused-sweep worker gets to claim: a
/// few shards per worker smooths out load imbalance from uneven chunk
/// costs without shrinking shards below useful sizes.
const SHARDS_PER_WORKER: usize = 4;

/// A parallel, batched estimation engine over a shared stream snapshot.
///
/// ```
/// use degentri_core::EstimatorConfig;
/// use degentri_engine::{Engine, EngineConfig, JobSpec};
/// use degentri_stream::{MemoryStream, StreamOrder};
///
/// let graph = degentri_gen::wheel(400).unwrap();
/// let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
/// let config = EstimatorConfig::builder()
///     .kappa(3)
///     .triangle_lower_bound(399)
///     .copies(4)
///     .try_build()
///     .unwrap();
/// let mut engine = Engine::new(EngineConfig::with_workers(2));
/// engine.submit(JobSpec::main("wheel", config));
/// let report = engine.run(&stream).unwrap();
/// assert_eq!(report.jobs[0].estimation().copies, 4);
/// // The four copies shared one fused sweep per pass: six sweeps, not 24.
/// assert_eq!(report.stats.sweeps_executed, 6);
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
    jobs: Vec<JobSpec>,
    /// Submission instants, parallel to `jobs` — the queue end of the
    /// per-job queue-to-completion latency reported when recording is on.
    submitted: Vec<Instant>,
    /// Cooperative cancellation flag shared with
    /// [`Engine::cancel_token`] holders; checked at pass/chunk/task
    /// boundaries during runs.
    cancel: CancelToken,
}

/// Everything one engine run produced: per-job results in submission order
/// plus engine-level statistics.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-job results, in submission order.
    pub jobs: Vec<JobResult>,
    /// Engine-level throughput statistics for the whole run.
    pub stats: EngineStats,
    /// The hierarchical run → cohort → pass → shard breakdown, present
    /// when [`EngineConfig::recording`] was on for the run (`None`
    /// otherwise — the instrumentation compiles to nothing).
    pub run_report: Option<RunReport>,
}

/// One per-copy schedulable unit of the non-fused tier.
#[derive(Debug, Clone, Copy)]
enum Task {
    MainCopy { job: usize, copy: usize },
    IdealCopy { job: usize, copy: usize },
    DynamicCopy { job: usize, copy: usize },
    Baseline { job: usize },
}

impl Task {
    fn job(&self) -> usize {
        match *self {
            Task::MainCopy { job, .. }
            | Task::IdealCopy { job, .. }
            | Task::DynamicCopy { job, .. }
            | Task::Baseline { job } => job,
        }
    }
}

/// One queued per-copy task's result slot, filled exactly once by the
/// worker that claims it: the caught (panic-contained) output plus the
/// task's busy time.
type TaskSlot<T> = Mutex<Option<std::thread::Result<(T, Duration)>>>;

/// What one per-copy task produced (plus how long it took).
enum TaskOutput {
    Copy(degentri_core::Result<CopyContribution>),
    Dynamic(degentri_dynamic::Result<DynamicCopyOutcome>),
    Baseline(degentri_baselines::BaselineOutcome),
    /// The task was cut before running (deadline elapsed or run cancelled).
    Cut(EngineError),
}

/// What one per-copy turnstile task produced.
enum DynTaskOutput {
    Copy(degentri_dynamic::Result<DynamicCopyOutcome>),
    /// The task was cut before running (deadline elapsed or run cancelled).
    Cut(EngineError),
}

/// Records a job's **first** error (deterministic task order: later errors
/// for the same job are dropped).
fn fail_job(errors: &mut [Option<EngineError>], job: usize, error: EngineError) {
    if errors[job].is_none() {
        errors[job] = Some(error);
    }
}

/// Records one copy's failure at the right granularity: contained jobs
/// collect per-copy errors (feeding the retry and degradation layers), all
/// others fail the whole job with its first error.
fn fail_copy(
    contained: &[bool],
    job_errors: &mut [Option<EngineError>],
    copy_errors: &mut [Vec<(usize, EngineError)>],
    job: usize,
    copy: usize,
    error: EngineError,
) {
    if contained[job] {
        copy_errors[job].push((copy, error));
    } else {
        fail_job(job_errors, job, error);
    }
}

/// Sleeps for `delay` in small slices, returning `false` as soon as the
/// cancel token fires — a cancelled run must not finish its backoff nap.
fn backoff_sleep(cancel: &CancelToken, delay: Duration) -> bool {
    const SLICE: Duration = Duration::from_millis(5);
    let until = Instant::now() + delay;
    loop {
        if cancel.is_cancelled() {
            return false;
        }
        let now = Instant::now();
        if now >= until {
            return true;
        }
        std::thread::sleep((until - now).min(SLICE));
    }
}

/// What the retry layer did, feeding [`RecoveryTotals`].
#[derive(Debug, Default)]
struct RetryTally {
    retried: u64,
    quarantined: u64,
    backoff: Duration,
}

/// Drains every retry-enabled job's copy failures through its policy on
/// the coordinator, after both execution tiers have finished.
///
/// Copies are retried in copy order, each driven to success or quarantine
/// before the next; `rerun(job, copy)` re-executes one copy and records
/// its contribution on success. Because copy seeds are position-keyed, a
/// successful re-execution is **bit-identical** to the copy never having
/// failed. Deterministic-by-construction schedule aside, the layer is
/// deadline- and cancel-aware: a backoff delay that cannot fit before the
/// job's deadline short-circuits to quarantine instead of sleeping, and
/// the sleep itself aborts promptly on cancellation. Cut errors
/// (deadline/cancel) are terminal — retrying them would only cut again.
/// Copies that exhaust `max_attempts` or the job's retry budget are
/// quarantined back into `copy_errors` for the quorum-governed degraded
/// assembly.
fn retry_failed_copies(
    retry_of: &[Option<RetryPolicy>],
    deadline_at: &[Option<Instant>],
    cancel: &CancelToken,
    job_errors: &[Option<EngineError>],
    copy_errors: &mut [Vec<(usize, EngineError)>],
    tally: &mut RetryTally,
    mut rerun: impl FnMut(usize, usize) -> std::result::Result<(), EngineError>,
) {
    for job in 0..retry_of.len() {
        let Some(policy) = retry_of[job] else {
            continue;
        };
        if job_errors[job].is_some() || copy_errors[job].is_empty() {
            continue;
        }
        let mut budget = policy.retry_budget.unwrap_or(usize::MAX);
        let mut pending = std::mem::take(&mut copy_errors[job]);
        pending.sort_by_key(|&(copy, _)| copy);
        let mut quarantined: Vec<(usize, EngineError)> = Vec::new();
        for (copy, mut error) in pending {
            // Attempts spent on this copy, the original execution included.
            let mut used = 1usize;
            loop {
                let cut = matches!(
                    error,
                    EngineError::DeadlineExceeded { .. } | EngineError::Cancelled { .. }
                );
                if cut || used >= policy.max_attempts || budget == 0 {
                    tally.quarantined += 1;
                    quarantined.push((copy, error));
                    break;
                }
                let delay = policy.delay(used);
                if !delay.is_zero() {
                    if deadline_at[job].is_some_and(|d| Instant::now() + delay >= d) {
                        tally.quarantined += 1;
                        quarantined.push((
                            copy,
                            EngineError::DeadlineExceeded {
                                completed_passes: 0,
                            },
                        ));
                        break;
                    }
                    let slept = Instant::now();
                    let finished = backoff_sleep(cancel, delay);
                    tally.backoff += slept.elapsed();
                    if !finished {
                        tally.quarantined += 1;
                        quarantined.push((
                            copy,
                            EngineError::Cancelled {
                                completed_passes: 0,
                            },
                        ));
                        break;
                    }
                }
                budget = budget.saturating_sub(1);
                tally.retried += 1;
                match rerun(job, copy) {
                    Ok(()) => break,
                    Err(e) => {
                        error = e;
                        used += 1;
                    }
                }
            }
        }
        copy_errors[job] = quarantined;
    }
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            jobs: Vec::new(),
            submitted: Vec::new(),
            cancel: CancelToken::new(),
        }
    }

    /// Creates an engine with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Engine::new(EngineConfig::with_workers(workers))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// A clone of the engine's cancellation token. Call
    /// [`CancelToken::cancel`] from any thread to make in-flight runs fail
    /// their remaining jobs with [`EngineError::Cancelled`] at the next
    /// pass/chunk/task boundary. The token is sticky: [`CancelToken::reset`]
    /// re-arms the engine for subsequent runs.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Queues a job; returns its index, which is also its position in
    /// [`EngineReport::jobs`].
    pub fn submit(&mut self, spec: JobSpec) -> usize {
        self.jobs.push(spec);
        self.submitted.push(Instant::now());
        self.jobs.len() - 1
    }

    /// Number of jobs currently queued.
    pub fn queued_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Runs every queued job to completion over one snapshot (draining the
    /// queue) — the single entry point both stream flavors collapse into.
    /// Edge snapshots serve every job kind — [`JobKind::Main`] /
    /// [`JobKind::Ideal`] / [`JobKind::Baseline`] directly, and
    /// [`JobKind::Dynamic`] by materializing the edges as an insert-only
    /// update stream. Update snapshots serve [`JobKind::Dynamic`] jobs
    /// only; a non-turnstile job on one fails the run with
    /// [`EngineError::UnsupportedJob`].
    ///
    /// Failures are split in two classes. **Pre-flight** failures — an
    /// invalid engine or job configuration, a job of the wrong stream
    /// flavor, an empty stream, or (with
    /// [`EngineConfig::validate_input`]) a malformed input stream — fail
    /// the whole run with `Err` before any job starts. **Execution-time**
    /// failures — a panicking copy, an estimator error, an elapsed
    /// [`JobSpec::deadline`], a fired [`CancelToken`] — are contained per
    /// job: the failing job's [`JobResult::outcome`] carries the first
    /// error (in deterministic task order) while every other job completes
    /// with results **bit-identical** to a run that never included the
    /// failed job.
    pub fn run_snapshot(&mut self, snapshot: &Snapshot<'_>) -> Result<EngineReport> {
        match *snapshot {
            Snapshot::Edges {
                num_vertices,
                edges,
            } => self.run_edges(num_vertices, edges),
            Snapshot::Updates {
                num_vertices,
                updates,
            } => self.run_updates(num_vertices, updates),
        }
    }

    /// Runs every queued job over an insert-only stream — a thin wrapper
    /// that borrows the stream's storage as a [`Snapshot::Edges`] (streams
    /// that do not expose their storage are materialized once, costing one
    /// extra pass) and calls [`Engine::run_snapshot`].
    pub fn run<S>(&mut self, stream: &S) -> Result<EngineReport>
    where
        S: EdgeStream + Sync + ?Sized,
    {
        match Snapshot::of_edges(stream) {
            Some(snapshot) => self.run_snapshot(&snapshot),
            None => {
                let mut edges: Vec<Edge> = Vec::with_capacity(stream.num_edges());
                stream.pass_batched(self.config.batch_size.max(1), &mut |chunk| {
                    edges.extend_from_slice(chunk)
                });
                self.run_snapshot(&Snapshot::Edges {
                    num_vertices: stream.num_vertices(),
                    edges: &edges,
                })
            }
        }
    }

    /// Runs every queued **turnstile** job ([`JobKind::Dynamic`]) over an
    /// insert/delete stream — a thin wrapper that borrows the stream's
    /// storage as a [`Snapshot::Updates`] (materializing once when the
    /// stream does not expose it) and calls [`Engine::run_snapshot`].
    /// Per-copy seeds and the median aggregation match the standalone
    /// [`DynamicTriangleEstimator::run`](degentri_dynamic::DynamicTriangleEstimator::run),
    /// so engine results are bit-identical to standalone results under the
    /// same effective [`RngMode`].
    pub fn run_dynamic<S>(&mut self, stream: &S) -> Result<EngineReport>
    where
        S: DynamicEdgeStream + Sync + ?Sized,
    {
        match Snapshot::of_updates(stream) {
            Some(snapshot) => self.run_snapshot(&snapshot),
            None => {
                let mut updates: Vec<EdgeUpdate> = Vec::with_capacity(stream.num_updates());
                stream.pass_batched(self.config.batch_size.max(1), &mut |chunk| {
                    updates.extend_from_slice(chunk)
                });
                self.run_snapshot(&Snapshot::Updates {
                    num_vertices: DynamicEdgeStream::num_vertices(stream),
                    updates: &updates,
                })
            }
        }
    }

    /// Whether counter-mode jobs may fuse under this configuration. A
    /// fused cohort's only parallelism is its sharded sweeps, so with
    /// intra-task sharding disabled *and* a multi-worker pool, fusing
    /// would serialize work that per-copy scheduling runs copy-parallel —
    /// those configurations keep the per-copy tier (preserving the
    /// documented "copy-level parallelism only" meaning of the flag).
    fn fusion_enabled(&self) -> bool {
        self.config.fused_execution && (self.config.intra_task_sharding || self.config.workers <= 1)
    }

    /// The fused-sweep worker count and shard count for a cohort.
    fn cohort_parallelism(&self) -> (usize, usize) {
        let workers = if self.config.intra_task_sharding {
            self.config.workers.max(1)
        } else {
            1
        };
        (workers, workers * SHARDS_PER_WORKER)
    }

    /// Dispatches on [`EngineConfig::recording`]: the generic runner is
    /// monomorphized per recorder, so the `recording: false` instantiation
    /// carries [`NoopRecorder`]'s empty inlined methods — zero cost rather
    /// than a branch per instrumentation point.
    fn run_edges(&mut self, num_vertices: usize, edges: &[Edge]) -> Result<EngineReport> {
        if self.config.recording {
            let recorder = MetricsRecorder::new(self.config.workers.max(1) * SHARDS_PER_WORKER);
            self.run_edges_rec(num_vertices, edges, &recorder)
        } else {
            self.run_edges_rec(num_vertices, edges, &NoopRecorder)
        }
    }

    fn run_edges_rec<R: Recorder>(
        &mut self,
        num_vertices: usize,
        edges: &[Edge],
        recorder: &R,
    ) -> Result<EngineReport> {
        let jobs: Vec<JobSpec> = self.jobs.drain(..).collect();
        let submitted: Vec<Instant> = self.submitted.drain(..).collect();

        // Reject invalid configurations before any work starts.
        self.config.validate()?;
        // The estimator configuration each job actually runs with: the
        // engine's rng_mode override applied on top of the submitted one
        // (None = respect the job's own mode).
        let effective: Vec<Option<EstimatorConfig>> = jobs
            .iter()
            .map(|spec| {
                spec.kind.config().map(|config| {
                    let mut config = config.clone();
                    if let Some(mode) = self.config.rng_mode {
                        config.rng_mode = mode;
                    }
                    config
                })
            })
            .collect();
        for config in effective.iter().flatten() {
            config.validate().map_err(EngineError::from)?;
        }
        // Turnstile jobs are welcome on an edge snapshot too: each edge
        // becomes one insertion, so a mixed main + ideal + dynamic batch
        // shares a single input. Same override rule as update snapshots.
        let effective_dyn: Vec<Option<DynamicEstimatorConfig>> = jobs
            .iter()
            .map(|spec| {
                spec.kind.dynamic_config().map(|config| {
                    let mut config = config.clone();
                    if let Some(mode) = self.config.rng_mode {
                        config.rng_mode = mode;
                    }
                    config
                })
            })
            .collect();
        for config in effective_dyn.iter().flatten() {
            config.validate().map_err(EngineError::from)?;
        }
        // Optional input hardening, still pre-flight: a malformed snapshot
        // fails the run before any job starts.
        if self.config.validate_input {
            validate_edges(num_vertices, edges).map_err(EngineError::from)?;
        }
        let batch = self.config.batch_size;
        let m = edges.len();

        // The run's timed region starts here so the shared degree-table
        // pass below is covered by the same clock that its edges are
        // charged to in `edges_streamed`.
        let started = Instant::now();
        let faults_before = faults::injected_count();
        let cancel = self.cancel.clone();
        // Per-job absolute deadlines, measured from run start.
        let deadline_at: Vec<Option<Instant>> = jobs
            .iter()
            .map(|spec| spec.deadline.map(|limit| started + limit))
            .collect();
        // Per-job contained errors (first error in deterministic task
        // order wins); populated by the per-copy and fused tiers below.
        let mut job_errors: Vec<Option<EngineError>> = vec![None; jobs.len()];
        // Per-job recovery plumbing: the retry policy in effect (job
        // override, else the engine default), and whether failures are
        // contained at copy granularity. A job opts into copy containment
        // by carrying a retry policy or a degradation-tolerant quorum;
        // baselines are single-task and never contained. Everything else
        // keeps the all-or-nothing default.
        let retry_of: Vec<Option<RetryPolicy>> = jobs
            .iter()
            .map(|spec| spec.retry.or(self.config.retry_policy))
            .collect();
        for policy in retry_of.iter().flatten() {
            if policy.max_attempts == 0 {
                return Err(EngineError::invalid_config(
                    "retry.max_attempts must be at least 1",
                ));
            }
        }
        let contained: Vec<bool> = jobs
            .iter()
            .enumerate()
            .map(|(job, spec)| {
                (retry_of[job].is_some() || spec.quorum.allow_degraded)
                    && !matches!(spec.kind, JobKind::Baseline(_))
            })
            .collect();
        // Contained jobs' per-copy errors (`(copy, error)`), feeding the
        // retry layer and then the quorum-governed degraded assembly.
        let mut copy_errors: Vec<Vec<(usize, EngineError)>> =
            jobs.iter().map(|_| Vec::new()).collect();

        // The whole snapshot behind one plain stream view (zero-copy); the
        // per-copy tier streams through it.
        let plain = ShardedStream::new(num_vertices, edges, 1);
        // Turnstile jobs see the same snapshot as an insert-only update
        // stream, materialized once for all of them.
        let dyn_updates: Vec<EdgeUpdate> = if jobs
            .iter()
            .any(|spec| matches!(spec.kind, JobKind::Dynamic(_)))
        {
            if edges.is_empty() {
                return Err(EngineError::Dynamic(DynamicError::EmptyStream));
            }
            edges.iter().map(|&edge| EdgeUpdate::insert(edge)).collect()
        } else {
            Vec::new()
        };
        let dyn_plain = ShardedDynamicStream::new(num_vertices, &dyn_updates, 1);

        // The ideal estimator's degree table costs one pass; build it
        // once — before cohort formation, whose fused ideal members
        // borrow it — and share it across every ideal job and copy.
        let stats_started = Instant::now();
        let ideal_stats: Option<StreamStats> = jobs
            .iter()
            .any(|spec| matches!(spec.kind, JobKind::Ideal(_)))
            .then(|| StreamStats::compute(&plain));
        if R::ENABLED && ideal_stats.is_some() {
            recorder.span(
                0,
                Span::StatsPass,
                stats_started.elapsed().as_nanos() as u64,
            );
        }
        let stats_pass = started.elapsed();

        // Tier split across the whole job-kind × rng-mode matrix: six-pass
        // jobs fuse in either mode (counter copies share every sweep,
        // sequential copies share the order-insensitive ones and run the
        // RNG-consuming passes privately), ideal and turnstile jobs fuse
        // under counter randomness; everything else becomes per-copy
        // tasks.
        let job_fusable = |job: usize| {
            if !self.fusion_enabled() {
                return false;
            }
            match &jobs[job].kind {
                JobKind::Main(_) => true,
                JobKind::Ideal(_) => effective[job]
                    .as_ref()
                    .is_some_and(|c| c.rng_mode == RngMode::Counter),
                JobKind::Dynamic(_) => effective_dyn[job]
                    .as_ref()
                    .is_some_and(|c| c.rng_mode == RngMode::Counter),
                JobKind::Baseline(_) => false,
            }
        };
        let formation_started = Instant::now();
        let mut cohort = EdgeCohort {
            mains: Vec::new(),
            main_meta: Vec::new(),
            ideals: Vec::new(),
            ideal_meta: Vec::new(),
            seqs: Vec::new(),
            seq_meta: Vec::new(),
        };
        let mut dyn_cohort: Vec<DynamicCopyStages> = Vec::new();
        let mut dyn_meta: Vec<CohortMemberMeta> = Vec::new();
        let mut cohort_of: Vec<(usize, usize)> = Vec::new();
        let mut tasks: Vec<Task> = Vec::new();
        for (job, spec) in jobs.iter().enumerate() {
            let count = spec.kind.task_count();
            let fusable = job_fusable(job);
            match &spec.kind {
                JobKind::Main(_) if fusable => {
                    let config = effective[job].as_ref().expect("main job has a config");
                    let sequential = config.rng_mode == RngMode::Sequential;
                    for copy in 0..count {
                        let seed = main_copy_seed(config.seed, copy);
                        let member = CohortMemberMeta {
                            group: job,
                            copy,
                            deadline: deadline_at[job],
                            fault_key: seed,
                            contained: contained[job],
                        };
                        if sequential {
                            cohort.seqs.push(
                                SequentialCopyStages::new(config, m, num_vertices, seed)
                                    .map_err(EngineError::from)?,
                            );
                            cohort.seq_meta.push(member);
                        } else {
                            cohort.mains.push(
                                MainCopyStages::new(config, m, num_vertices, seed)
                                    .map_err(EngineError::from)?,
                            );
                            cohort.main_meta.push(member);
                        }
                        cohort_of.push((job, copy));
                    }
                }
                JobKind::Ideal(_) if fusable => {
                    let config = effective[job].as_ref().expect("ideal job has a config");
                    let stats = ideal_stats.as_ref().expect("stats built for ideal jobs");
                    for copy in 0..count {
                        let seed = ideal_copy_seed(config.seed, copy);
                        cohort.ideals.push(
                            IdealCopyStages::new(config, stats, m, num_vertices, seed)
                                .map_err(EngineError::from)?,
                        );
                        cohort.ideal_meta.push(CohortMemberMeta {
                            group: job,
                            copy,
                            deadline: deadline_at[job],
                            fault_key: seed,
                            contained: contained[job],
                        });
                        cohort_of.push((job, copy));
                    }
                }
                JobKind::Dynamic(_) if fusable => {
                    let config = effective_dyn[job]
                        .as_ref()
                        .expect("dynamic job has a config");
                    for copy in 0..count {
                        let seed = dynamic_copy_seed(config.seed, copy);
                        dyn_cohort.push(
                            DynamicCopyStages::new(config, dyn_updates.len(), num_vertices, seed)
                                .map_err(EngineError::from)?,
                        );
                        dyn_meta.push(CohortMemberMeta {
                            group: job,
                            copy,
                            deadline: deadline_at[job],
                            fault_key: seed,
                            contained: contained[job],
                        });
                        cohort_of.push((job, copy));
                    }
                }
                JobKind::Main(_) => {
                    tasks.extend((0..count).map(|copy| Task::MainCopy { job, copy }));
                }
                JobKind::Ideal(_) => {
                    tasks.extend((0..count).map(|copy| Task::IdealCopy { job, copy }));
                }
                JobKind::Dynamic(_) => {
                    tasks.extend((0..count).map(|copy| Task::DynamicCopy { job, copy }));
                }
                JobKind::Baseline(_) => tasks.push(Task::Baseline { job }),
            }
        }
        let formation_nanos = formation_started.elapsed().as_nanos() as u64;
        if R::ENABLED {
            recorder.span(0, Span::CohortFormation, formation_nanos);
        }
        let edge_members = cohort.len();
        let dyn_members = dyn_cohort.len();
        // An all-ideal cohort runs only the 3 oracle passes; its report
        // rows carry the ideal pass names instead of the six-pass ones.
        let ideal_only = !cohort.ideals.is_empty() && edge_members == cohort.ideals.len();
        let cohort_copies = cohort_of.len();
        let any_cohort = cohort_copies > 0;

        let workers = self.config.effective_workers(tasks.len());

        // Intra-copy shard plan for the per-copy tier: when the pool is
        // wider than the task list *and no cohort shares it*, split each
        // shardable copy's passes across the spare workers instead of
        // leaving them idle. With a cohort on the queue the spare capacity
        // already has sweep shards to claim — nesting a second pool under
        // each task would only oversubscribe the machine.
        let job_mode = |job: usize| {
            effective[job]
                .as_ref()
                .map(|c| c.rng_mode)
                .or_else(|| effective_dyn[job].as_ref().map(|c| c.rng_mode))
                .unwrap_or_default()
        };
        // Turnstile tasks on an edge snapshot always run unsharded (the
        // sharded dynamic view lives on the update-snapshot path), so they
        // are excluded from the shard plan.
        let shardable = tasks.iter().any(|task| {
            !matches!(task, Task::DynamicCopy { .. })
                && jobs[task.job()]
                    .kind
                    .supports_intra_task_sharding(job_mode(task.job()))
        });
        let shard_workers =
            if self.config.intra_task_sharding && shardable && !tasks.is_empty() && !any_cohort {
                (self.config.workers / tasks.len()).max(1)
            } else {
                1
            };
        let sharded_view: Option<ShardedStream<'_>> = (shard_workers > 1)
            .then(|| ShardedStream::new(num_vertices, edges, shard_workers * SHARDS_PER_WORKER));
        let intra_task_workers = if sharded_view.is_some() {
            shard_workers
        } else {
            1
        };

        // The fault-injection key of one per-copy task: the task's
        // per-copy seed for estimator copies (the same key that addresses
        // the copy on the fused tier), the job index for baselines.
        let task_fault_key = |task: &Task| match *task {
            Task::MainCopy { job, copy } | Task::IdealCopy { job, copy } => {
                let seed = effective[job].as_ref().map(|c| c.seed).unwrap_or_default();
                main_copy_seed(seed, copy)
            }
            Task::DynamicCopy { job, copy } => {
                let seed = effective_dyn[job]
                    .as_ref()
                    .map(|c| c.seed)
                    .unwrap_or_default();
                dynamic_copy_seed(seed, copy)
            }
            Task::Baseline { job } => job as u64,
        };

        // One per-copy task body, shared by every pool worker; panics are
        // caught at the queue-job layer below.
        let run_task = |scratch: &mut EstimatorScratch, i: usize| -> (TaskOutput, Duration) {
            let task_started = Instant::now();
            let job = tasks[i].job();
            // Cut checks before any work: cancellation, then this
            // job's deadline, then an injected task-start fault.
            let cut = if cancel.is_cancelled() {
                Some(EngineError::Cancelled {
                    completed_passes: 0,
                })
            } else if deadline_at[job].is_some_and(|d| Instant::now() >= d) {
                Some(EngineError::DeadlineExceeded {
                    completed_passes: 0,
                })
            } else if faults::ENABLED
                && faults::injected(faults::FaultSite::TaskStart, task_fault_key(&tasks[i]))
            {
                Some(match tasks[i] {
                    Task::DynamicCopy { .. } => EngineError::Dynamic(DynamicError::Injected {
                        site: faults::FaultSite::TaskStart,
                    }),
                    _ => EngineError::Estimator(EstimatorError::Injected {
                        site: faults::FaultSite::TaskStart,
                    }),
                })
            } else {
                None
            };
            if let Some(error) = cut {
                return (TaskOutput::Cut(error), task_started.elapsed());
            }
            let output = match tasks[i] {
                Task::MainCopy { job, copy } => {
                    let config = effective[job].as_ref().expect("main job has a config");
                    let result = match &sharded_view {
                        Some(view) => run_main_copy_sharded(
                            view,
                            config,
                            copy,
                            batch,
                            intra_task_workers,
                            scratch,
                        ),
                        None => run_main_copy_with(&plain, config, copy, batch, scratch),
                    };
                    TaskOutput::Copy(result.map(|o| CopyContribution::from(&o)))
                }
                Task::IdealCopy { job, copy } => {
                    let config = effective[job].as_ref().expect("ideal job has a config");
                    // Copies share the degree table by reference; StreamStats
                    // answers degree queries directly.
                    let stats = ideal_stats.as_ref().expect("stats built for ideal jobs");
                    let result = match &sharded_view {
                        Some(view)
                            if jobs[job].kind.supports_intra_task_sharding(job_mode(job)) =>
                        {
                            run_ideal_copy_sharded(
                                view,
                                stats,
                                config,
                                copy,
                                batch,
                                intra_task_workers,
                                scratch,
                            )
                        }
                        _ => run_ideal_copy_with(&plain, stats, config, copy, batch, scratch),
                    };
                    TaskOutput::Copy(result.map(|o| CopyContribution::from(&o)))
                }
                Task::DynamicCopy { job, copy } => {
                    let config = effective_dyn[job]
                        .as_ref()
                        .expect("dynamic job has a config");
                    TaskOutput::Dynamic(run_dynamic_copy_with(&dyn_plain, config, copy, batch))
                }
                Task::Baseline { job } => {
                    let JobKind::Baseline(counter) = &jobs[job].kind else {
                        unreachable!("task kind matches job kind");
                    };
                    TaskOutput::Baseline(counter.estimate(&plain))
                }
            };
            let spent = task_started.elapsed();
            if R::ENABLED {
                let nanos = spent.as_nanos() as u64;
                recorder.span(i, Span::PerCopyTask, nanos);
                recorder.observe(i, Hist::TaskNanos, nanos);
            }
            (output, spent)
        };

        // ---- One pool, both tiers ------------------------------------------
        // Per-copy tasks queue up as coarse jobs; the cohort drivers then
        // run on the coordinator with the queue scope as their sweep pool,
        // so fused shard bursts cut to the front of the same queue and
        // interleave with straggler per-copy tasks instead of the two
        // tiers draining as serialized phases. Panic containment is
        // preserved: a panicking task parks `Err(payload)` in its slot and
        // the claiming worker survives.
        let (cohort_workers, cohort_shards) = self.cohort_parallelism();
        let pool_workers = if any_cohort {
            workers.max(cohort_workers)
        } else {
            workers.max(1)
        };
        let task_slots: Vec<TaskSlot<TaskOutput>> =
            tasks.iter().map(|_| Mutex::new(None)).collect();
        let mut trace: Vec<PassTrace> = Vec::new();
        let mut dyn_trace: Vec<PassTrace> = Vec::new();
        let (cohort_outcome, dyn_outcome) =
            run_queued(pool_workers, EstimatorScratch::new, |scope| {
                for i in 0..tasks.len() {
                    let slots = &task_slots;
                    let run_task = &run_task;
                    scope.submit(Box::new(move |scratch: &mut EstimatorScratch| {
                        let result = catch_unwind(AssertUnwindSafe(|| run_task(scratch, i)));
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                    }));
                }
                let cohort_outcome = drive_edge_cohort(
                    &mut cohort,
                    &cancel,
                    num_vertices,
                    edges,
                    batch,
                    cohort_workers,
                    cohort_shards,
                    recorder,
                    0,
                    &mut trace,
                    scope,
                );
                let dyn_outcome: CohortOutcome = drive_cohort(
                    &mut dyn_cohort,
                    &mut dyn_meta,
                    &cancel,
                    num_vertices,
                    &dyn_updates,
                    batch,
                    cohort_workers,
                    cohort_shards,
                    recorder,
                    0,
                    &mut dyn_trace,
                    scope,
                );
                (cohort_outcome, dyn_outcome)
            });
        let outputs: Vec<std::thread::Result<(TaskOutput, Duration)>> = task_slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("run_queued drained every submitted task")
            })
            .collect();
        let fused_sweeps = cohort_outcome.sweeps + dyn_outcome.sweeps;
        let fused_busy = Duration::from_nanos(cohort_outcome.busy_nanos + dyn_outcome.busy_nanos);
        let copies_evicted = cohort_outcome.evicted + dyn_outcome.evicted;
        for (group, error) in cohort_outcome
            .failures
            .into_iter()
            .chain(dyn_outcome.failures)
        {
            fail_job(&mut job_errors, group, error);
        }
        // Copy-level evictions of contained members join the per-copy
        // error set headed for the retry layer.
        for (group, copy, error) in cohort_outcome
            .copy_failures
            .into_iter()
            .chain(dyn_outcome.copy_failures)
        {
            copy_errors[group].push((copy, error));
        }

        // Fold-loop tallies summed over the fused six-pass and turnstile
        // copies, gathered before the stage objects are consumed below.
        let cohort_tallies: Vec<PassTally> = if R::ENABLED && !cohort.mains.is_empty() {
            let mut tallies = vec![PassTally::default(); MainCopyStages::PASS_NAMES.len()];
            for stages in &cohort.mains {
                for (total, &tally) in tallies.iter_mut().zip(stages.pass_tallies()) {
                    total.merge(tally);
                }
            }
            tallies
        } else {
            Vec::new()
        };
        let dyn_tallies: Vec<PassTally> = if R::ENABLED && !dyn_cohort.is_empty() {
            let mut tallies = vec![PassTally::default(); DynamicCopyStages::PASS_NAMES.len()];
            for stages in &dyn_cohort {
                for (total, &tally) in tallies.iter_mut().zip(stages.pass_tallies()) {
                    total.merge(tally);
                }
            }
            tallies
        } else {
            Vec::new()
        };

        // Fold everything back per job. Contributions are keyed by copy
        // index so both tiers' copies aggregate in copy order regardless
        // of which tier (or in what interleaving the shared pool) executed
        // them.
        let mut contributions: Vec<Vec<(usize, CopyContribution)>> =
            jobs.iter().map(|_| Vec::new()).collect();
        let mut dyn_contributions: Vec<Vec<(usize, DynamicCopyOutcome)>> =
            jobs.iter().map(|_| Vec::new()).collect();
        let mut baseline_outcomes: Vec<Option<degentri_baselines::BaselineOutcome>> =
            jobs.iter().map(|_| None).collect();
        let mut busy_per_job: Vec<Duration> = vec![Duration::ZERO; jobs.len()];
        let mut tasks_per_job: Vec<usize> = vec![0; jobs.len()];
        // The serial degree-table pass is work this run performed: it
        // belongs in busy time just as its edges are in `edges_streamed`.
        let mut busy_total = stats_pass;
        let mut sweeps = if ideal_stats.is_some() { 1u64 } else { 0 };
        for (i, (task, caught)) in tasks.iter().zip(outputs).enumerate() {
            let job = task.job();
            tasks_per_job[job] += 1;
            let copy = match *task {
                Task::MainCopy { copy, .. }
                | Task::IdealCopy { copy, .. }
                | Task::DynamicCopy { copy, .. } => copy,
                Task::Baseline { .. } => 0,
            };
            match caught {
                // The task panicked; its worker survived and its payload
                // fails only this copy's job (or, for contained jobs, only
                // this copy).
                Err(payload) => fail_copy(
                    &contained,
                    &mut job_errors,
                    &mut copy_errors,
                    job,
                    copy,
                    EngineError::panicked(i, payload),
                ),
                Ok((output, spent)) => {
                    busy_per_job[job] += spent;
                    busy_total += spent;
                    match output {
                        TaskOutput::Copy(Ok(contribution)) => {
                            sweeps += contribution.passes as u64;
                            contributions[job].push((copy, contribution));
                        }
                        TaskOutput::Copy(Err(e)) => fail_copy(
                            &contained,
                            &mut job_errors,
                            &mut copy_errors,
                            job,
                            copy,
                            e.into(),
                        ),
                        TaskOutput::Dynamic(Ok(outcome)) => {
                            // Every per-copy turnstile run makes four passes.
                            sweeps += DynamicCopyStages::PASSES as u64;
                            dyn_contributions[job].push((copy, outcome));
                        }
                        TaskOutput::Dynamic(Err(e)) => fail_copy(
                            &contained,
                            &mut job_errors,
                            &mut copy_errors,
                            job,
                            copy,
                            e.into(),
                        ),
                        TaskOutput::Baseline(outcome) => {
                            sweeps += outcome.passes as u64;
                            baseline_outcomes[job] = Some(outcome);
                        }
                        // Deadline/cancel cuts of contained jobs become
                        // copy errors too: copies that completed earlier
                        // survive, keeping a quorum reachable.
                        TaskOutput::Cut(error) => fail_copy(
                            &contained,
                            &mut job_errors,
                            &mut copy_errors,
                            job,
                            copy,
                            error,
                        ),
                    }
                }
            }
        }
        // Fused sweeps and busy time are *measured* by the drivers (shard
        // nanos summed over every shared sweep), not allocated from wall
        // time: the per-tier attribution in the stats below is only useful
        // if the split is real.
        sweeps += fused_sweeps;
        busy_total += fused_busy;
        // Every fused copy started: its task count and pro-rata busy share
        // are attributed whether or not containment later evicted it (the
        // sweeps are shared — per-copy busy is not separable).
        for &(job, _copy) in &cohort_of {
            tasks_per_job[job] += 1;
            busy_per_job[job] += fused_busy.div_f64(cohort_copies.max(1) as f64);
        }
        // The cohorts hold the eviction survivors, in original order.
        let EdgeCohort {
            mains,
            main_meta,
            ideals,
            ideal_meta,
            seqs,
            seq_meta,
        } = cohort;
        finish_members(
            mains,
            &main_meta,
            &mut job_errors,
            &mut copy_errors,
            &mut contributions,
            |s| {
                s.finish()
                    .map(|o| CopyContribution::from(&o))
                    .map_err(EngineError::from)
            },
        );
        finish_members(
            seqs,
            &seq_meta,
            &mut job_errors,
            &mut copy_errors,
            &mut contributions,
            |s| {
                s.finish()
                    .map(|o| CopyContribution::from(&o))
                    .map_err(EngineError::from)
            },
        );
        finish_members(
            ideals,
            &ideal_meta,
            &mut job_errors,
            &mut copy_errors,
            &mut contributions,
            |s| {
                s.finish()
                    .map(|o| CopyContribution::from(&o))
                    .map_err(EngineError::from)
            },
        );
        finish_members(
            dyn_cohort,
            &dyn_meta,
            &mut job_errors,
            &mut copy_errors,
            &mut dyn_contributions,
            |s| s.finish().map_err(EngineError::from),
        );

        // ---- Deterministic retries ------------------------------------------
        // Failed copies of retry-enabled jobs re-run on the coordinator,
        // unsharded. Position-keyed seeds make each re-execution
        // bit-identical to the copy never having failed, on any tier and
        // any worker count; only wall-clock time (and the sweep count)
        // grows. Retried attempts probe the same fault sites as fresh
        // per-copy tasks, so transient `FaultKind::FailTimes` windows heal
        // exactly as they would for an independent task.
        let mut retry_tally = RetryTally::default();
        if copy_errors.iter().any(|e| !e.is_empty()) {
            let mut scratch = EstimatorScratch::new();
            retry_failed_copies(
                &retry_of,
                &deadline_at,
                &cancel,
                &job_errors,
                &mut copy_errors,
                &mut retry_tally,
                |job, copy| {
                    let attempt_started = Instant::now();
                    // Same cut checks as a fresh per-copy task.
                    if cancel.is_cancelled() {
                        return Err(EngineError::Cancelled {
                            completed_passes: 0,
                        });
                    }
                    if deadline_at[job].is_some_and(|d| Instant::now() >= d) {
                        return Err(EngineError::DeadlineExceeded {
                            completed_passes: 0,
                        });
                    }
                    if faults::ENABLED {
                        let key = match &jobs[job].kind {
                            JobKind::Dynamic(_) => {
                                let seed = effective_dyn[job]
                                    .as_ref()
                                    .map(|c| c.seed)
                                    .unwrap_or_default();
                                dynamic_copy_seed(seed, copy)
                            }
                            _ => {
                                let seed =
                                    effective[job].as_ref().map(|c| c.seed).unwrap_or_default();
                                main_copy_seed(seed, copy)
                            }
                        };
                        if faults::injected(faults::FaultSite::TaskStart, key) {
                            return Err(match &jobs[job].kind {
                                JobKind::Dynamic(_) => {
                                    EngineError::Dynamic(DynamicError::Injected {
                                        site: faults::FaultSite::TaskStart,
                                    })
                                }
                                _ => EngineError::Estimator(EstimatorError::Injected {
                                    site: faults::FaultSite::TaskStart,
                                }),
                            });
                        }
                    }
                    enum Retried {
                        Copy(CopyContribution),
                        Dynamic(DynamicCopyOutcome),
                    }
                    let caught = catch_unwind(AssertUnwindSafe(|| match &jobs[job].kind {
                        JobKind::Main(_) => {
                            let config = effective[job].as_ref().expect("main job has a config");
                            run_main_copy_with(&plain, config, copy, batch, &mut scratch)
                                .map(|o| Retried::Copy(CopyContribution::from(&o)))
                                .map_err(EngineError::from)
                        }
                        JobKind::Ideal(_) => {
                            let config = effective[job].as_ref().expect("ideal job has a config");
                            let stats = ideal_stats.as_ref().expect("stats built for ideal jobs");
                            run_ideal_copy_with(&plain, stats, config, copy, batch, &mut scratch)
                                .map(|o| Retried::Copy(CopyContribution::from(&o)))
                                .map_err(EngineError::from)
                        }
                        JobKind::Dynamic(_) => {
                            let config = effective_dyn[job]
                                .as_ref()
                                .expect("dynamic job has a config");
                            run_dynamic_copy_with(&dyn_plain, config, copy, batch)
                                .map(Retried::Dynamic)
                                .map_err(EngineError::from)
                        }
                        // Baselines are never contained, so their copies
                        // never reach the retry layer.
                        JobKind::Baseline(_) => unreachable!("baseline copies are never retried"),
                    }));
                    let spent = attempt_started.elapsed();
                    busy_per_job[job] += spent;
                    busy_total += spent;
                    match caught {
                        Err(payload) => Err(EngineError::panicked(copy, payload)),
                        Ok(Err(e)) => Err(e),
                        Ok(Ok(Retried::Copy(contribution))) => {
                            sweeps += contribution.passes as u64;
                            contributions[job].push((copy, contribution));
                            Ok(())
                        }
                        Ok(Ok(Retried::Dynamic(outcome))) => {
                            sweeps += DynamicCopyStages::PASSES as u64;
                            dyn_contributions[job].push((copy, outcome));
                            Ok(())
                        }
                    }
                },
            );
        }
        let wall = started.elapsed();

        let mut jobs_degraded = 0usize;
        let results: Vec<JobResult> = jobs
            .iter()
            .enumerate()
            .map(|(job, spec)| {
                // Unrecovered copy errors, in copy order (each copy's
                // first error — a retried copy that keeps failing reports
                // its quarantining error).
                let mut errors = std::mem::take(&mut copy_errors[job]);
                errors.sort_by_key(|&(copy, _)| copy);
                let outcome = match job_errors[job].take() {
                    Some(error) => Err(error),
                    None => {
                        let survivors = match &spec.kind {
                            JobKind::Main(_) | JobKind::Ideal(_) => contributions[job].len(),
                            JobKind::Dynamic(_) => dyn_contributions[job].len(),
                            JobKind::Baseline(_) => 1,
                        };
                        // Quorum check: a job with unrecovered copy errors
                        // succeeds degraded when its policy tolerates the
                        // surviving subset, else it fails with the first
                        // error in copy order (min_copies = 0 behaves like
                        // 1 — an aggregate over zero copies is
                        // meaningless).
                        if !(errors.is_empty()
                            || (spec.quorum.allow_degraded
                                && survivors >= spec.quorum.min_copies.max(1)))
                        {
                            Err(errors.remove(0).1)
                        } else {
                            let degraded = if errors.is_empty() {
                                None
                            } else {
                                jobs_degraded += 1;
                                Some(Degradation {
                                    copies_used: survivors,
                                    copies_lost: errors.len(),
                                    copy_errors: errors,
                                })
                            };
                            Ok(match &spec.kind {
                                JobKind::Main(_) | JobKind::Ideal(_) => {
                                    // Copies aggregate in copy order
                                    // regardless of which tier executed
                                    // them; a degraded job aggregates
                                    // exactly its surviving copies.
                                    contributions[job].sort_by_key(|&(copy, _)| copy);
                                    let copies: Vec<CopyContribution> =
                                        contributions[job].iter().map(|&(_, c)| c).collect();
                                    JobOutput {
                                        estimation: degentri_core::aggregate_copies(&copies),
                                        dynamic: None,
                                        degraded,
                                    }
                                }
                                JobKind::Baseline(_) => JobOutput {
                                    estimation: baseline_estimation(
                                        baseline_outcomes[job]
                                            .as_ref()
                                            .expect("baseline task completed"),
                                    ),
                                    dynamic: None,
                                    degraded,
                                },
                                JobKind::Dynamic(_) => {
                                    dyn_contributions[job].sort_by_key(|&(copy, _)| copy);
                                    let copies: Vec<DynamicCopyOutcome> =
                                        dyn_contributions[job].iter().map(|&(_, c)| c).collect();
                                    let outcome = aggregate_dynamic_copies(&copies);
                                    JobOutput {
                                        estimation: dynamic_estimation(&outcome),
                                        dynamic: Some(outcome),
                                        degraded,
                                    }
                                }
                            })
                        }
                    }
                };
                JobResult {
                    label: spec.label.clone(),
                    outcome,
                    busy: busy_per_job[job],
                    tasks: tasks_per_job[job],
                }
            })
            .collect();
        let jobs_failed = results.iter().filter(|r| !r.is_ok()).count();
        let recovery = RecoveryTotals {
            jobs_failed,
            copies_evicted,
            copies_retried: retry_tally.retried,
            copies_quarantined: retry_tally.quarantined,
            jobs_degraded,
            retry_backoff: retry_tally.backoff,
        };

        let tiers = TierTotals {
            fused_sweeps,
            per_copy_sweeps: sweeps - fused_sweeps,
            fused_busy,
            per_copy_busy: busy_total.saturating_sub(fused_busy),
        };
        let run_report = if R::ENABLED {
            let mut cohorts: Vec<CohortReport> = Vec::new();
            if edge_members > 0 {
                cohorts.push(CohortReport {
                    label: if ideal_only { "three-pass" } else { "six-pass" }.to_string(),
                    copies: edge_members,
                    workers: cohort_workers,
                    shards: cohort_shards,
                    formation_nanos,
                    passes: if ideal_only {
                        pass_reports(
                            &trace,
                            &IdealCopyStages::<StreamStats>::PASS_NAMES,
                            &cohort_tallies,
                        )
                    } else {
                        pass_reports(&trace, &MainCopyStages::PASS_NAMES, &cohort_tallies)
                    },
                });
            }
            if dyn_members > 0 {
                cohorts.push(CohortReport {
                    label: "turnstile".to_string(),
                    copies: dyn_members,
                    workers: cohort_workers,
                    shards: cohort_shards,
                    formation_nanos: if edge_members > 0 { 0 } else { formation_nanos },
                    passes: pass_reports(&dyn_trace, &DynamicCopyStages::PASS_NAMES, &dyn_tallies),
                });
            }
            Some(assemble_run_report(
                recorder,
                wall,
                pool_workers,
                cohorts,
                &jobs,
                &submitted,
                &tasks_per_job,
                &busy_per_job,
                cohort_copies,
                &recovery,
                faults::injected_count().saturating_sub(faults_before),
                &tiers,
            ))
        } else {
            None
        };

        Ok(EngineReport {
            jobs: results,
            stats: EngineStats::from_run(
                pool_workers,
                intra_task_workers.max(if fused_sweeps > 0 { cohort_workers } else { 1 }),
                self.config.rng_mode,
                tasks.len() + cohort_copies,
                usize::from(edge_members > 0) + usize::from(dyn_members > 0),
                sweeps,
                tiers.fused_sweeps,
                wall,
                busy_total,
                tiers.fused_busy,
                m as u64,
                recovery,
            ),
            run_report,
        })
    }

    /// The update-snapshot twin of [`Engine::run_edges`]'s recording
    /// dispatch.
    fn run_updates(&mut self, num_vertices: usize, updates: &[EdgeUpdate]) -> Result<EngineReport> {
        if self.config.recording {
            let recorder = MetricsRecorder::new(self.config.workers.max(1) * SHARDS_PER_WORKER);
            self.run_updates_rec(num_vertices, updates, &recorder)
        } else {
            self.run_updates_rec(num_vertices, updates, &NoopRecorder)
        }
    }

    fn run_updates_rec<R: Recorder>(
        &mut self,
        num_vertices: usize,
        updates: &[EdgeUpdate],
        recorder: &R,
    ) -> Result<EngineReport> {
        let jobs: Vec<JobSpec> = self.jobs.drain(..).collect();
        let submitted: Vec<Instant> = self.submitted.drain(..).collect();

        // Reject invalid configurations before any work starts.
        self.config.validate()?;
        // The configuration each job actually runs with: the engine's
        // rng_mode override applied on top of the submitted one.
        let mut effective: Vec<DynamicEstimatorConfig> = Vec::with_capacity(jobs.len());
        for spec in &jobs {
            let JobKind::Dynamic(config) = &spec.kind else {
                return Err(EngineError::unsupported_job(format!(
                    "job '{}' is not a turnstile job; run it over an edge \
                     snapshot (Engine::run or Snapshot::Edges)",
                    spec.label
                )));
            };
            let mut config = config.clone();
            if let Some(mode) = self.config.rng_mode {
                config.rng_mode = mode;
            }
            config.validate().map_err(EngineError::from)?;
            effective.push(config);
        }
        if !jobs.is_empty() && updates.is_empty() {
            return Err(EngineError::Dynamic(DynamicError::EmptyStream));
        }
        if self.config.validate_input {
            validate_updates(num_vertices, updates).map_err(EngineError::from)?;
        }
        let batch = self.config.batch_size;
        let started = Instant::now();
        let faults_before = faults::injected_count();
        let cancel = self.cancel.clone();
        // Absolute per-job deadlines, measured from run start.
        let deadline_at: Vec<Option<Instant>> = jobs
            .iter()
            .map(|spec| spec.deadline.map(|limit| started + limit))
            .collect();
        // First contained error per job; `None` = still healthy.
        let mut job_errors: Vec<Option<EngineError>> = vec![None; jobs.len()];
        // Per-job recovery plumbing, mirroring the edge scheduler (every
        // job here is a turnstile job, so only the retry/quorum opt-in
        // matters).
        let retry_of: Vec<Option<RetryPolicy>> = jobs
            .iter()
            .map(|spec| spec.retry.or(self.config.retry_policy))
            .collect();
        for policy in retry_of.iter().flatten() {
            if policy.max_attempts == 0 {
                return Err(EngineError::invalid_config(
                    "retry.max_attempts must be at least 1",
                ));
            }
        }
        let contained: Vec<bool> = jobs
            .iter()
            .enumerate()
            .map(|(job, spec)| retry_of[job].is_some() || spec.quorum.allow_degraded)
            .collect();
        let mut copy_errors: Vec<Vec<(usize, EngineError)>> =
            jobs.iter().map(|_| Vec::new()).collect();

        // Tier split: counter-mode copies fuse into one cohort; sequential
        // copies run per-copy over the plain view.
        let job_fusable =
            |job: usize| self.fusion_enabled() && effective[job].rng_mode == RngMode::Counter;
        let formation_started = Instant::now();
        let mut cohort: Vec<DynamicCopyStages> = Vec::new();
        let mut cohort_of: Vec<(usize, usize)> = Vec::new();
        let mut meta: Vec<CohortMemberMeta> = Vec::new();
        let mut tasks: Vec<(usize, usize)> = Vec::new();
        for (job, spec) in jobs.iter().enumerate() {
            for copy in 0..spec.kind.task_count() {
                if job_fusable(job) {
                    cohort.push(
                        DynamicCopyStages::new(
                            &effective[job],
                            updates.len(),
                            num_vertices,
                            dynamic_copy_seed(effective[job].seed, copy),
                        )
                        .map_err(EngineError::from)?,
                    );
                    cohort_of.push((job, copy));
                    meta.push(CohortMemberMeta {
                        group: job,
                        copy,
                        deadline: deadline_at[job],
                        fault_key: dynamic_copy_seed(effective[job].seed, copy),
                        contained: contained[job],
                    });
                } else {
                    tasks.push((job, copy));
                }
            }
        }
        let formation_nanos = formation_started.elapsed().as_nanos() as u64;
        if R::ENABLED {
            recorder.span(0, Span::CohortFormation, formation_nanos);
        }

        let plain = ShardedDynamicStream::new(num_vertices, updates, 1);
        let cohort_copies = cohort.len();
        let any_cohort = cohort_copies > 0;
        let workers = self.config.effective_workers(tasks.len());

        // Intra-copy shard plan for the per-copy tier, mirroring the edge
        // scheduler (including its rule that a cohort on the shared queue
        // suppresses nested per-task pools).
        let job_shardable = |job: usize| {
            jobs[job]
                .kind
                .supports_intra_task_sharding(effective[job].rng_mode)
        };
        let shardable = tasks.iter().any(|&(job, _)| job_shardable(job));
        let shard_workers =
            if self.config.intra_task_sharding && shardable && !tasks.is_empty() && !any_cohort {
                (self.config.workers / tasks.len()).max(1)
            } else {
                1
            };
        let sharded_view: Option<ShardedDynamicStream<'_>> = (shard_workers > 1).then(|| {
            ShardedDynamicStream::new(num_vertices, updates, shard_workers * SHARDS_PER_WORKER)
        });
        let intra_task_workers = if sharded_view.is_some() {
            shard_workers
        } else {
            1
        };

        // One per-copy task body, with the same cut checks as the edge
        // scheduler; the fault key is the copy's dynamic per-copy seed.
        let run_task = |i: usize| -> (DynTaskOutput, Duration) {
            let (job, copy) = tasks[i];
            let config = &effective[job];
            let task_started = Instant::now();
            let cut = if cancel.is_cancelled() {
                Some(EngineError::Cancelled {
                    completed_passes: 0,
                })
            } else if deadline_at[job].is_some_and(|d| Instant::now() >= d) {
                Some(EngineError::DeadlineExceeded {
                    completed_passes: 0,
                })
            } else if faults::ENABLED
                && faults::injected(
                    faults::FaultSite::TaskStart,
                    dynamic_copy_seed(config.seed, copy),
                )
            {
                Some(EngineError::Dynamic(DynamicError::Injected {
                    site: faults::FaultSite::TaskStart,
                }))
            } else {
                None
            };
            if let Some(error) = cut {
                return (DynTaskOutput::Cut(error), task_started.elapsed());
            }
            let output = match &sharded_view {
                Some(view) if job_shardable(job) => {
                    run_dynamic_copy_sharded(view, config, copy, batch, shard_workers)
                }
                _ => run_dynamic_copy_with(&plain, config, copy, batch),
            };
            let spent = task_started.elapsed();
            if R::ENABLED {
                let nanos = spent.as_nanos() as u64;
                recorder.span(i, Span::PerCopyTask, nanos);
                recorder.observe(i, Hist::TaskNanos, nanos);
            }
            (DynTaskOutput::Copy(output), spent)
        };

        // ---- One pool, both tiers ------------------------------------------
        // Identical overlap scheme to the edge scheduler: per-copy tasks
        // queue as coarse jobs, the fused driver's sweep shards cut to the
        // front of the same queue, panics park in per-task slots.
        let (cohort_workers, cohort_shards) = self.cohort_parallelism();
        let pool_workers = if any_cohort {
            workers.max(cohort_workers)
        } else {
            workers.max(1)
        };
        let task_slots: Vec<TaskSlot<DynTaskOutput>> =
            tasks.iter().map(|_| Mutex::new(None)).collect();
        let mut trace: Vec<PassTrace> = Vec::new();
        let cohort_outcome: CohortOutcome = run_queued(
            pool_workers,
            || (),
            |scope| {
                for i in 0..tasks.len() {
                    let slots = &task_slots;
                    let run_task = &run_task;
                    scope.submit(Box::new(move |(): &mut ()| {
                        let result = catch_unwind(AssertUnwindSafe(|| run_task(i)));
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                    }));
                }
                drive_cohort(
                    &mut cohort,
                    &mut meta,
                    &cancel,
                    num_vertices,
                    updates,
                    batch,
                    cohort_workers,
                    cohort_shards,
                    recorder,
                    0,
                    &mut trace,
                    scope,
                )
            },
        );
        let outputs: Vec<std::thread::Result<(DynTaskOutput, Duration)>> = task_slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("run_queued drained every submitted task")
            })
            .collect();
        let fused_sweeps = cohort_outcome.sweeps;
        let fused_busy = Duration::from_nanos(cohort_outcome.busy_nanos);
        let copies_evicted = cohort_outcome.evicted;
        for (group, error) in cohort_outcome.failures {
            fail_job(&mut job_errors, group, error);
        }
        for (group, copy, error) in cohort_outcome.copy_failures {
            copy_errors[group].push((copy, error));
        }

        // Fold-loop tallies summed over the cohort's copies, gathered
        // before the stage objects are consumed below.
        let cohort_tallies: Vec<PassTally> = if R::ENABLED && !cohort.is_empty() {
            let mut tallies = vec![PassTally::default(); DynamicCopyStages::PASS_NAMES.len()];
            for stages in &cohort {
                for (total, &tally) in tallies.iter_mut().zip(stages.pass_tallies()) {
                    total.merge(tally);
                }
            }
            tallies
        } else {
            Vec::new()
        };

        // Fold copy outputs back per job, in deterministic task order.
        let mut contributions: Vec<Vec<(usize, DynamicCopyOutcome)>> =
            jobs.iter().map(|_| Vec::new()).collect();
        let mut busy_per_job: Vec<Duration> = vec![Duration::ZERO; jobs.len()];
        let mut tasks_per_job: Vec<usize> = vec![0; jobs.len()];
        let mut busy_total = Duration::ZERO;
        let mut sweeps = 0u64;
        for (i, (&(job, copy), caught)) in tasks.iter().zip(outputs).enumerate() {
            tasks_per_job[job] += 1;
            match caught {
                Err(payload) => fail_copy(
                    &contained,
                    &mut job_errors,
                    &mut copy_errors,
                    job,
                    copy,
                    EngineError::panicked(i, payload),
                ),
                Ok((output, spent)) => {
                    busy_per_job[job] += spent;
                    busy_total += spent;
                    match output {
                        DynTaskOutput::Copy(Ok(contribution)) => {
                            // Every per-copy turnstile run makes four passes.
                            sweeps += DynamicCopyStages::PASSES as u64;
                            contributions[job].push((copy, contribution));
                        }
                        DynTaskOutput::Copy(Err(e)) => fail_copy(
                            &contained,
                            &mut job_errors,
                            &mut copy_errors,
                            job,
                            copy,
                            e.into(),
                        ),
                        DynTaskOutput::Cut(error) => fail_copy(
                            &contained,
                            &mut job_errors,
                            &mut copy_errors,
                            job,
                            copy,
                            error,
                        ),
                    }
                }
            }
        }
        sweeps += fused_sweeps;
        // Measured fused busy time, as in the edge scheduler.
        busy_total += fused_busy;
        // Task/busy attribution covers every copy that started, evicted or
        // not; `cohort`/`meta` below hold only the survivors.
        for &(job, _copy) in &cohort_of {
            tasks_per_job[job] += 1;
            busy_per_job[job] += fused_busy.div_f64(cohort_copies.max(1) as f64);
        }
        finish_members(
            cohort,
            &meta,
            &mut job_errors,
            &mut copy_errors,
            &mut contributions,
            |s| s.finish().map_err(EngineError::from),
        );

        // ---- Deterministic retries ------------------------------------------
        // Same layer as the edge scheduler: failed turnstile copies re-run
        // on the coordinator, bit-identically by position-keyed seeds.
        let mut retry_tally = RetryTally::default();
        if copy_errors.iter().any(|e| !e.is_empty()) {
            retry_failed_copies(
                &retry_of,
                &deadline_at,
                &cancel,
                &job_errors,
                &mut copy_errors,
                &mut retry_tally,
                |job, copy| {
                    let attempt_started = Instant::now();
                    if cancel.is_cancelled() {
                        return Err(EngineError::Cancelled {
                            completed_passes: 0,
                        });
                    }
                    if deadline_at[job].is_some_and(|d| Instant::now() >= d) {
                        return Err(EngineError::DeadlineExceeded {
                            completed_passes: 0,
                        });
                    }
                    if faults::ENABLED
                        && faults::injected(
                            faults::FaultSite::TaskStart,
                            dynamic_copy_seed(effective[job].seed, copy),
                        )
                    {
                        return Err(EngineError::Dynamic(DynamicError::Injected {
                            site: faults::FaultSite::TaskStart,
                        }));
                    }
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        run_dynamic_copy_with(&plain, &effective[job], copy, batch)
                    }));
                    let spent = attempt_started.elapsed();
                    busy_per_job[job] += spent;
                    busy_total += spent;
                    match caught {
                        Err(payload) => Err(EngineError::panicked(copy, payload)),
                        Ok(Err(e)) => Err(e.into()),
                        Ok(Ok(outcome)) => {
                            sweeps += DynamicCopyStages::PASSES as u64;
                            contributions[job].push((copy, outcome));
                            Ok(())
                        }
                    }
                },
            );
        }
        let wall = started.elapsed();

        let mut jobs_degraded = 0usize;
        let results: Vec<JobResult> = jobs
            .iter()
            .enumerate()
            .map(|(job, spec)| {
                let mut errors = std::mem::take(&mut copy_errors[job]);
                errors.sort_by_key(|&(copy, _)| copy);
                let outcome = match job_errors[job].take() {
                    Some(error) => Err(error),
                    None => {
                        let survivors = contributions[job].len();
                        if !(errors.is_empty()
                            || (spec.quorum.allow_degraded
                                && survivors >= spec.quorum.min_copies.max(1)))
                        {
                            Err(errors.remove(0).1)
                        } else {
                            let degraded = if errors.is_empty() {
                                None
                            } else {
                                jobs_degraded += 1;
                                Some(Degradation {
                                    copies_used: survivors,
                                    copies_lost: errors.len(),
                                    copy_errors: errors,
                                })
                            };
                            // Copies aggregate in copy order regardless of
                            // which tier executed them; a degraded job
                            // aggregates exactly its surviving copies.
                            contributions[job].sort_by_key(|&(copy, _)| copy);
                            let copies: Vec<DynamicCopyOutcome> =
                                contributions[job].iter().map(|&(_, c)| c).collect();
                            let outcome = aggregate_dynamic_copies(&copies);
                            Ok(JobOutput {
                                estimation: dynamic_estimation(&outcome),
                                dynamic: Some(outcome),
                                degraded,
                            })
                        }
                    }
                };
                JobResult {
                    label: spec.label.clone(),
                    outcome,
                    busy: busy_per_job[job],
                    tasks: tasks_per_job[job],
                }
            })
            .collect();
        let jobs_failed = results.iter().filter(|r| !r.is_ok()).count();
        let recovery = RecoveryTotals {
            jobs_failed,
            copies_evicted,
            copies_retried: retry_tally.retried,
            copies_quarantined: retry_tally.quarantined,
            jobs_degraded,
            retry_backoff: retry_tally.backoff,
        };

        let tiers = TierTotals {
            fused_sweeps,
            per_copy_sweeps: sweeps - fused_sweeps,
            fused_busy,
            per_copy_busy: busy_total.saturating_sub(fused_busy),
        };
        let run_report = if R::ENABLED {
            let cohorts: Vec<CohortReport> = (cohort_copies > 0)
                .then(|| CohortReport {
                    label: "turnstile".to_string(),
                    copies: cohort_copies,
                    workers: cohort_workers,
                    shards: cohort_shards,
                    formation_nanos,
                    passes: pass_reports(&trace, &DynamicCopyStages::PASS_NAMES, &cohort_tallies),
                })
                .into_iter()
                .collect();
            Some(assemble_run_report(
                recorder,
                wall,
                pool_workers,
                cohorts,
                &jobs,
                &submitted,
                &tasks_per_job,
                &busy_per_job,
                cohort_copies,
                &recovery,
                faults::injected_count().saturating_sub(faults_before),
                &tiers,
            ))
        } else {
            None
        };

        Ok(EngineReport {
            jobs: results,
            stats: EngineStats::from_run(
                pool_workers,
                intra_task_workers.max(if fused_sweeps > 0 { cohort_workers } else { 1 }),
                self.config.rng_mode,
                tasks.len() + cohort_copies,
                usize::from(cohort_copies > 0),
                sweeps,
                tiers.fused_sweeps,
                wall,
                busy_total,
                tiers.fused_busy,
                updates.len() as u64,
                recovery,
            ),
            run_report,
        })
    }
}

/// Consumes one cohort group's eviction survivors: finishes each member
/// under panic containment, pushing its contribution (keyed by copy index)
/// or failing its job with the first error — for
/// [`contained`](CohortMemberMeta::contained) members, failing only the
/// copy, so its siblings keep contributing toward a quorum.
fn finish_members<C, T>(
    copies: Vec<C>,
    meta: &[CohortMemberMeta],
    job_errors: &mut [Option<EngineError>],
    copy_errors: &mut [Vec<(usize, EngineError)>],
    out: &mut [Vec<(usize, T)>],
    finish: impl Fn(C) -> Result<T>,
) {
    for (k, (stages, mm)) in copies.into_iter().zip(meta).enumerate() {
        let job = mm.group;
        if job_errors[job].is_some() {
            continue;
        }
        // `AssertUnwindSafe`: a panicking finish tears only this copy,
        // whose job (or copy) is failed here.
        match catch_unwind(AssertUnwindSafe(|| finish(stages))) {
            Ok(Ok(outcome)) => out[job].push((mm.copy, outcome)),
            Ok(Err(e)) => {
                if mm.contained {
                    copy_errors[job].push((mm.copy, e));
                } else {
                    fail_job(job_errors, job, e);
                }
            }
            Err(payload) => {
                let error = EngineError::panicked(k, payload);
                if mm.contained {
                    copy_errors[job].push((mm.copy, error));
                } else {
                    fail_job(job_errors, job, error);
                }
            }
        }
    }
}

/// The run's sweep and busy totals split by execution tier: fused cohort
/// sweeps (measured by the drivers) versus per-copy tasks plus the shared
/// degree-table pass.
struct TierTotals {
    fused_sweeps: u64,
    per_copy_sweeps: u64,
    fused_busy: Duration,
    per_copy_busy: Duration,
}

/// Builds the [`PassReport`]s of one cohort from the fused driver's trace,
/// the estimator's stable pass names, and the cohort-summed fold tallies.
fn pass_reports(trace: &[PassTrace], names: &[&str], tallies: &[PassTally]) -> Vec<PassReport> {
    trace
        .iter()
        .map(|t| PassReport {
            name: names.get(t.pass).copied().unwrap_or("pass").to_string(),
            plan_nanos: t.plan_nanos,
            sweep_nanos: t.sweep_nanos,
            items: t.shards.iter().map(|s| s.items).sum(),
            tally: tallies.get(t.pass).copied().unwrap_or_default(),
            shards: t.shards.clone(),
        })
        .collect()
}

/// Assembles the [`RunReport`] at the end of a recording run: records the
/// run-level counters and per-job latency observations (so the merged
/// metrics snapshot embedded in the report includes them), then builds the
/// job breakdown in submission order.
#[allow(clippy::too_many_arguments)]
fn assemble_run_report<R: Recorder>(
    recorder: &R,
    wall: Duration,
    workers: usize,
    cohorts: Vec<CohortReport>,
    jobs: &[JobSpec],
    submitted: &[Instant],
    tasks_per_job: &[usize],
    busy_per_job: &[Duration],
    cohort_copies: usize,
    recovery: &RecoveryTotals,
    faults_injected: u64,
    tiers: &TierTotals,
) -> RunReport {
    let total_tasks: usize = tasks_per_job.iter().sum();
    recorder.add(0, Counter::TasksExecuted, total_tasks as u64);
    recorder.add(
        0,
        Counter::JobsCompleted,
        (jobs.len() - recovery.jobs_failed) as u64,
    );
    recorder.add(0, Counter::JobsFailed, recovery.jobs_failed as u64);
    recorder.add(0, Counter::CohortCopies, cohort_copies as u64);
    recorder.add(0, Counter::CohortEvictions, recovery.copies_evicted as u64);
    recorder.add(0, Counter::FaultsInjected, faults_injected);
    recorder.add(0, Counter::CopiesRetried, recovery.copies_retried);
    recorder.add(0, Counter::CopiesQuarantined, recovery.copies_quarantined);
    recorder.add(0, Counter::JobsDegraded, recovery.jobs_degraded as u64);
    recorder.add(
        0,
        Counter::RetryBackoffNanos,
        recovery.retry_backoff.as_nanos() as u64,
    );
    recorder.add(0, Counter::FusedSweeps, tiers.fused_sweeps);
    recorder.add(0, Counter::PerCopySweeps, tiers.per_copy_sweeps);
    recorder.add(
        0,
        Counter::FusedBusyNanos,
        tiers.fused_busy.as_nanos() as u64,
    );
    recorder.add(
        0,
        Counter::PerCopyBusyNanos,
        tiers.per_copy_busy.as_nanos() as u64,
    );
    for cohort in &cohorts {
        let mut items = 0u64;
        let mut hits = 0u64;
        let mut sketch_updates = 0u64;
        for pass in &cohort.passes {
            items += pass.tally.items;
            hits += pass.tally.hits;
            sketch_updates += pass.tally.updates;
        }
        recorder.add(0, Counter::ItemsFolded, items);
        recorder.add(0, Counter::ProbeHits, hits);
        recorder.add(0, Counter::SketchUpdates, sketch_updates);
    }
    let job_reports: Vec<JobReport> = jobs
        .iter()
        .enumerate()
        .map(|(job, spec)| {
            let latency_nanos = submitted
                .get(job)
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            recorder.observe(job, Hist::JobLatencyNanos, latency_nanos);
            JobReport {
                label: spec.label.clone(),
                tasks: tasks_per_job[job],
                busy_nanos: busy_per_job[job].as_nanos() as u64,
                latency_nanos,
            }
        })
        .collect();
    RunReport {
        wall_nanos: wall.as_nanos() as u64,
        workers,
        cohorts,
        jobs: job_reports,
        metrics: recorder.snapshot().unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_core::EstimatorConfig;
    use degentri_stream::{MemoryStream, StreamOrder};

    #[test]
    fn empty_engine_produces_empty_report() {
        let graph = degentri_gen::wheel(50).unwrap();
        let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
        let mut engine = Engine::with_workers(2);
        let report = engine.run(&stream).unwrap();
        assert!(report.jobs.is_empty());
        assert_eq!(report.stats.tasks, 0);
        assert_eq!(report.stats.edges_streamed, 0);
        assert_eq!(report.stats.fused_cohorts, 0);
        assert_eq!(report.stats.sweeps_executed, 0);
    }

    #[test]
    fn invalid_job_config_fails_before_running() {
        let graph = degentri_gen::wheel(50).unwrap();
        let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
        let mut engine = Engine::with_workers(2);
        engine.submit(JobSpec::main(
            "bad",
            EstimatorConfig::builder().epsilon(2.0).build(),
        ));
        assert!(engine.run(&stream).is_err());
        // The queue was drained; the engine is reusable.
        assert_eq!(engine.queued_jobs(), 0);
    }

    #[test]
    fn invalid_engine_config_fails_before_running() {
        let graph = degentri_gen::wheel(50).unwrap();
        let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
        let mut engine = Engine::new(EngineConfig::builder().batch_size(0).build());
        assert!(matches!(
            engine.run(&stream),
            Err(EngineError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn submit_returns_report_indices() {
        let config = EstimatorConfig::builder()
            .kappa(3)
            .triangle_lower_bound(49)
            .copies(2)
            .build();
        let mut engine = Engine::with_workers(2);
        assert_eq!(engine.submit(JobSpec::main("a", config.clone())), 0);
        assert_eq!(engine.submit(JobSpec::ideal("b", config)), 1);
        assert_eq!(engine.queued_jobs(), 2);
        let graph = degentri_gen::wheel(50).unwrap();
        let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
        let report = engine.run(&stream).unwrap();
        assert_eq!(report.jobs[0].label, "a");
        assert_eq!(report.jobs[1].label, "b");
        assert_eq!(report.jobs[0].tasks, 2);
    }

    #[test]
    fn fused_execution_matches_per_copy_scheduling() {
        let graph = degentri_gen::wheel(300).unwrap();
        let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(3));
        let config = EstimatorConfig::builder()
            .kappa(3)
            .triangle_lower_bound(299)
            .copies(3)
            .seed(5)
            .build();
        let mut engine = Engine::with_workers(1);
        engine.submit(JobSpec::main("fused", config.clone()));
        let fused = engine.run(&stream).unwrap();
        assert_eq!(fused.stats.fused_cohorts, 1);
        // Three copies of six passes in six shared sweeps.
        assert_eq!(fused.stats.sweeps_executed, 6);
        assert_eq!(fused.stats.edges_streamed, 6 * graph.num_edges() as u64);

        let mut engine = Engine::new(
            EngineConfig::builder()
                .workers(1)
                .fused_execution(false)
                .try_build()
                .unwrap(),
        );
        engine.submit(JobSpec::main("per-copy", config));
        let per_copy = engine.run(&stream).unwrap();
        assert_eq!(per_copy.stats.fused_cohorts, 0);
        assert_eq!(per_copy.stats.sweeps_executed, 18);
        assert_eq!(
            fused.jobs[0].estimation().estimate.to_bits(),
            per_copy.jobs[0].estimation().estimate.to_bits()
        );
        assert_eq!(
            fused.jobs[0].estimation().copy_estimates,
            per_copy.jobs[0].estimation().copy_estimates
        );
    }

    #[test]
    fn spare_workers_trigger_intra_copy_sharding() {
        let graph = degentri_gen::wheel(300).unwrap();
        let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(3));
        let config = EstimatorConfig::builder()
            .kappa(3)
            .triangle_lower_bound(299)
            .copies(2)
            .seed(5)
            .build();
        // 8 workers for 2 per-copy tasks (fusion off): 4 intra-copy shard
        // workers each.
        let mut engine = Engine::new(
            EngineConfig::builder()
                .workers(8)
                .fused_execution(false)
                .try_build()
                .unwrap(),
        );
        engine.submit(JobSpec::main("sharded", config.clone()));
        let sharded = engine.run(&stream).unwrap();
        assert_eq!(sharded.stats.intra_task_workers, 4);

        // Copy-only scheduling (sharding disabled) must be bit-identical.
        let mut engine = Engine::new(
            EngineConfig::builder()
                .workers(8)
                .fused_execution(false)
                .intra_task_sharding(false)
                .try_build()
                .unwrap(),
        );
        engine.submit(JobSpec::main("copy-only", config.clone()));
        let copy_only = engine.run(&stream).unwrap();
        assert_eq!(copy_only.stats.intra_task_workers, 1);
        assert_eq!(
            sharded.jobs[0].estimation().estimate.to_bits(),
            copy_only.jobs[0].estimation().estimate.to_bits()
        );

        // ... and so must the fused path, sharded or not.
        let mut engine = Engine::with_workers(8);
        engine.submit(JobSpec::main("fused", config));
        let fused = engine.run(&stream).unwrap();
        assert_eq!(fused.stats.fused_cohorts, 1);
        assert_eq!(
            fused.jobs[0].estimation().copy_estimates,
            copy_only.jobs[0].estimation().copy_estimates
        );
    }
}
