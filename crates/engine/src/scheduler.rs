//! The job scheduler: many estimation jobs over one shared graph snapshot.
//!
//! [`Engine::submit`] queues jobs (different ε/κ/seed/algorithm, including
//! the Table-1 baselines through their common trait); [`Engine::run`]
//! flattens every job into its independent tasks — one per estimator copy,
//! one per baseline — and executes all of them on a single scoped worker
//! pool, so the pool stays busy across job boundaries instead of
//! synchronizing after each job. Results are folded back per job in
//! deterministic submission/copy order, which keeps every estimation
//! bit-identical to its sequential counterpart.
//!
//! When the pool is *wider* than the task list — more workers than
//! runnable copies — the spare workers are no longer left stalled: for
//! snapshots that expose their edge storage
//! ([`EdgeStream::as_edge_slice`]), the scheduler builds one
//! [`ShardedStream`] view and runs each shardable copy with shard-parallel
//! passes, assigning `⌊workers / tasks⌋` threads per copy. Which passes
//! shard depends on the effective randomness regime: under the engine
//! default ([`RngMode::Counter`], forced onto every job unless the
//! configuration says otherwise) **every** pass of the six-pass *and*
//! ideal estimators shards; under [`RngMode::Sequential`] only the
//! six-pass estimator's order-insensitive passes do. Per-shard
//! accumulators merge in shard order, so within a regime every scheduling
//! decision changes wall-clock time only.

use std::time::{Duration, Instant};

use degentri_core::{
    run_ideal_copy_sharded, run_ideal_copy_with, run_main_copy_sharded, run_main_copy_with,
    CopyContribution, EstimatorConfig, EstimatorScratch,
};
use degentri_dynamic::{
    aggregate_dynamic_copies, run_dynamic_copy_sharded, run_dynamic_copy_with, DynamicCopyOutcome,
    DynamicError, DynamicEstimatorConfig,
};
use degentri_stream::{
    DynamicEdgeStream, EdgeStream, ShardedDynamicStream, ShardedStream, StreamStats,
};

use crate::config::EngineConfig;
use crate::job::{baseline_estimation, dynamic_estimation, JobKind, JobResult, JobSpec};
use crate::parallel::run_indexed_with;
use crate::stats::EngineStats;
use crate::{EngineError, Result};

/// How many shards each intra-copy worker gets to claim: a few shards per
/// worker smooths out load imbalance from uneven chunk costs without
/// shrinking shards below useful sizes.
const SHARDS_PER_WORKER: usize = 4;

/// A parallel, batched estimation engine over a shared stream snapshot.
///
/// ```
/// use degentri_core::EstimatorConfig;
/// use degentri_engine::{Engine, EngineConfig, JobSpec};
/// use degentri_stream::{MemoryStream, StreamOrder};
///
/// let graph = degentri_gen::wheel(400).unwrap();
/// let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
/// let config = EstimatorConfig::builder()
///     .kappa(3)
///     .triangle_lower_bound(399)
///     .copies(4)
///     .try_build()
///     .unwrap();
/// let mut engine = Engine::new(EngineConfig::with_workers(2));
/// engine.submit(JobSpec::main("wheel", config));
/// let report = engine.run(&stream).unwrap();
/// assert_eq!(report.jobs[0].estimation.copies, 4);
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
    jobs: Vec<JobSpec>,
}

/// Everything one [`Engine::run`] produced: per-job results in submission
/// order plus engine-level statistics.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-job results, in submission order.
    pub jobs: Vec<JobResult>,
    /// Engine-level throughput statistics for the whole run.
    pub stats: EngineStats,
}

/// One schedulable unit: an estimator copy or a baseline run.
#[derive(Debug, Clone, Copy)]
enum Task {
    MainCopy { job: usize, copy: usize },
    IdealCopy { job: usize, copy: usize },
    Baseline { job: usize },
}

impl Task {
    fn job(&self) -> usize {
        match *self {
            Task::MainCopy { job, .. } | Task::IdealCopy { job, .. } | Task::Baseline { job } => {
                job
            }
        }
    }
}

/// What one task produced (plus how long it took).
enum TaskOutput {
    Copy(degentri_core::Result<CopyContribution>),
    Baseline(degentri_baselines::BaselineOutcome),
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            jobs: Vec::new(),
        }
    }

    /// Creates an engine with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Engine::new(EngineConfig::with_workers(workers))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Queues a job; returns its index, which is also its position in
    /// [`EngineReport::jobs`].
    pub fn submit(&mut self, spec: JobSpec) -> usize {
        self.jobs.push(spec);
        self.jobs.len() - 1
    }

    /// Number of jobs currently queued.
    pub fn queued_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Runs every queued job to completion over `stream` (draining the
    /// queue), interleaving all tasks on one worker pool. Jobs fail or
    /// succeed as a unit: the first task error (in deterministic task
    /// order) fails the whole run.
    pub fn run<S>(&mut self, stream: &S) -> Result<EngineReport>
    where
        S: EdgeStream + Sync + ?Sized,
    {
        let jobs: Vec<JobSpec> = self.jobs.drain(..).collect();

        // Reject invalid configurations before any work starts.
        self.config.validate()?;
        if let Some(spec) = jobs
            .iter()
            .find(|spec| matches!(spec.kind, JobKind::Dynamic(_)))
        {
            return Err(EngineError::unsupported_job(format!(
                "job '{}' is a turnstile job; run it over a dynamic snapshot \
                 with Engine::run_dynamic",
                spec.label
            )));
        }
        // The estimator configuration each job actually runs with: the
        // engine's rng_mode override applied on top of the submitted one
        // (None = respect the job's own mode).
        let effective: Vec<Option<EstimatorConfig>> = jobs
            .iter()
            .map(|spec| {
                spec.kind.config().map(|config| {
                    let mut config = config.clone();
                    if let Some(mode) = self.config.rng_mode {
                        config.rng_mode = mode;
                    }
                    config
                })
            })
            .collect();
        for config in effective.iter().flatten() {
            config.validate().map_err(EngineError::from)?;
        }
        let batch = self.config.batch_size;

        // The run's timed region starts here so the shared degree-table
        // pass below is covered by the same clock that its edges are
        // charged to in `edges_streamed`.
        let started = Instant::now();

        // The ideal estimator's degree table costs one pass; build it once
        // and share it across every ideal job and copy.
        let ideal_stats: Option<StreamStats> = jobs
            .iter()
            .any(|spec| matches!(spec.kind, JobKind::Ideal(_)))
            .then(|| StreamStats::compute(stream));
        let stats_pass = started.elapsed();

        // Flatten jobs into independent tasks, job by job, copy by copy —
        // fold-back below relies on this order.
        let mut tasks: Vec<Task> = Vec::new();
        for (job, spec) in jobs.iter().enumerate() {
            let count = spec.kind.task_count();
            match &spec.kind {
                JobKind::Main(_) => {
                    tasks.extend((0..count).map(|copy| Task::MainCopy { job, copy }));
                }
                JobKind::Ideal(_) => {
                    tasks.extend((0..count).map(|copy| Task::IdealCopy { job, copy }));
                }
                JobKind::Baseline(_) => tasks.push(Task::Baseline { job }),
                JobKind::Dynamic(_) => unreachable!("dynamic jobs were rejected above"),
            }
        }

        let m = stream.num_edges() as u64;
        let workers = self.config.effective_workers(tasks.len());

        // Intra-copy shard plan: when the pool is wider than the task list,
        // split each shardable copy's passes across the spare workers
        // instead of leaving them idle. Requires a snapshot that exposes
        // its edge storage for zero-copy sharded views. Which jobs (and
        // which of their passes) shard depends on the effective randomness
        // regime — see `JobKind::supports_intra_task_sharding`.
        let job_mode = |job: usize| {
            effective[job]
                .as_ref()
                .map(|c| c.rng_mode)
                .unwrap_or_default()
        };
        let shardable = jobs
            .iter()
            .enumerate()
            .any(|(job, spec)| spec.kind.supports_intra_task_sharding(job_mode(job)));
        let shard_workers = if self.config.intra_task_sharding && shardable && !tasks.is_empty() {
            (self.config.workers / tasks.len()).max(1)
        } else {
            1
        };
        let sharded_view: Option<ShardedStream<'_>> = (shard_workers > 1)
            .then(|| stream.as_edge_slice())
            .flatten()
            .map(|edges| {
                ShardedStream::new(
                    stream.num_vertices(),
                    edges,
                    shard_workers * SHARDS_PER_WORKER,
                )
            });
        let intra_task_workers = if sharded_view.is_some() {
            shard_workers
        } else {
            1
        };

        let outputs: Vec<(TaskOutput, Duration)> =
            run_indexed_with(workers, tasks.len(), EstimatorScratch::new, |scratch, i| {
                let task_started = Instant::now();
                let output = match tasks[i] {
                    Task::MainCopy { job, copy } => {
                        let config = effective[job].as_ref().expect("main job has a config");
                        let result = match &sharded_view {
                            Some(view) => run_main_copy_sharded(
                                view,
                                config,
                                copy,
                                batch,
                                intra_task_workers,
                                scratch,
                            ),
                            None => run_main_copy_with(stream, config, copy, batch, scratch),
                        };
                        TaskOutput::Copy(result.map(|o| CopyContribution::from(&o)))
                    }
                    Task::IdealCopy { job, copy } => {
                        let config = effective[job].as_ref().expect("ideal job has a config");
                        // Copies share the degree table by reference; StreamStats
                        // answers degree queries directly.
                        let stats = ideal_stats.as_ref().expect("stats built for ideal jobs");
                        let result = match &sharded_view {
                            Some(view)
                                if jobs[job].kind.supports_intra_task_sharding(job_mode(job)) =>
                            {
                                run_ideal_copy_sharded(
                                    view,
                                    stats,
                                    config,
                                    copy,
                                    batch,
                                    intra_task_workers,
                                    scratch,
                                )
                            }
                            _ => run_ideal_copy_with(stream, stats, config, copy, batch, scratch),
                        };
                        TaskOutput::Copy(result.map(|o| CopyContribution::from(&o)))
                    }
                    Task::Baseline { job } => {
                        let JobKind::Baseline(counter) = &jobs[job].kind else {
                            unreachable!("task kind matches job kind");
                        };
                        TaskOutput::Baseline(counter.estimate(&stream))
                    }
                };
                (output, task_started.elapsed())
            });
        let wall = started.elapsed();

        // Fold task outputs back per job, in deterministic task order.
        let mut contributions: Vec<Vec<CopyContribution>> =
            jobs.iter().map(|_| Vec::new()).collect();
        let mut baseline_outcomes: Vec<Option<degentri_baselines::BaselineOutcome>> =
            jobs.iter().map(|_| None).collect();
        let mut busy_per_job: Vec<Duration> = vec![Duration::ZERO; jobs.len()];
        let mut tasks_per_job: Vec<usize> = vec![0; jobs.len()];
        // The serial degree-table pass is work this run performed: it
        // belongs in busy time just as its edges are in `edges_streamed`.
        let mut busy_total = stats_pass;
        let mut edges_streamed = 0u64;
        for (task, (output, spent)) in tasks.iter().zip(outputs) {
            let job = task.job();
            busy_per_job[job] += spent;
            tasks_per_job[job] += 1;
            busy_total += spent;
            match output {
                TaskOutput::Copy(result) => {
                    let contribution = result.map_err(EngineError::from)?;
                    edges_streamed += contribution.passes as u64 * m;
                    contributions[job].push(contribution);
                }
                TaskOutput::Baseline(outcome) => {
                    edges_streamed += outcome.passes as u64 * m;
                    baseline_outcomes[job] = Some(outcome);
                }
            }
        }
        // The shared degree table cost one extra pass.
        if ideal_stats.is_some() {
            edges_streamed += m;
        }

        let results: Vec<JobResult> = jobs
            .iter()
            .enumerate()
            .map(|(job, spec)| {
                let estimation = match &spec.kind {
                    JobKind::Main(_) | JobKind::Ideal(_) => {
                        degentri_core::aggregate_copies(&contributions[job])
                    }
                    JobKind::Baseline(_) => baseline_estimation(
                        baseline_outcomes[job]
                            .as_ref()
                            .expect("baseline task completed"),
                    ),
                    JobKind::Dynamic(_) => unreachable!("dynamic jobs were rejected above"),
                };
                JobResult {
                    label: spec.label.clone(),
                    estimation,
                    dynamic: None,
                    busy: busy_per_job[job],
                    tasks: tasks_per_job[job],
                }
            })
            .collect();

        Ok(EngineReport {
            jobs: results,
            stats: EngineStats::from_run(
                workers,
                intra_task_workers,
                self.config.rng_mode,
                tasks.len(),
                wall,
                busy_total,
                edges_streamed,
            ),
        })
    }

    /// Runs every queued **turnstile** job ([`JobKind::Dynamic`]) to
    /// completion over one shared dynamic snapshot (draining the queue) —
    /// the insert/delete counterpart of [`Engine::run`]. Every copy of
    /// every job runs on one worker pool against the same snapshot (no
    /// re-snapshotting between jobs); when the pool is wider than the task
    /// list and the snapshot exposes its update storage
    /// ([`DynamicEdgeStream::as_update_slice`]), the spare workers execute
    /// each counter-mode copy's passes shard-parallel over one shared
    /// [`ShardedDynamicStream`] view — bit-identical to copy-only
    /// scheduling (the estimator's passes are linear folds; see
    /// `degentri_dynamic::estimator`). Per-copy seeds and the median
    /// aggregation match the standalone
    /// [`DynamicTriangleEstimator::run`](degentri_dynamic::DynamicTriangleEstimator::run),
    /// so engine results are bit-identical to standalone results under the
    /// same effective [`RngMode`](degentri_core::RngMode).
    ///
    /// Submitting a non-turnstile job and calling this method (or the
    /// reverse) fails with [`EngineError::UnsupportedJob`].
    pub fn run_dynamic<S>(&mut self, stream: &S) -> Result<EngineReport>
    where
        S: DynamicEdgeStream + Sync + ?Sized,
    {
        let jobs: Vec<JobSpec> = self.jobs.drain(..).collect();

        // Reject invalid configurations before any work starts.
        self.config.validate()?;
        // The configuration each job actually runs with: the engine's
        // rng_mode override applied on top of the submitted one.
        let mut effective: Vec<DynamicEstimatorConfig> = Vec::with_capacity(jobs.len());
        for spec in &jobs {
            let JobKind::Dynamic(config) = &spec.kind else {
                return Err(EngineError::unsupported_job(format!(
                    "job '{}' is not a turnstile job; run it over an edge \
                     snapshot with Engine::run",
                    spec.label
                )));
            };
            let mut config = config.clone();
            if let Some(mode) = self.config.rng_mode {
                config.rng_mode = mode;
            }
            config.validate().map_err(EngineError::from)?;
            effective.push(config);
        }
        if !jobs.is_empty() && stream.num_updates() == 0 {
            return Err(EngineError::Dynamic(DynamicError::EmptyStream));
        }
        let batch = self.config.batch_size;
        let started = Instant::now();

        // Flatten jobs into independent copy tasks, job by job, copy by
        // copy — fold-back below relies on this order.
        let tasks: Vec<(usize, usize)> = jobs
            .iter()
            .enumerate()
            .flat_map(|(job, spec)| (0..spec.kind.task_count()).map(move |copy| (job, copy)))
            .collect();
        let updates = stream.num_updates() as u64;
        let workers = self.config.effective_workers(tasks.len());

        // Intra-copy shard plan, mirroring the insert-only scheduler: one
        // shared sharded view of the update snapshot, used by every job
        // whose effective randomness regime supports sharded folds.
        let job_shardable = |job: usize| {
            jobs[job]
                .kind
                .supports_intra_task_sharding(effective[job].rng_mode)
        };
        let shardable = (0..jobs.len()).any(job_shardable);
        let shard_workers = if self.config.intra_task_sharding && shardable && !tasks.is_empty() {
            (self.config.workers / tasks.len()).max(1)
        } else {
            1
        };
        let sharded_view: Option<ShardedDynamicStream<'_>> = (shard_workers > 1)
            .then(|| stream.as_update_slice())
            .flatten()
            .map(|update_slice| {
                ShardedDynamicStream::new(
                    stream.num_vertices(),
                    update_slice,
                    shard_workers * SHARDS_PER_WORKER,
                )
            });
        let intra_task_workers = if sharded_view.is_some() {
            shard_workers
        } else {
            1
        };

        let outputs: Vec<(degentri_dynamic::Result<DynamicCopyOutcome>, Duration)> =
            run_indexed_with(
                workers,
                tasks.len(),
                || (),
                |(), i| {
                    let (job, copy) = tasks[i];
                    let config = &effective[job];
                    let task_started = Instant::now();
                    let output = match &sharded_view {
                        Some(view) if job_shardable(job) => {
                            run_dynamic_copy_sharded(view, config, copy, batch, shard_workers)
                        }
                        _ => run_dynamic_copy_with(stream, config, copy, batch),
                    };
                    (output, task_started.elapsed())
                },
            );
        let wall = started.elapsed();

        // Fold copy outputs back per job, in deterministic task order.
        let mut contributions: Vec<Vec<DynamicCopyOutcome>> =
            jobs.iter().map(|_| Vec::new()).collect();
        let mut busy_per_job: Vec<Duration> = vec![Duration::ZERO; jobs.len()];
        let mut tasks_per_job: Vec<usize> = vec![0; jobs.len()];
        let mut busy_total = Duration::ZERO;
        let mut edges_streamed = 0u64;
        for (&(job, _), (output, spent)) in tasks.iter().zip(outputs) {
            busy_per_job[job] += spent;
            tasks_per_job[job] += 1;
            busy_total += spent;
            let contribution = output.map_err(EngineError::from)?;
            // Every turnstile copy makes four passes over the snapshot.
            edges_streamed += 4 * updates;
            contributions[job].push(contribution);
        }

        let results: Vec<JobResult> = jobs
            .iter()
            .enumerate()
            .map(|(job, spec)| {
                let outcome = aggregate_dynamic_copies(&contributions[job]);
                JobResult {
                    label: spec.label.clone(),
                    estimation: dynamic_estimation(&outcome),
                    dynamic: Some(outcome),
                    busy: busy_per_job[job],
                    tasks: tasks_per_job[job],
                }
            })
            .collect();

        Ok(EngineReport {
            jobs: results,
            stats: EngineStats::from_run(
                workers,
                intra_task_workers,
                self.config.rng_mode,
                tasks.len(),
                wall,
                busy_total,
                edges_streamed,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_core::EstimatorConfig;
    use degentri_stream::{MemoryStream, StreamOrder};

    #[test]
    fn empty_engine_produces_empty_report() {
        let graph = degentri_gen::wheel(50).unwrap();
        let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
        let mut engine = Engine::with_workers(2);
        let report = engine.run(&stream).unwrap();
        assert!(report.jobs.is_empty());
        assert_eq!(report.stats.tasks, 0);
        assert_eq!(report.stats.edges_streamed, 0);
    }

    #[test]
    fn invalid_job_config_fails_before_running() {
        let graph = degentri_gen::wheel(50).unwrap();
        let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
        let mut engine = Engine::with_workers(2);
        engine.submit(JobSpec::main(
            "bad",
            EstimatorConfig::builder().epsilon(2.0).build(),
        ));
        assert!(engine.run(&stream).is_err());
        // The queue was drained; the engine is reusable.
        assert_eq!(engine.queued_jobs(), 0);
    }

    #[test]
    fn invalid_engine_config_fails_before_running() {
        let graph = degentri_gen::wheel(50).unwrap();
        let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
        let mut engine = Engine::new(EngineConfig::builder().batch_size(0).build());
        assert!(matches!(
            engine.run(&stream),
            Err(EngineError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn submit_returns_report_indices() {
        let config = EstimatorConfig::builder()
            .kappa(3)
            .triangle_lower_bound(49)
            .copies(2)
            .build();
        let mut engine = Engine::with_workers(2);
        assert_eq!(engine.submit(JobSpec::main("a", config.clone())), 0);
        assert_eq!(engine.submit(JobSpec::ideal("b", config)), 1);
        assert_eq!(engine.queued_jobs(), 2);
        let graph = degentri_gen::wheel(50).unwrap();
        let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
        let report = engine.run(&stream).unwrap();
        assert_eq!(report.jobs[0].label, "a");
        assert_eq!(report.jobs[1].label, "b");
        assert_eq!(report.jobs[0].tasks, 2);
    }

    #[test]
    fn spare_workers_trigger_intra_copy_sharding() {
        let graph = degentri_gen::wheel(300).unwrap();
        let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(3));
        let config = EstimatorConfig::builder()
            .kappa(3)
            .triangle_lower_bound(299)
            .copies(2)
            .seed(5)
            .build();
        // 8 workers for 2 copies: 4 intra-copy shard workers each.
        let mut engine = Engine::with_workers(8);
        engine.submit(JobSpec::main("sharded", config.clone()));
        let sharded = engine.run(&stream).unwrap();
        assert_eq!(sharded.stats.intra_task_workers, 4);

        // Copy-only scheduling (sharding disabled) must be bit-identical.
        let mut engine = Engine::new(
            EngineConfig::builder()
                .workers(8)
                .intra_task_sharding(false)
                .try_build()
                .unwrap(),
        );
        engine.submit(JobSpec::main("copy-only", config));
        let copy_only = engine.run(&stream).unwrap();
        assert_eq!(copy_only.stats.intra_task_workers, 1);
        assert_eq!(
            sharded.jobs[0].estimation.estimate.to_bits(),
            copy_only.jobs[0].estimation.estimate.to_bits()
        );
        assert_eq!(
            sharded.jobs[0].estimation.copy_estimates,
            copy_only.jobs[0].estimation.copy_estimates
        );
    }
}
