//! Engine-level throughput statistics.

use std::fmt;
use std::time::Duration;

use degentri_core::RngMode;

/// Throughput statistics for one [`Engine::run`](crate::Engine::run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Worker threads the run used.
    pub workers: usize,
    /// Threads each shardable copy's shard-parallel passes ran on
    /// (1 = copy-level parallelism only; > 1 = spare workers were folded
    /// into intra-copy sharded passes).
    pub intra_task_workers: usize,
    /// The randomness regime the run forced onto its jobs (`None` = each
    /// job kept its own `EstimatorConfig::rng_mode`). Under
    /// [`RngMode::Counter`] the intra-copy workers cover **every** pass;
    /// under [`RngMode::Sequential`] only the order-insensitive ones.
    pub rng_mode: Option<RngMode>,
    /// Tasks (estimator copies + baseline runs) executed.
    pub tasks: usize,
    /// Fused cohorts the run executed (counter-mode copies grouped so each
    /// pass stage is one shared snapshot sweep; 0 when everything ran
    /// per-copy).
    pub fused_cohorts: usize,
    /// Physical snapshot traversals the run performed: fused sweeps count
    /// once per *cohort* pass, per-copy tasks once per copy pass. Always
    /// `edges_streamed / snapshot len`.
    pub sweeps_executed: u64,
    /// Sweeps executed by fused cohort stages (one shared traversal serves
    /// every cohort member). Subset of [`sweeps_executed`](Self::sweeps_executed).
    pub fused_sweeps: u64,
    /// Sweeps executed by per-copy tasks (including any shared stats pass):
    /// `sweeps_executed - fused_sweeps`.
    pub per_copy_sweeps: u64,
    /// Wall-clock time of the whole run in seconds.
    pub wall_seconds: f64,
    /// Total CPU-busy seconds summed over all workers (per-copy tasks
    /// count measured task time; fused cohorts count measured
    /// shard-busy time summed over their sweep shards).
    pub busy_seconds: f64,
    /// Measured busy seconds attributable to fused cohort sweeps (summed
    /// shard-busy time). Subset of [`busy_seconds`](Self::busy_seconds).
    pub fused_busy_seconds: f64,
    /// Measured busy seconds attributable to per-copy task bodies:
    /// `busy_seconds - fused_busy_seconds`.
    pub per_copy_busy_seconds: f64,
    /// Items the run physically streamed: `sweeps_executed × snapshot
    /// len`. Per-copy tasks traverse the snapshot once per pass each;
    /// fused cohorts traverse it once per *shared* pass stage, so a fused
    /// 4-copy six-pass job contributes `6 × m`, not `24 × m`.
    pub edges_streamed: u64,
    /// Streaming throughput: [`edges_streamed`](Self::edges_streamed)
    /// divided by wall time.
    pub edges_per_second: f64,
    /// Fraction of worker capacity that was busy:
    /// `busy / (workers × wall)`, in `(0, 1]` up to timer jitter.
    pub worker_utilization: f64,
    /// Jobs whose outcome was a contained error (panic, estimator failure,
    /// deadline, cancellation). Their batchmates' results are unaffected.
    pub jobs_failed: usize,
    /// Copies evicted from fused cohorts by failure containment (the
    /// failing job's copies leave the union probe structures; survivors
    /// stay bit-identical to a run without the failed job).
    pub copies_evicted: usize,
    /// Retry attempts executed for failed copies under a
    /// [`RetryPolicy`](crate::RetryPolicy) (each re-execution of one copy
    /// counts once, successful or not).
    pub copies_retried: u64,
    /// Copies whose failures survived the retry layer (attempts or budget
    /// exhausted, or a deadline/cancellation cut short-circuited the
    /// retry): they enter the degraded path governed by each job's
    /// [`QuorumPolicy`](crate::QuorumPolicy).
    pub copies_quarantined: u64,
    /// Jobs that succeeded on a surviving-copy quorum with fewer copies
    /// than configured (their [`JobOutput::degraded`](crate::JobOutput)
    /// carries the details).
    pub jobs_degraded: usize,
    /// Wall-clock seconds the retry layer spent sleeping in backoff
    /// delays (coordinator time, not worker-pool time).
    pub retry_backoff_seconds: f64,
}

/// The run's failure/recovery tallies, bundled so
/// [`EngineStats::from_run`] call sites stay readable as the set grows.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RecoveryTotals {
    pub jobs_failed: usize,
    pub copies_evicted: usize,
    pub copies_retried: u64,
    pub copies_quarantined: u64,
    pub jobs_degraded: usize,
    pub retry_backoff: Duration,
}

impl EngineStats {
    /// Builds the statistics from raw measurements. Takes the snapshot
    /// length rather than a caller-computed edge total: the
    /// `edges_streamed = sweeps_executed × snapshot_len` invariant is
    /// enforced here, in one place, instead of being re-derived (and
    /// potentially diverging) at every call site.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_run(
        workers: usize,
        intra_task_workers: usize,
        rng_mode: Option<RngMode>,
        tasks: usize,
        fused_cohorts: usize,
        sweeps_executed: u64,
        fused_sweeps: u64,
        wall: Duration,
        busy: Duration,
        fused_busy: Duration,
        snapshot_len: u64,
        recovery: RecoveryTotals,
    ) -> Self {
        let edges_streamed = sweeps_executed * snapshot_len;
        let wall_seconds = wall.as_secs_f64();
        let busy_seconds = busy.as_secs_f64();
        let fused_busy_seconds = fused_busy.as_secs_f64();
        let denom = wall_seconds.max(1e-12);
        EngineStats {
            workers,
            intra_task_workers,
            rng_mode,
            tasks,
            fused_cohorts,
            sweeps_executed,
            fused_sweeps,
            per_copy_sweeps: sweeps_executed.saturating_sub(fused_sweeps),
            wall_seconds,
            busy_seconds,
            fused_busy_seconds,
            per_copy_busy_seconds: (busy_seconds - fused_busy_seconds).max(0.0),
            edges_streamed,
            edges_per_second: edges_streamed as f64 / denom,
            worker_utilization: busy_seconds / (denom * workers.max(1) as f64),
            jobs_failed: recovery.jobs_failed,
            copies_evicted: recovery.copies_evicted,
            copies_retried: recovery.copies_retried,
            copies_quarantined: recovery.copies_quarantined,
            jobs_degraded: recovery.jobs_degraded,
            retry_backoff_seconds: recovery.retry_backoff.as_secs_f64(),
        }
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks on {} workers in {:.3}s — {:.0} edges/s, {:.0}% utilization, \
             {} fused cohorts, {} sweeps ({} fused / {} per-copy), \
             busy {:.3}s ({:.3}s fused / {:.3}s per-copy)",
            self.tasks,
            self.workers,
            self.wall_seconds,
            self.edges_per_second,
            100.0 * self.worker_utilization,
            self.fused_cohorts,
            self.sweeps_executed,
            self.fused_sweeps,
            self.per_copy_sweeps,
            self.busy_seconds,
            self.fused_busy_seconds,
            self.per_copy_busy_seconds,
        )?;
        // Failure/recovery counters only appear when something happened:
        // the healthy-run line stays short.
        if self.jobs_failed > 0 || self.copies_evicted > 0 {
            write!(
                f,
                ", {} jobs failed, {} copies evicted",
                self.jobs_failed, self.copies_evicted
            )?;
        }
        if self.copies_retried > 0 || self.copies_quarantined > 0 || self.jobs_degraded > 0 {
            write!(
                f,
                ", {} copies retried ({:.3}s backoff), {} quarantined, {} jobs degraded",
                self.copies_retried,
                self.retry_backoff_seconds,
                self.copies_quarantined,
                self.jobs_degraded,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_are_consistent() {
        let stats = EngineStats::from_run(
            4,
            2,
            Some(RngMode::Counter),
            10,
            1,
            20,
            6,
            Duration::from_millis(500),
            Duration::from_millis(1500),
            Duration::from_millis(600),
            50_000,
            RecoveryTotals {
                jobs_failed: 1,
                copies_evicted: 4,
                copies_retried: 3,
                copies_quarantined: 2,
                jobs_degraded: 1,
                retry_backoff: Duration::from_millis(250),
            },
        );
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.intra_task_workers, 2);
        assert_eq!(stats.rng_mode, Some(RngMode::Counter));
        assert_eq!(stats.fused_cohorts, 1);
        assert_eq!(stats.sweeps_executed, 20);
        assert_eq!(stats.fused_sweeps, 6);
        assert_eq!(stats.per_copy_sweeps, 14);
        assert!((stats.fused_busy_seconds - 0.6).abs() < 1e-9);
        assert!((stats.per_copy_busy_seconds - 0.9).abs() < 1e-9);
        // The invariant is enforced at construction, not per call site.
        assert_eq!(stats.edges_streamed, stats.sweeps_executed * 50_000);
        assert!((stats.edges_per_second - 2_000_000.0).abs() < 1e-6);
        assert!((stats.worker_utilization - 0.75).abs() < 1e-9);
        assert_eq!(stats.jobs_failed, 1);
        assert_eq!(stats.copies_evicted, 4);
        assert_eq!(stats.copies_retried, 3);
        assert_eq!(stats.copies_quarantined, 2);
        assert_eq!(stats.jobs_degraded, 1);
        assert!((stats.retry_backoff_seconds - 0.25).abs() < 1e-9);
    }

    #[test]
    fn display_covers_the_full_schema() {
        // One place asserts the human-readable schema: every tier split and
        // every recovery counter must be visible when non-zero.
        let stats = EngineStats::from_run(
            4,
            2,
            Some(RngMode::Counter),
            10,
            1,
            20,
            6,
            Duration::from_millis(500),
            Duration::from_millis(1500),
            Duration::from_millis(600),
            50_000,
            RecoveryTotals {
                jobs_failed: 1,
                copies_evicted: 4,
                copies_retried: 3,
                copies_quarantined: 2,
                jobs_degraded: 1,
                retry_backoff: Duration::from_millis(250),
            },
        );
        let text = stats.to_string();
        assert!(text.contains("4 workers") && text.contains("10 tasks"));
        assert!(text.contains("1 fused cohorts") && text.contains("20 sweeps"));
        assert!(text.contains("(6 fused / 14 per-copy)"), "{text}");
        assert!(
            text.contains("busy 1.500s (0.600s fused / 0.900s per-copy)"),
            "{text}"
        );
        assert!(text.contains("1 jobs failed") && text.contains("4 copies evicted"));
        assert!(text.contains("3 copies retried (0.250s backoff)"), "{text}");
        assert!(text.contains("2 quarantined") && text.contains("1 jobs degraded"));

        // A healthy run's line carries no failure/recovery noise.
        let clean = EngineStats::from_run(
            2,
            1,
            None,
            4,
            1,
            6,
            6,
            Duration::from_millis(100),
            Duration::from_millis(150),
            Duration::from_millis(150),
            1_000,
            RecoveryTotals::default(),
        );
        let text = clean.to_string();
        assert!(
            !text.contains("failed") && !text.contains("retried"),
            "{text}"
        );
        assert!(
            !text.contains("degraded") && !text.contains("quarantined"),
            "{text}"
        );
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let stats = EngineStats::from_run(
            1,
            1,
            None,
            1,
            0,
            0,
            0,
            Duration::ZERO,
            Duration::ZERO,
            Duration::ZERO,
            10,
            RecoveryTotals::default(),
        );
        assert!(stats.edges_per_second.is_finite());
        assert!(stats.worker_utilization.is_finite());
    }
}
