//! The chaos soak: seeded stochastic fault plans swept over a mixed
//! workload (plain, retrying, quorum-tolerant, and turnstile jobs), both
//! execution tiers, and several worker counts. Whatever fires wherever it
//! fires, every job must land in exactly one of three lawful outcomes:
//!
//! 1. **Full strength** — bit-identical to the fault-free reference.
//! 2. **Degraded** — the output aggregates *exactly* the surviving copies
//!    (checked bit-for-bit against the clean per-copy estimates), and the
//!    degradation record accounts for every configured copy.
//! 3. **Failed** — with an error the injection harness can actually
//!    produce. Never a torn aggregate, never a corrupted neighbor.
//!
//! Only compiled with `--features fault-inject` (CI's `chaos-soak` job).
//! `CHAOS_SOAK_SEEDS` overrides the number of plan seeds (default 8).
#![cfg(feature = "fault-inject")]

use degentri_core::faults::{self, FaultPlan};
use degentri_core::TriangleEstimation;
use degentri_core::{aggregate_copies, CopyContribution, EstimatorConfig, RngMode};
use degentri_dynamic::DynamicEstimatorConfig;
use degentri_engine::{
    Engine, EngineConfig, EngineError, JobKind, JobResult, JobSpec, QuorumPolicy, RetryPolicy,
};
use degentri_stream::{MemoryStream, StreamOrder};

fn main_config(seed: u64, copies: usize) -> EstimatorConfig {
    EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(5)
        .triangle_lower_bound(600)
        .r_constant(8.0)
        .inner_constant(16.0)
        .assignment_constant(6.0)
        .copies(copies)
        .seed(seed)
        .rng_mode(RngMode::Counter)
        .try_build()
        .unwrap()
}

fn dyn_config(seed: u64, copies: usize) -> DynamicEstimatorConfig {
    DynamicEstimatorConfig::new(4, 80)
        .with_epsilon(0.3)
        .with_copies(copies)
        .with_seed(seed)
        .with_max_samples(96)
        .with_rng_mode(RngMode::Counter)
}

fn engine(workers: usize, fused: bool) -> Engine {
    Engine::new(
        EngineConfig::builder()
            .workers(workers)
            .fused_execution(fused)
            .try_build()
            .unwrap(),
    )
}

/// The soak's mixed batch: a plain job (all-or-nothing), a retrying
/// best-effort job, a quorum-tolerant ideal job, and a retrying turnstile
/// job — every recovery configuration in one cohort.
fn submit_all(engine: &mut Engine) {
    engine.submit(JobSpec::main("plain", main_config(101, 2)));
    engine.submit(
        JobSpec::main("retry", main_config(102, 3))
            .retry(RetryPolicy::new(2))
            .quorum(QuorumPolicy::best_effort()),
    );
    engine.submit(
        JobSpec::ideal("quorum-ideal", main_config(103, 3)).quorum(QuorumPolicy::at_least(1)),
    );
    engine.submit(
        JobSpec::dynamic("retry-dyn", dyn_config(104, 3))
            .retry(RetryPolicy::new(2))
            .quorum(QuorumPolicy::best_effort()),
    );
}

/// An error the harness can actually inject (directly, or via the panic
/// containment layer). Anything else — above all `InvalidConfig` or a
/// silently wrong aggregate — is a soak failure.
fn is_lawful_error(error: &EngineError) -> bool {
    matches!(
        error,
        EngineError::Panicked { .. } | EngineError::Estimator(_) | EngineError::Dynamic(_)
    )
}

/// The median of the surviving copy estimates — exactly
/// `degentri_dynamic::aggregate_dynamic_copies`' aggregation rule.
fn median(estimates: &[f64]) -> f64 {
    let mut sorted = estimates.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
    let mid = sorted.len() / 2;
    if sorted.is_empty() {
        0.0
    } else if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Asserts the trichotomy for one job against its clean reference.
/// Returns (failed, degraded) for the sweep's coverage accounting.
fn check_job(
    job: &JobResult,
    kind: &JobKind,
    clean: &TriangleEstimation,
    what: &str,
) -> (bool, bool) {
    let output = match &job.outcome {
        Err(error) => {
            assert!(is_lawful_error(error), "{what}: unlawful error {error:?}");
            return (true, false);
        }
        Ok(output) => output,
    };
    let est = &output.estimation;
    let Some(degradation) = &output.degraded else {
        // Full strength: bit-identical to the fault-free run.
        assert_eq!(
            est.estimate.to_bits(),
            clean.estimate.to_bits(),
            "{what}: full-strength estimate"
        );
        assert_eq!(est.copy_estimates, clean.copy_estimates, "{what}");
        return (false, false);
    };
    // Degraded: the record accounts for every configured copy, every
    // lost copy carries a lawful error, and the aggregate is exactly the
    // clean aggregate over the surviving subset.
    assert_eq!(
        degradation.copies_used + degradation.copies_lost,
        clean.copies,
        "{what}: degradation accounting"
    );
    assert_eq!(
        degradation.copy_errors.len(),
        degradation.copies_lost,
        "{what}"
    );
    for (copy, error) in &degradation.copy_errors {
        assert!(
            *copy < clean.copies,
            "{what}: lost copy {copy} out of range"
        );
        assert!(
            is_lawful_error(error),
            "{what}: unlawful copy error {error:?}"
        );
    }
    let lost: Vec<usize> = degradation.copy_errors.iter().map(|&(c, _)| c).collect();
    let surviving: Vec<f64> = (0..clean.copies)
        .filter(|c| !lost.contains(c))
        .map(|c| clean.copy_estimates[c])
        .collect();
    assert_eq!(
        est.copy_estimates, surviving,
        "{what}: degraded copies must be the clean survivors"
    );
    let expected = match kind {
        JobKind::Main(_) | JobKind::Ideal(_) => {
            let contributions: Vec<CopyContribution> = surviving
                .iter()
                .map(|&estimate| CopyContribution {
                    estimate,
                    passes: clean.passes_per_copy,
                    peak_words: 0,
                })
                .collect();
            aggregate_copies(&contributions).estimate
        }
        JobKind::Dynamic(_) => median(&surviving),
        JobKind::Baseline(_) => unreachable!("baselines are never degraded"),
    };
    assert_eq!(
        est.estimate.to_bits(),
        expected.to_bits(),
        "{what}: degraded aggregate must equal the surviving-copy aggregate"
    );
    (false, true)
}

#[test]
fn seeded_chaos_soak_never_corrupts_any_job() {
    let seeds: u64 = std::env::var("CHAOS_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let graph = degentri_gen::barabasi_albert(300, 4, 3).unwrap();
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(4));

    // The fault-free reference for every job, and each job's kind (for
    // the degraded-aggregate recomputation) — mirroring `submit_all`.
    let kinds = [
        JobKind::Main(main_config(101, 2)),
        JobKind::Main(main_config(102, 3)),
        JobKind::Ideal(main_config(103, 3)),
        JobKind::Dynamic(dyn_config(104, 3)),
    ];
    let reference: Vec<TriangleEstimation> = faults::with_plan(FaultPlan::default(), || {
        let mut clean = engine(2, true);
        submit_all(&mut clean);
        clean
            .run(&stream)
            .unwrap()
            .jobs
            .into_iter()
            .map(|j| j.into_estimation())
            .collect()
    });

    let mut fired_total = 0u64;
    let mut failures = 0usize;
    let mut degradations = 0usize;
    let mut retried = 0u64;
    for plan_seed in 1..=seeds {
        for fused in [true, false] {
            for workers in [1usize, 4] {
                let what = format!("plan_seed={plan_seed} fused={fused} workers={workers}");
                let (report, observed) =
                    faults::with_plan(FaultPlan::seeded(plan_seed, 40), || {
                        let mut engine = engine(workers, fused);
                        submit_all(&mut engine);
                        let report = engine.run(&stream).unwrap();
                        (report, faults::report())
                    });
                assert!(observed.total_probes() > 0, "{what}: no probes executed");
                fired_total += observed.total_fired();
                retried += report.stats.copies_retried;
                let mut run_failed = 0usize;
                let mut run_degraded = 0usize;
                for (i, job) in report.jobs.iter().enumerate() {
                    let (failed, degraded) =
                        check_job(job, &kinds[i], &reference[i], &format!("{what} job={i}"));
                    run_failed += usize::from(failed);
                    run_degraded += usize::from(degraded);
                }
                // The run's own accounting agrees with the outcomes.
                assert_eq!(report.stats.jobs_failed, run_failed, "{what}");
                assert_eq!(report.stats.jobs_degraded, run_degraded, "{what}");
                failures += run_failed;
                degradations += run_degraded;
            }
        }
    }
    // The soak must have exercised the machinery it claims to prove:
    // faults actually fired, and the recovery layer actually recovered.
    assert!(fired_total > 0, "no faults fired across the sweep");
    assert!(
        failures + degradations + retried as usize > 0,
        "no job ever failed, degraded, or retried across the sweep"
    );
}
