//! Engine-vs-standalone parity for the turnstile estimator: a
//! [`JobKind::Dynamic`] job scheduled by the engine must reproduce the
//! standalone [`DynamicTriangleEstimator::run`] bit for bit — across
//! worker counts, in both randomness regimes, with and without the
//! spare-worker sharded path — because copies carry the same derived
//! seeds and the median aggregation is shared.

use degentri_core::RngMode;
use degentri_dynamic::{DynamicEstimatorConfig, DynamicOutcome, DynamicTriangleEstimator};
use degentri_engine::{Engine, EngineConfig, EngineError, JobSpec};
use degentri_gen::{barabasi_albert, wheel};
use degentri_graph::triangles::count_triangles;
use degentri_stream::{
    DynamicMemoryStream, EdgeUpdate, MemoryStream, ShardedDynamicStream, StreamOrder,
};

fn workload() -> (DynamicMemoryStream, DynamicEstimatorConfig) {
    let g = barabasi_albert(140, 4, 5).unwrap();
    let stream = DynamicMemoryStream::with_churn(&g, 0.5, 23);
    let config = DynamicEstimatorConfig::new(4, count_triangles(&g).max(1) / 2)
        .with_epsilon(0.3)
        .with_copies(4)
        .with_seed(19)
        .with_max_samples(120);
    (stream, config)
}

fn assert_same(engine: &degentri_engine::JobResult, standalone: &DynamicOutcome, what: &str) {
    assert_eq!(
        engine.estimation().estimate.to_bits(),
        standalone.estimate.to_bits(),
        "{what}: estimate"
    );
    assert_eq!(
        engine.estimation().copy_estimates,
        standalone.copy_estimates,
        "{what}: copies"
    );
    assert_eq!(engine.estimation().space, standalone.space, "{what}: space");
    let dynamic = engine.dynamic().expect("dynamic outcome attached");
    assert_eq!(dynamic.surviving_edges, standalone.surviving_edges);
    assert_eq!(dynamic.triangles_found, standalone.triangles_found);
    assert_eq!(dynamic.r, standalone.r);
}

#[test]
fn engine_matches_standalone_across_workers_and_modes() {
    let (stream, config) = workload();
    for mode in [RngMode::Sequential, RngMode::Counter] {
        let standalone = DynamicTriangleEstimator::new(config.clone().with_rng_mode(mode))
            .run(&stream)
            .unwrap();
        for workers in [1usize, 2, 4] {
            let mut engine = Engine::new(
                EngineConfig::builder()
                    .workers(workers)
                    .rng_mode(mode)
                    .try_build()
                    .unwrap(),
            );
            engine.submit(JobSpec::dynamic("turnstile", config.clone()));
            let report = engine.run_dynamic(&stream).unwrap();
            assert_same(
                &report.jobs[0],
                &standalone,
                &format!("{mode:?} workers {workers}"),
            );
            assert_eq!(report.stats.rng_mode, Some(mode));
            assert_eq!(report.stats.tasks, config.copies);
            assert!(report.stats.edges_streamed > 0);
        }
    }
}

#[test]
fn engine_forces_counter_mode_by_default() {
    let (stream, config) = workload();
    // The submitted job asks for the sequential regime; the engine default
    // overrides it to counter mode, so the result must equal a standalone
    // counter-mode run.
    let counter = DynamicTriangleEstimator::new(config.clone().with_rng_mode(RngMode::Counter))
        .run(&stream)
        .unwrap();
    let mut engine = Engine::with_workers(2);
    engine.submit(JobSpec::dynamic("forced", config.clone()));
    let report = engine.run_dynamic(&stream).unwrap();
    assert_same(&report.jobs[0], &counter, "forced counter");

    // job_rng_mode() makes the engine respect the job's own regime.
    let sequential = DynamicTriangleEstimator::new(config.clone())
        .run(&stream)
        .unwrap();
    let mut engine = Engine::new(
        EngineConfig::builder()
            .workers(2)
            .job_rng_mode()
            .try_build()
            .unwrap(),
    );
    engine.submit(JobSpec::dynamic("respected", config));
    let report = engine.run_dynamic(&stream).unwrap();
    assert_same(&report.jobs[0], &sequential, "respected sequential");
    assert_eq!(report.stats.rng_mode, None);
}

#[test]
fn spare_workers_shard_counter_mode_copies_bit_identically() {
    let (stream, config) = workload();
    // 2 copies on 8 workers: 4 shard workers per copy.
    let config = config.with_copies(2);
    let mut wide = Engine::with_workers(8);
    wide.submit(JobSpec::dynamic("sharded", config.clone()));
    let sharded = wide.run_dynamic(&stream).unwrap();
    // The fused cohort shards its shared sweeps across the whole pool.
    assert_eq!(sharded.stats.intra_task_workers, 8);
    assert_eq!(sharded.stats.fused_cohorts, 1);

    let mut copy_only = Engine::new(
        EngineConfig::builder()
            .workers(8)
            .intra_task_sharding(false)
            .try_build()
            .unwrap(),
    );
    copy_only.submit(JobSpec::dynamic("copy-only", config.clone()));
    let plain = copy_only.run_dynamic(&stream).unwrap();
    assert_eq!(plain.stats.intra_task_workers, 1);
    assert_eq!(
        sharded.jobs[0].estimation().estimate.to_bits(),
        plain.jobs[0].estimation().estimate.to_bits()
    );
    assert_eq!(
        sharded.jobs[0].estimation().copy_estimates,
        plain.jobs[0].estimation().copy_estimates
    );

    // Under a forced sequential regime the dynamic job does not shard.
    let mut sequential = Engine::new(
        EngineConfig::builder()
            .workers(8)
            .rng_mode(RngMode::Sequential)
            .try_build()
            .unwrap(),
    );
    sequential.submit(JobSpec::dynamic("sequential", config));
    let report = sequential.run_dynamic(&stream).unwrap();
    assert_eq!(report.stats.intra_task_workers, 1);
}

#[test]
fn engine_copies_match_manual_sharded_copies_at_every_shard_count() {
    // The engine picks one shard count from its worker budget; the runner
    // API lets tests pin any shard count. All of them must agree with the
    // engine result (and with each other).
    let (stream, config) = workload();
    let config = config.with_rng_mode(RngMode::Counter).with_copies(2);
    let estimator = DynamicTriangleEstimator::new(config.clone());
    let mut engine = Engine::with_workers(8);
    engine.submit(JobSpec::dynamic("reference", config.clone()));
    let report = engine.run_dynamic(&stream).unwrap();
    for shards in 1..=8usize {
        for workers in [1usize, 2, 4] {
            let view = ShardedDynamicStream::from_stream(&stream, shards);
            let out = estimator.run_sharded(&view, workers).unwrap();
            assert_eq!(
                out.copy_estimates,
                report.jobs[0].estimation().copy_estimates,
                "shards {shards} workers {workers}"
            );
        }
    }
}

#[test]
fn many_dynamic_jobs_share_one_snapshot() {
    let (stream, config) = workload();
    let mut engine = Engine::with_workers(4);
    for (i, seed) in [1u64, 2, 3].iter().enumerate() {
        engine.submit(JobSpec::dynamic(
            format!("job {i}"),
            config.clone().with_seed(*seed).with_copies(2),
        ));
    }
    let report = engine.run_dynamic(&stream).unwrap();
    assert_eq!(report.jobs.len(), 3);
    for (i, job) in report.jobs.iter().enumerate() {
        assert_eq!(job.label, format!("job {i}"));
        assert_eq!(job.tasks, 2);
        let standalone = DynamicTriangleEstimator::new(
            config
                .clone()
                .with_seed([1u64, 2, 3][i])
                .with_copies(2)
                .with_rng_mode(RngMode::Counter),
        )
        .run(&stream)
        .unwrap();
        assert_same(job, &standalone, &format!("job {i}"));
    }
    // The queue was drained; the engine is reusable.
    assert_eq!(engine.queued_jobs(), 0);
}

#[test]
fn entry_point_matrix_is_enforced() {
    let (dynamic_stream, dynamic_config) = workload();
    let g = wheel(60).unwrap();
    let edge_stream = MemoryStream::from_graph(&g, StreamOrder::AsGiven);

    // A turnstile job over an edge snapshot runs on the insert-only
    // materialization of the edges — bit-identical to the standalone
    // estimator fed the same stream as inserts.
    let mut engine = Engine::with_workers(2);
    engine.submit(JobSpec::dynamic("turnstile", dynamic_config.clone()));
    let report = engine.run(&edge_stream).unwrap();
    let inserts = edge_stream
        .edges()
        .iter()
        .map(|&edge| EdgeUpdate::insert(edge))
        .collect();
    let insert_stream = DynamicMemoryStream::from_updates(g.num_vertices(), inserts);
    let standalone =
        DynamicTriangleEstimator::new(dynamic_config.clone().with_rng_mode(RngMode::Counter))
            .run(&insert_stream)
            .unwrap();
    assert_same(&report.jobs[0], &standalone, "turnstile on edge snapshot");

    // An insert-only job cannot run over a dynamic snapshot.
    let main_config = degentri_core::EstimatorConfig::builder()
        .kappa(3)
        .triangle_lower_bound(59)
        .copies(2)
        .build();
    let mut engine = Engine::with_workers(2);
    engine.submit(JobSpec::main("insert-only", main_config));
    assert!(matches!(
        engine.run_dynamic(&dynamic_stream),
        Err(EngineError::UnsupportedJob { .. })
    ));

    // Invalid dynamic configurations fail validation up front.
    let mut engine = Engine::with_workers(2);
    engine.submit(JobSpec::dynamic(
        "bad",
        dynamic_config.clone().with_epsilon(2.0),
    ));
    assert!(matches!(
        engine.run_dynamic(&dynamic_stream),
        Err(EngineError::Dynamic(_))
    ));

    // An empty dynamic snapshot is rejected like the standalone runner.
    let empty = DynamicMemoryStream::from_updates(4, Vec::new());
    let mut engine = Engine::with_workers(2);
    engine.submit(JobSpec::dynamic("empty", dynamic_config));
    assert!(matches!(
        engine.run_dynamic(&empty),
        Err(EngineError::Dynamic(_))
    ));

    // An empty queue over a dynamic snapshot is a valid no-op.
    let mut engine = Engine::with_workers(2);
    let report = engine.run_dynamic(&dynamic_stream).unwrap();
    assert!(report.jobs.is_empty());
    assert_eq!(report.stats.tasks, 0);
}
