//! The containment invariant, proven end to end: a failing job — panic,
//! injected estimator error, missed deadline, or cancellation — fails
//! **alone**. Its batchmates' estimations stay bit-identical to a clean
//! run on every execution tier (fused cohorts, per-copy tasks, sharded
//! per-copy tasks) at every worker count, because counter-mode randomness
//! keys every draw by stream position and copy seed, never by what else
//! is in flight.
//!
//! The tests in the root module need no features; the `faulted` module
//! drives the deterministic injection harness and only compiles with
//! `--features fault-inject` (CI's `fault-smoke` job).

use std::time::Duration;

use degentri_baselines::{BaselineOutcome, StreamingTriangleCounter};
use degentri_core::{EstimatorConfig, RngMode, TriangleEstimation};
use degentri_engine::{Engine, EngineConfig, EngineError, JobSpec};
use degentri_stream::{EdgeStream, MemoryStream, SpaceReport, StreamOrder};

fn main_config(seed: u64) -> EstimatorConfig {
    EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(5)
        .triangle_lower_bound(600)
        .r_constant(8.0)
        .inner_constant(16.0)
        .assignment_constant(6.0)
        .copies(2)
        .seed(seed)
        .rng_mode(RngMode::Counter)
        .try_build()
        .unwrap()
}

fn workload() -> MemoryStream {
    let graph = degentri_gen::barabasi_albert(300, 4, 3).unwrap();
    MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(4))
}

fn engine(workers: usize, fused: bool) -> Engine {
    Engine::new(
        EngineConfig::builder()
            .workers(workers)
            .fused_execution(fused)
            .try_build()
            .unwrap(),
    )
}

/// Runs `f` with an **empty** fault plan installed when the injection
/// feature is compiled in. The harness is process-global, so engine runs
/// that must stay fault-free have to serialize against tests that install
/// firing plans; without the feature this is a plain call.
fn quiesced<R>(f: impl FnOnce() -> R) -> R {
    #[cfg(feature = "fault-inject")]
    {
        degentri_core::faults::with_plan(degentri_core::faults::FaultPlan::default(), f)
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        f()
    }
}

/// The clean per-job estimations of a batch — the bit-identity reference
/// every containment test compares survivors against.
fn clean_reference(stream: &MemoryStream, seeds: &[u64]) -> Vec<TriangleEstimation> {
    quiesced(|| {
        let mut engine = engine(2, true);
        for (i, &seed) in seeds.iter().enumerate() {
            engine.submit(JobSpec::main(format!("job-{i}"), main_config(seed)));
        }
        let report = engine.run(stream).unwrap();
        report
            .jobs
            .into_iter()
            .map(|j| j.into_estimation())
            .collect()
    })
}

fn assert_bits(actual: &TriangleEstimation, expected: &TriangleEstimation, what: &str) {
    assert_eq!(
        actual.estimate.to_bits(),
        expected.estimate.to_bits(),
        "{what}: estimate"
    );
    assert_eq!(
        actual.copy_estimates, expected.copy_estimates,
        "{what}: copy estimates"
    );
}

#[test]
fn zero_deadline_fails_only_its_job_on_every_tier() {
    let stream = workload();
    let reference = clean_reference(&stream, &[11, 12]);
    quiesced(|| {
        for fused in [true, false] {
            for workers in [1usize, 2, 4] {
                let mut engine = engine(workers, fused);
                engine.submit(JobSpec::main("healthy", main_config(11)));
                engine.submit(JobSpec::main("late", main_config(12)).deadline(Duration::ZERO));
                let report = engine.run(&stream).unwrap();
                let what = format!("fused={fused} workers={workers}");
                assert!(report.jobs[0].is_ok(), "{what}: healthy job failed");
                assert_bits(report.jobs[0].estimation(), &reference[0], &what);
                // An already-expired deadline cuts the job before any
                // pass completes, on both tiers.
                assert!(
                    matches!(
                        report.jobs[1].error(),
                        Some(EngineError::DeadlineExceeded {
                            completed_passes: 0
                        })
                    ),
                    "{what}: expected DeadlineExceeded(0), got {:?}",
                    report.jobs[1].error()
                );
                assert_eq!(report.stats.jobs_failed, 1, "{what}");
                if fused {
                    // Both copies of the late job left the cohort.
                    assert_eq!(report.stats.copies_evicted, 2, "{what}");
                } else {
                    assert_eq!(report.stats.copies_evicted, 0, "{what}");
                }
            }
        }
    });
}

#[test]
fn cancelled_token_cuts_every_job_and_reset_restores_the_engine() {
    let stream = workload();
    let reference = clean_reference(&stream, &[11]);
    quiesced(|| {
        for fused in [true, false] {
            let mut engine = engine(2, fused);
            let token = engine.cancel_token();
            token.cancel();
            engine.submit(JobSpec::main("a", main_config(11)));
            engine.submit(JobSpec::main("b", main_config(12)));
            let report = engine.run(&stream).unwrap();
            let what = format!("fused={fused}");
            for job in &report.jobs {
                assert!(
                    matches!(job.error(), Some(EngineError::Cancelled { .. })),
                    "{what}: expected Cancelled, got {:?}",
                    job.error()
                );
            }
            assert_eq!(report.stats.jobs_failed, 2, "{what}");
            // Nothing was streamed: every job was cut before its sweeps.
            assert_eq!(report.stats.sweeps_executed, 0, "{what}");

            // The token is sticky until reset; afterwards the same engine
            // runs normally and reproduces the clean reference.
            token.reset();
            engine.submit(JobSpec::main("after-reset", main_config(11)));
            let report = engine.run(&stream).unwrap();
            assert!(report.jobs[0].is_ok(), "{what}: post-reset run failed");
            assert_bits(report.jobs[0].estimation(), &reference[0], &what);
        }
    });
}

/// A baseline that always panics: the simplest hostile job, available
/// without the injection feature.
struct PanickingCounter;

impl StreamingTriangleCounter for PanickingCounter {
    fn name(&self) -> &'static str {
        "panicking"
    }

    fn space_bound(&self) -> &'static str {
        "0"
    }

    fn estimate(&self, _stream: &dyn EdgeStream) -> BaselineOutcome {
        panic!("baseline kaboom");
    }
}

/// A baseline that counts nothing but succeeds — scheduled *after* the
/// panicking one to prove the worker that caught the panic keeps claiming
/// tasks.
struct InertCounter;

impl StreamingTriangleCounter for InertCounter {
    fn name(&self) -> &'static str {
        "inert"
    }

    fn space_bound(&self) -> &'static str {
        "0"
    }

    fn estimate(&self, stream: &dyn EdgeStream) -> BaselineOutcome {
        BaselineOutcome {
            estimate: stream.pass().count() as f64,
            passes: 1,
            space: SpaceReport::default(),
        }
    }
}

#[test]
fn panicking_job_is_contained_and_the_worker_survives() {
    let stream = workload();
    let reference = clean_reference(&stream, &[11]);
    quiesced(|| {
        // One worker: the same thread that catches the panic must go on to
        // execute both remaining jobs.
        let mut engine = engine(1, true);
        engine.submit(JobSpec::baseline("boom", Box::new(PanickingCounter)));
        engine.submit(JobSpec::main("healthy", main_config(11)));
        engine.submit(JobSpec::baseline("inert", Box::new(InertCounter)));
        let report = engine.run(&stream).unwrap();
        match report.jobs[0].error() {
            Some(EngineError::Panicked { payload, .. }) => {
                assert!(payload.contains("kaboom"), "payload: {payload}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(report.jobs[1].is_ok());
        assert_bits(
            report.jobs[1].estimation(),
            &reference[0],
            "post-panic main",
        );
        let edges = report.jobs[2].estimation().estimate;
        assert!(edges > 0.0, "inert baseline ran after the panic");
        assert_eq!(report.stats.jobs_failed, 1);
    });
}

#[cfg(feature = "fault-inject")]
mod faulted {
    use super::*;
    use degentri_core::faults::{self, FaultKind, FaultPlan, FaultSite};
    use degentri_core::{main_copy_seed, EstimatorError};
    use degentri_dynamic::{dynamic_copy_seed, DynamicError, DynamicEstimatorConfig};
    use degentri_stream::DynamicMemoryStream;

    /// `MainFinish` fires once per pass per copy with the copy's derived
    /// seed as key on **every** tier, so a targeted rule fails the same
    /// logical job under fused, per-copy, and sharded scheduling alike —
    /// and the survivors must be bit-identical to the clean batch
    /// everywhere.
    #[test]
    fn targeted_finish_fault_fails_the_same_job_on_every_tier() {
        let stream = workload();
        let seeds = [21u64, 22, 23];
        let reference = clean_reference(&stream, &seeds);
        for kind in [FaultKind::Error, FaultKind::Panic] {
            for fused in [true, false] {
                for workers in [1usize, 2, 4] {
                    // Copy 1 of the middle job, at its fourth finish
                    // (pass index 3). A fresh install per run resets the
                    // harness hit counters.
                    let plan = FaultPlan::single(
                        FaultSite::MainFinish,
                        main_copy_seed(seeds[1], 1),
                        3,
                        kind,
                    );
                    let report = faults::with_plan(plan, || {
                        let mut engine = engine(workers, fused);
                        for (i, &seed) in seeds.iter().enumerate() {
                            engine.submit(JobSpec::main(format!("job-{i}"), main_config(seed)));
                        }
                        engine.run(&stream).unwrap()
                    });
                    let what = format!("{kind:?} fused={fused} workers={workers}");
                    match kind {
                        FaultKind::Error => assert!(
                            matches!(
                                report.jobs[1].error(),
                                Some(EngineError::Estimator(EstimatorError::Injected {
                                    site: FaultSite::MainFinish,
                                }))
                            ),
                            "{what}: got {:?}",
                            report.jobs[1].error()
                        ),
                        _ => assert!(
                            matches!(report.jobs[1].error(), Some(EngineError::Panicked { .. })),
                            "{what}: got {:?}",
                            report.jobs[1].error()
                        ),
                    }
                    for i in [0usize, 2] {
                        assert!(report.jobs[i].is_ok(), "{what}: job {i} failed");
                        assert_bits(report.jobs[i].estimation(), &reference[i], &what);
                    }
                    assert_eq!(report.stats.jobs_failed, 1, "{what}");
                    if fused {
                        assert_eq!(report.stats.copies_evicted, 2, "{what}");
                    }
                }
            }
        }
    }

    /// `TaskStart` probes only exist on the per-copy tier; the injected
    /// error is typed and the batchmates are untouched. The same plan
    /// under fused execution never fires.
    #[test]
    fn task_start_injection_cuts_only_per_copy_jobs() {
        let stream = workload();
        let seeds = [21u64, 22, 23];
        let reference = clean_reference(&stream, &seeds);
        let plan = || {
            FaultPlan::single(
                FaultSite::TaskStart,
                main_copy_seed(seeds[1], 0),
                0,
                FaultKind::Error,
            )
        };
        let run = |fused: bool| {
            faults::with_plan(plan(), || {
                let mut engine = engine(2, fused);
                for (i, &seed) in seeds.iter().enumerate() {
                    engine.submit(JobSpec::main(format!("job-{i}"), main_config(seed)));
                }
                engine.run(&stream).unwrap()
            })
        };
        let per_copy = run(false);
        assert!(matches!(
            per_copy.jobs[1].error(),
            Some(EngineError::Estimator(EstimatorError::Injected {
                site: FaultSite::TaskStart,
            }))
        ));
        for i in [0usize, 2] {
            assert_bits(per_copy.jobs[i].estimation(), &reference[i], "per-copy");
        }
        // Fused tier: no TaskStart site, the rule stays dormant.
        let fused = run(true);
        assert_eq!(fused.stats.jobs_failed, 0);
        for (i, clean) in reference.iter().enumerate() {
            assert_bits(fused.jobs[i].estimation(), clean, "fused dormant");
        }
    }

    /// A panic at a fused pass boundary evicts exactly the targeted
    /// group; the union probe structures are rebuilt from the survivors
    /// and their results do not move.
    #[test]
    fn pass_boundary_panic_evicts_only_the_targeted_group() {
        let stream = workload();
        let seeds = [21u64, 22, 23];
        let reference = clean_reference(&stream, &seeds);
        for workers in [1usize, 2, 4] {
            let plan = FaultPlan::single(
                FaultSite::PassBoundary,
                main_copy_seed(seeds[1], 0),
                2,
                FaultKind::Panic,
            );
            let report = faults::with_plan(plan, || {
                let mut engine = engine(workers, true);
                for (i, &seed) in seeds.iter().enumerate() {
                    engine.submit(JobSpec::main(format!("job-{i}"), main_config(seed)));
                }
                engine.run(&stream).unwrap()
            });
            let what = format!("workers={workers}");
            assert!(
                matches!(report.jobs[1].error(), Some(EngineError::Panicked { .. })),
                "{what}: got {:?}",
                report.jobs[1].error()
            );
            assert_eq!(report.stats.copies_evicted, 2, "{what}");
            for i in [0usize, 2] {
                assert_bits(report.jobs[i].estimation(), &reference[i], &what);
            }
        }
    }

    /// An injected delay plus a short deadline: the slowed job dies with
    /// `DeadlineExceeded` and consistent partial accounting, while its
    /// batchmates — which shared the stalled sweeps — finish untouched.
    #[test]
    fn delay_fault_with_deadline_yields_deadline_exceeded() {
        let stream = workload();
        let seeds = [21u64, 22, 23];
        let reference = clean_reference(&stream, &seeds);
        let plan = FaultPlan::single(
            FaultSite::PassBoundary,
            main_copy_seed(seeds[1], 0),
            0,
            FaultKind::DelayMillis(40),
        );
        let report = faults::with_plan(plan, || {
            let mut engine = engine(2, true);
            engine.submit(JobSpec::main("job-0", main_config(seeds[0])));
            engine.submit(
                JobSpec::main("job-1", main_config(seeds[1])).deadline(Duration::from_millis(10)),
            );
            engine.submit(JobSpec::main("job-2", main_config(seeds[2])));
            engine.run(&stream).unwrap()
        });
        match report.jobs[1].error() {
            Some(&EngineError::DeadlineExceeded { completed_passes }) => {
                assert!(completed_passes < 6, "accounting: {completed_passes}");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        for i in [0usize, 2] {
            assert_bits(report.jobs[i].estimation(), &reference[i], "delayed cohort");
        }
    }

    /// Seeded stochastic sweeps: whatever fires wherever it fires — fold
    /// panics (with their per-copy re-execution fallback), finish errors,
    /// delays — every job either fails cleanly or reports an estimation
    /// bit-identical to the fault-free run. No torn results, ever.
    #[test]
    fn seeded_fault_sweeps_never_corrupt_survivors() {
        let stream = workload();
        let seeds = [21u64, 22, 23];
        let reference = clean_reference(&stream, &seeds);
        let faults_before = faults::injected_count();
        let mut failures = 0usize;
        for plan_seed in 1u64..=3 {
            for fused in [true, false] {
                for workers in [1usize, 2, 4] {
                    let report = faults::with_plan(FaultPlan::seeded(plan_seed, 8), || {
                        let mut engine = engine(workers, fused);
                        for (i, &seed) in seeds.iter().enumerate() {
                            engine.submit(JobSpec::main(format!("job-{i}"), main_config(seed)));
                        }
                        engine.run(&stream).unwrap()
                    });
                    let what = format!("plan_seed={plan_seed} fused={fused} workers={workers}");
                    for (i, job) in report.jobs.iter().enumerate() {
                        match job.output() {
                            Some(out) => {
                                assert_bits(&out.estimation, &reference[i], &what);
                            }
                            None => failures += 1,
                        }
                    }
                    assert_eq!(
                        report.stats.jobs_failed,
                        report.jobs.iter().filter(|j| !j.is_ok()).count(),
                        "{what}"
                    );
                }
            }
        }
        // The sweep must actually have exercised the harness.
        assert!(faults::injected_count() > faults_before, "no faults fired");
        assert!(failures > 0, "no job ever failed across the sweep");
    }

    /// The turnstile estimator's containment mirrors the six-pass one:
    /// a `DynamicFinish` fault fails its job on both tiers and the
    /// surviving dynamic jobs stay bit-identical.
    #[test]
    fn dynamic_finish_fault_is_contained_on_both_tiers() {
        let graph = degentri_gen::barabasi_albert(200, 4, 9).unwrap();
        let stream = DynamicMemoryStream::with_churn(&graph, 0.5, 31);
        let config = |seed: u64| {
            DynamicEstimatorConfig::new(4, 80)
                .with_epsilon(0.3)
                .with_copies(2)
                .with_seed(seed)
                .with_max_samples(96)
                .with_rng_mode(RngMode::Counter)
        };
        let reference = quiesced(|| {
            let mut engine = engine(2, true);
            engine.submit(JobSpec::dynamic("a", config(41)));
            engine.submit(JobSpec::dynamic("b", config(42)));
            let report = engine.run_dynamic(&stream).unwrap();
            report
                .jobs
                .into_iter()
                .map(|j| j.into_estimation())
                .collect::<Vec<_>>()
        });
        for fused in [true, false] {
            let plan = FaultPlan::single(
                FaultSite::DynamicFinish,
                dynamic_copy_seed(42, 1),
                1,
                FaultKind::Error,
            );
            let report = faults::with_plan(plan, || {
                let mut engine = engine(2, fused);
                engine.submit(JobSpec::dynamic("a", config(41)));
                engine.submit(JobSpec::dynamic("b", config(42)));
                engine.run_dynamic(&stream).unwrap()
            });
            let what = format!("dynamic fused={fused}");
            assert!(report.jobs[0].is_ok(), "{what}");
            assert_bits(report.jobs[0].estimation(), &reference[0], &what);
            assert!(
                matches!(
                    report.jobs[1].error(),
                    Some(EngineError::Dynamic(DynamicError::Injected {
                        site: FaultSite::DynamicFinish,
                    }))
                ),
                "{what}: got {:?}",
                report.jobs[1].error()
            );
            assert_eq!(report.stats.jobs_failed, 1, "{what}");
        }
    }

    /// Evicting an ideal or dynamic cohort member from the overlapped
    /// one-pool schedule — a mixed main + ideal + dynamic batch over one
    /// edge snapshot — leaves every surviving job bit-identical to the
    /// clean mixed run, at every worker count.
    #[test]
    fn mixed_cohort_member_eviction_leaves_survivors_bit_identical() {
        use degentri_core::ideal_copy_seed;
        let stream = workload();
        let dyn_config = DynamicEstimatorConfig::new(4, 80)
            .with_epsilon(0.3)
            .with_copies(2)
            .with_seed(61)
            .with_max_samples(96)
            .with_rng_mode(RngMode::Counter);
        let submit_all = |engine: &mut Engine| {
            engine.submit(JobSpec::main("main", main_config(51)));
            engine.submit(JobSpec::ideal("ideal", main_config(52)));
            engine.submit(JobSpec::dynamic("dynamic", dyn_config.clone()));
        };
        let reference = quiesced(|| {
            let mut engine = engine(2, true);
            submit_all(&mut engine);
            let report = engine.run(&stream).unwrap();
            report
                .jobs
                .into_iter()
                .map(|j| j.into_estimation())
                .collect::<Vec<_>>()
        });
        // (victim job index, pass-boundary fault key of its copy 0).
        let victims = [
            (1usize, ideal_copy_seed(52, 0)),
            (2usize, dynamic_copy_seed(61, 0)),
        ];
        for (victim, key) in victims {
            for workers in [1usize, 2, 4] {
                let plan = FaultPlan::single(FaultSite::PassBoundary, key, 1, FaultKind::Panic);
                let report = faults::with_plan(plan, || {
                    let mut engine = engine(workers, true);
                    submit_all(&mut engine);
                    engine.run(&stream).unwrap()
                });
                let what = format!("victim={victim} workers={workers}");
                assert!(
                    matches!(
                        report.jobs[victim].error(),
                        Some(EngineError::Panicked { .. })
                    ),
                    "{what}: got {:?}",
                    report.jobs[victim].error()
                );
                assert_eq!(report.stats.jobs_failed, 1, "{what}");
                assert_eq!(report.stats.copies_evicted, 2, "{what}");
                for i in (0..3).filter(|&i| i != victim) {
                    assert!(report.jobs[i].is_ok(), "{what}: job {i} failed");
                    assert_bits(report.jobs[i].estimation(), &reference[i], &what);
                }
            }
        }
    }
}
