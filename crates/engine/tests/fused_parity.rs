//! Fused-vs-unfused bit-identity: the fused pass driver (one sweep per
//! pass stage feeding every copy, with cohort-level union probes) must
//! reproduce per-copy scheduling bit for bit — for both estimators,
//! across copies × shards × workers, and for any cohort grouping.

use degentri_core::{
    main_copy_seed, EstimatorConfig, MainCopyStages, MainStageAcc, RngMode, TriangleEstimation,
};
use degentri_dynamic::{dynamic_copy_seed, DynamicCopyStages, DynamicEstimatorConfig};
use degentri_engine::{Engine, EngineConfig, JobSpec};
use degentri_graph::Edge;
use degentri_stream::{
    DynamicMemoryStream, EdgeUpdate, MemoryStream, ShardedSnapshot, Snapshot, StreamOrder,
};
use proptest::prelude::*;

fn main_config(copies: usize, seed: u64) -> EstimatorConfig {
    EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(5)
        .triangle_lower_bound(600)
        .r_constant(8.0)
        .inner_constant(16.0)
        .assignment_constant(6.0)
        .copies(copies)
        .seed(seed)
        .rng_mode(RngMode::Counter)
        .try_build()
        .unwrap()
}

fn workload() -> MemoryStream {
    let graph = degentri_gen::barabasi_albert(500, 5, 3).unwrap();
    MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(4))
}

fn dynamic_workload() -> (DynamicMemoryStream, DynamicEstimatorConfig) {
    let graph = degentri_gen::barabasi_albert(200, 4, 9).unwrap();
    let stream = DynamicMemoryStream::with_churn(&graph, 0.5, 31);
    let config = DynamicEstimatorConfig::new(4, 80)
        .with_epsilon(0.3)
        .with_seed(13)
        .with_max_samples(96)
        .with_rng_mode(RngMode::Counter);
    (stream, config)
}

/// A miniature fused driver with an explicit shard/worker plan — the
/// test-side twin of the engine's internal cohort driver, exercising the
/// public stage-object API (`plan_cohort` / `fold_cohort` / `finish_pass`)
/// at every sharding.
fn drive_main_cohort(
    stream: &MemoryStream,
    configs: &[&EstimatorConfig],
    shards: usize,
    workers: usize,
) -> Vec<f64> {
    let edges: &[Edge] = stream.edges();
    let n = degentri_stream::EdgeStream::num_vertices(stream);
    let mut copies: Vec<MainCopyStages> = Vec::new();
    for config in configs {
        for copy in 0..config.copies {
            copies.push(
                MainCopyStages::new(config, edges.len(), n, main_copy_seed(config.seed, copy))
                    .unwrap(),
            );
        }
    }
    let mut sweeps = 0u32;
    while copies.iter().any(|c| !c.finished()) {
        sweeps += 1;
        let plan = MainCopyStages::plan_cohort(&copies);
        let view: ShardedSnapshot<'_, Edge> = ShardedSnapshot::new(n, edges, shards);
        let copies_ref = &copies;
        let plan_ref = &plan;
        let per_shard: Vec<Vec<MainStageAcc>> = view.pass_sharded(workers, |s, slice| {
            let mut accs: Vec<MainStageAcc> = copies_ref.iter().map(|c| c.begin_pass()).collect();
            let mut scratch = degentri_core::MainCohortScratch::default();
            MainCopyStages::fold_cohort(
                plan_ref,
                copies_ref,
                &mut accs,
                &mut scratch,
                view.shard_range(s).start as u64,
                slice,
            );
            accs
        });
        // Transpose shard-major to copy-major, preserving shard order.
        let mut per_copy: Vec<Vec<MainStageAcc>> = (0..copies.len()).map(|_| Vec::new()).collect();
        for shard_accs in per_shard {
            for (k, acc) in shard_accs.into_iter().enumerate() {
                per_copy[k].push(acc);
            }
        }
        drop(plan);
        for (copy, accs) in copies.iter_mut().zip(per_copy) {
            copy.finish_pass(accs).unwrap();
        }
    }
    assert_eq!(sweeps, MainCopyStages::PASSES, "one sweep per pass stage");
    copies
        .into_iter()
        .map(|c| c.finish().unwrap().estimate)
        .collect()
}

#[test]
fn fused_cohorts_are_bit_identical_across_copies_shards_and_workers() {
    let stream = workload();
    for &copies in &[1usize, 4, 9] {
        let config = main_config(copies, 11);
        // Per-copy reference: the sequential stage driver.
        let reference: Vec<f64> = (0..copies)
            .map(|copy| {
                degentri_core::run_main_copy(&stream, &config, copy)
                    .unwrap()
                    .estimate
            })
            .collect();
        for shards in 1..=8usize {
            for &workers in &[1usize, 2, 4] {
                let fused = drive_main_cohort(&stream, &[&config], shards, workers);
                let fused_bits: Vec<u64> = fused.iter().map(|e| e.to_bits()).collect();
                let reference_bits: Vec<u64> = reference.iter().map(|e| e.to_bits()).collect();
                assert_eq!(
                    fused_bits, reference_bits,
                    "copies {copies} shards {shards} workers {workers}"
                );
            }
        }
    }
}

#[test]
fn fused_dynamic_cohorts_are_bit_identical_across_copies_shards_and_workers() {
    let (stream, base_config) = dynamic_workload();
    let updates: &[EdgeUpdate] = stream.updates();
    let n = degentri_stream::DynamicEdgeStream::num_vertices(&stream);
    for &copies in &[1usize, 4, 9] {
        let config = base_config.clone().with_copies(copies);
        let reference: Vec<f64> = (0..copies)
            .map(|copy| {
                degentri_dynamic::run_dynamic_copy(&stream, &config, copy)
                    .unwrap()
                    .estimate
            })
            .collect();
        for shards in 1..=8usize {
            for &workers in &[1usize, 2, 4] {
                let mut cohort: Vec<DynamicCopyStages> = (0..copies)
                    .map(|copy| {
                        DynamicCopyStages::new(
                            &config,
                            updates.len(),
                            n,
                            dynamic_copy_seed(config.seed, copy),
                        )
                        .unwrap()
                    })
                    .collect();
                while cohort.iter().any(|c| !c.finished()) {
                    let view: ShardedSnapshot<'_, EdgeUpdate> =
                        ShardedSnapshot::new(n, updates, shards);
                    let cohort_ref = &cohort;
                    let per_shard = view.pass_sharded(workers, |s, slice| {
                        let mut accs: Vec<_> = cohort_ref.iter().map(|c| c.begin_pass()).collect();
                        for (copy, acc) in cohort_ref.iter().zip(accs.iter_mut()) {
                            copy.fold(acc, view.shard_range(s).start as u64, slice);
                        }
                        accs
                    });
                    let mut per_copy: Vec<Vec<_>> = (0..cohort.len()).map(|_| Vec::new()).collect();
                    for shard_accs in per_shard {
                        for (k, acc) in shard_accs.into_iter().enumerate() {
                            per_copy[k].push(acc);
                        }
                    }
                    for (copy, accs) in cohort.iter_mut().zip(per_copy) {
                        copy.finish_pass(accs).unwrap();
                    }
                }
                let fused: Vec<u64> = cohort
                    .into_iter()
                    .map(|c| c.finish().unwrap().estimate.to_bits())
                    .collect();
                let reference_bits: Vec<u64> = reference.iter().map(|e| e.to_bits()).collect();
                assert_eq!(
                    fused, reference_bits,
                    "copies {copies} shards {shards} workers {workers}"
                );
            }
        }
    }
}

#[test]
fn engine_fused_path_matches_per_copy_path_for_both_estimators() {
    let stream = workload();
    let (dyn_stream, dyn_config) = dynamic_workload();
    for &copies in &[1usize, 4, 9] {
        for &workers in &[1usize, 2, 4] {
            let config = main_config(copies, 7);
            let run = |fused: bool| -> TriangleEstimation {
                let mut engine = Engine::new(
                    EngineConfig::builder()
                        .workers(workers)
                        .fused_execution(fused)
                        .try_build()
                        .unwrap(),
                );
                engine.submit(JobSpec::main("main", config.clone()));
                engine
                    .run(&stream)
                    .unwrap()
                    .jobs
                    .remove(0)
                    .into_estimation()
            };
            let fused = run(true);
            let per_copy = run(false);
            assert_eq!(fused.copy_estimates, per_copy.copy_estimates);
            assert_eq!(fused.estimate.to_bits(), per_copy.estimate.to_bits());

            let dyn_config = dyn_config.clone().with_copies(copies);
            let run_dyn = |fused: bool| {
                let mut engine = Engine::new(
                    EngineConfig::builder()
                        .workers(workers)
                        .fused_execution(fused)
                        .try_build()
                        .unwrap(),
                );
                engine.submit(JobSpec::dynamic("dyn", dyn_config.clone()));
                engine.run_dynamic(&dyn_stream).unwrap().jobs.remove(0)
            };
            let fused = run_dyn(true);
            let per_copy = run_dyn(false);
            assert_eq!(
                fused.estimation().copy_estimates,
                per_copy.estimation().copy_estimates
            );
            assert_eq!(
                fused.estimation().estimate.to_bits(),
                per_copy.estimation().estimate.to_bits()
            );
        }
    }
}

#[test]
fn fused_sweep_accounting_counts_physical_traversals() {
    let stream = workload();
    let m = degentri_stream::EdgeStream::num_edges(&stream) as u64;
    let config = main_config(4, 3);
    let mut engine = Engine::with_workers(1);
    engine.submit(JobSpec::main("a", config.clone()));
    engine.submit(JobSpec::main("b", config.clone().clone()));
    let report = engine.run(&stream).unwrap();
    // Two four-copy jobs fuse into one cohort: six shared sweeps total,
    // not 2 × 4 × 6.
    assert_eq!(report.stats.fused_cohorts, 1);
    assert_eq!(report.stats.sweeps_executed, 6);
    assert_eq!(report.stats.edges_streamed, 6 * m);
    assert_eq!(report.stats.tasks, 8);

    // The snapshot's own pass counter agrees with the engine's sweep
    // accounting: a fused run over a Snapshot reads the slice six times.
    let snapshot = Snapshot::of_edges(&stream).unwrap();
    let mut engine = Engine::with_workers(1);
    engine.submit(JobSpec::main("c", config));
    let report = engine.run_snapshot(&snapshot).unwrap();
    assert_eq!(report.stats.sweeps_executed, 6);

    // Per-copy scheduling of the same jobs performs copies × passes.
    let (dyn_stream, dyn_config) = dynamic_workload();
    let mut engine = Engine::with_workers(1);
    engine.submit(JobSpec::dynamic("d", dyn_config.clone().with_copies(3)));
    let report = engine.run_dynamic(&dyn_stream).unwrap();
    assert_eq!(report.stats.fused_cohorts, 1);
    assert_eq!(report.stats.sweeps_executed, 4);
    assert_eq!(
        report.stats.edges_streamed,
        4 * degentri_stream::DynamicEdgeStream::num_updates(&dyn_stream) as u64
    );
}

#[test]
fn mixed_batches_run_fused_and_per_copy_tiers_together() {
    let stream = workload();
    let m = degentri_stream::EdgeStream::num_edges(&stream) as u64;
    let counter = main_config(3, 9);
    let mut sequential = counter.clone();
    sequential.rng_mode = RngMode::Sequential;
    // The engine respects each job's own mode here: the counter job fuses
    // every pass; the sequential job joins the cohort for its
    // order-insensitive passes and runs only its private RNG passes
    // per-copy. Both match their standalone runs.
    let mut engine = Engine::new(
        EngineConfig::builder()
            .workers(2)
            .job_rng_mode()
            .try_build()
            .unwrap(),
    );
    engine.submit(JobSpec::main("counter", counter.clone()));
    engine.submit(JobSpec::main("sequential", sequential.clone()));
    let report = engine.run(&stream).unwrap();
    assert_eq!(report.stats.fused_cohorts, 1);
    // 6 shared cohort sweeps (the sequential job rides the
    // order-insensitive passes 1/3/5) + 3 sequential copies × 3 private
    // RNG passes.
    assert_eq!(report.stats.sweeps_executed, 6 + 9);
    assert_eq!(report.stats.edges_streamed, (6 + 9) * m);
    let counter_direct = degentri_core::estimate_triangles(&stream, &counter).unwrap();
    let sequential_direct = degentri_core::estimate_triangles(&stream, &sequential).unwrap();
    assert_eq!(
        report.jobs[0].estimation().copy_estimates,
        counter_direct.copy_estimates
    );
    assert_eq!(
        report.jobs[1].estimation().copy_estimates,
        sequential_direct.copy_estimates
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random cohort groupings — any way of packing jobs (with any copy
    /// counts and seeds) into one engine run — never change any copy's
    /// estimate: every job matches its standalone sequential runner.
    #[test]
    fn random_cohort_groupings_never_change_any_copys_estimate(
        job_shapes in proptest::collection::vec((1usize..5, 0u64..1000), 1..4),
        workers in 1usize..5,
    ) {
        let stream = workload();
        let mut engine = Engine::new(
            EngineConfig::builder()
                .workers(workers)
                .try_build()
                .unwrap(),
        );
        let configs: Vec<EstimatorConfig> = job_shapes
            .iter()
            .map(|&(copies, seed)| main_config(copies, seed))
            .collect();
        for (i, config) in configs.iter().enumerate() {
            engine.submit(JobSpec::main(format!("job-{i}"), config.clone()));
        }
        let report = engine.run(&stream).unwrap();
        prop_assert_eq!(report.stats.fused_cohorts, 1);
        for (result, config) in report.jobs.iter().zip(&configs) {
            let direct = degentri_core::estimate_triangles(&stream, config).unwrap();
            prop_assert_eq!(&result.estimation().copy_estimates, &direct.copy_estimates);
            prop_assert_eq!(
                result.estimation().estimate.to_bits(),
                direct.estimate.to_bits()
            );
        }
    }
}
