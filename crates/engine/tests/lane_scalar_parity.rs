//! Lane-batched vs scalar bit-identity: the SIMD-width fold kernels
//! (`MainCopyStages::fold` passes 2/4/6, the branchless cohort fan-out,
//! the dynamic estimator's `L0Bank` batched kernel) must reproduce the
//! scalar reference folds (`fold_scalar`, `fold_cohort_scalar`) bit for
//! bit — for both estimators, at every batch size (including chunk
//! lengths that are not a multiple of the lane width, exercising the
//! scalar tails), across shards × workers, and for any cohort grouping.

use degentri_core::{main_copy_seed, EstimatorConfig, MainCopyStages, MainStageAcc, RngMode};
use degentri_dynamic::{dynamic_copy_seed, DynamicCopyStages, DynamicEstimatorConfig};
use degentri_graph::Edge;
use degentri_stream::{
    DynamicMemoryStream, EdgeUpdate, MemoryStream, ShardedSnapshot, StreamOrder,
};
use proptest::prelude::*;

const LANES: usize = degentri_core::lanes::LANES;

fn main_config(copies: usize, seed: u64) -> EstimatorConfig {
    EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(5)
        .triangle_lower_bound(600)
        .r_constant(8.0)
        .inner_constant(16.0)
        .assignment_constant(6.0)
        .copies(copies)
        .seed(seed)
        .rng_mode(RngMode::Counter)
        .try_build()
        .unwrap()
}

fn workload() -> MemoryStream {
    let graph = degentri_gen::barabasi_albert(500, 5, 3).unwrap();
    MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(4))
}

fn dynamic_workload() -> (DynamicMemoryStream, DynamicEstimatorConfig) {
    let graph = degentri_gen::barabasi_albert(200, 4, 9).unwrap();
    let stream = DynamicMemoryStream::with_churn(&graph, 0.5, 31);
    let config = DynamicEstimatorConfig::new(4, 80)
        .with_epsilon(0.3)
        .with_seed(13)
        .with_max_samples(96)
        .with_rng_mode(RngMode::Counter);
    (stream, config)
}

/// Drives one main-estimator copy pass by pass with an explicit batch
/// size, through either the lane-batched fold or the scalar reference.
fn drive_main_copy(
    stream: &MemoryStream,
    config: &EstimatorConfig,
    copy: usize,
    batch: usize,
    scalar: bool,
) -> (f64, u64) {
    let edges: &[Edge] = stream.edges();
    let n = degentri_stream::EdgeStream::num_vertices(stream);
    let mut stages =
        MainCopyStages::new(config, edges.len(), n, main_copy_seed(config.seed, copy)).unwrap();
    while !stages.finished() {
        let mut acc = stages.begin_pass();
        let mut pos = 0u64;
        for chunk in edges.chunks(batch) {
            if scalar {
                stages.fold_scalar(&mut acc, pos, chunk);
            } else {
                stages.fold(&mut acc, pos, chunk);
            }
            pos += chunk.len() as u64;
        }
        stages.finish_pass(vec![acc]).unwrap();
    }
    let batches: u64 = stages.pass_tallies().iter().map(|t| t.kernel_batches).sum();
    (stages.finish().unwrap().estimate, batches)
}

/// Drives one dynamic-estimator copy the same way.
fn drive_dynamic_copy(
    stream: &DynamicMemoryStream,
    config: &DynamicEstimatorConfig,
    copy: usize,
    batch: usize,
    scalar: bool,
) -> (f64, u64) {
    let updates: &[EdgeUpdate] = stream.updates();
    let n = degentri_stream::DynamicEdgeStream::num_vertices(stream);
    let mut stages = DynamicCopyStages::new(
        config,
        updates.len(),
        n,
        dynamic_copy_seed(config.seed, copy),
    )
    .unwrap();
    while !stages.finished() {
        let mut acc = stages.begin_pass();
        let mut pos = 0u64;
        for chunk in updates.chunks(batch) {
            if scalar {
                stages.fold_scalar(&mut acc, pos, chunk);
            } else {
                stages.fold(&mut acc, pos, chunk);
            }
            pos += chunk.len() as u64;
        }
        stages.finish_pass(vec![acc]).unwrap();
    }
    let batches: u64 = stages.pass_tallies().iter().map(|t| t.kernel_batches).sum();
    (stages.finish().unwrap().estimate, batches)
}

/// Drives a cohort of main-estimator copies through `fold_cohort` (lane)
/// or `fold_cohort_scalar` (reference) at an explicit sharding.
fn drive_main_cohort(
    stream: &MemoryStream,
    configs: &[&EstimatorConfig],
    shards: usize,
    workers: usize,
    scalar: bool,
) -> Vec<f64> {
    let edges: &[Edge] = stream.edges();
    let n = degentri_stream::EdgeStream::num_vertices(stream);
    let mut copies: Vec<MainCopyStages> = Vec::new();
    for config in configs {
        for copy in 0..config.copies {
            copies.push(
                MainCopyStages::new(config, edges.len(), n, main_copy_seed(config.seed, copy))
                    .unwrap(),
            );
        }
    }
    while copies.iter().any(|c| !c.finished()) {
        let plan = MainCopyStages::plan_cohort(&copies);
        let view: ShardedSnapshot<'_, Edge> = ShardedSnapshot::new(n, edges, shards);
        let copies_ref = &copies;
        let plan_ref = &plan;
        let per_shard: Vec<Vec<MainStageAcc>> = view.pass_sharded(workers, |s, slice| {
            let mut accs: Vec<MainStageAcc> = copies_ref.iter().map(|c| c.begin_pass()).collect();
            let pos = view.shard_range(s).start as u64;
            if scalar {
                MainCopyStages::fold_cohort_scalar(plan_ref, copies_ref, &mut accs, pos, slice);
            } else {
                let mut scratch = degentri_core::MainCohortScratch::default();
                MainCopyStages::fold_cohort(
                    plan_ref,
                    copies_ref,
                    &mut accs,
                    &mut scratch,
                    pos,
                    slice,
                );
            }
            accs
        });
        let mut per_copy: Vec<Vec<MainStageAcc>> = (0..copies.len()).map(|_| Vec::new()).collect();
        for shard_accs in per_shard {
            for (k, acc) in shard_accs.into_iter().enumerate() {
                per_copy[k].push(acc);
            }
        }
        drop(plan);
        for (copy, accs) in copies.iter_mut().zip(per_copy) {
            copy.finish_pass(accs).unwrap();
        }
    }
    copies
        .into_iter()
        .map(|c| c.finish().unwrap().estimate)
        .collect()
}

#[test]
fn main_lane_folds_match_scalar_folds_at_every_batch_size() {
    let stream = workload();
    let config = main_config(2, 11);
    // Scalar reference at one batch size; batching never changes a linear
    // fold, so every lane run must match it — including batch sizes that
    // leave ragged lane tails (≢ 0 mod LANES).
    let reference: Vec<(f64, u64)> = (0..2)
        .map(|copy| drive_main_copy(&stream, &config, copy, 1024, true))
        .collect();
    for &batch in &[1usize, 3, LANES - 1, LANES, LANES + 1, 13, 64, 1000] {
        for (copy, anchor) in reference.iter().enumerate() {
            let (lane, batches) = drive_main_copy(&stream, &config, copy, batch, false);
            assert_eq!(
                lane.to_bits(),
                anchor.0.to_bits(),
                "copy {copy} batch {batch}"
            );
            // The lane path actually took the batched kernel (except at
            // batch sizes below one full lane block).
            if batch >= LANES {
                assert!(batches > 0, "batch {batch} reported no kernel batches");
            }
        }
        // The scalar reference itself is batch-insensitive too.
        let (scalar, scalar_batches) = drive_main_copy(&stream, &config, 0, batch, true);
        assert_eq!(scalar.to_bits(), reference[0].0.to_bits());
        assert_eq!(scalar_batches, 0, "scalar path must report no batches");
    }
}

#[test]
fn cohort_fan_out_matches_scalar_cohort_across_shards_workers_and_groupings() {
    let stream = workload();
    let single = main_config(4, 21);
    let grouped_a = main_config(2, 22);
    let grouped_b = main_config(3, 23);
    let groupings: Vec<Vec<&EstimatorConfig>> = vec![vec![&single], vec![&grouped_a, &grouped_b]];
    for configs in &groupings {
        let reference = drive_main_cohort(&stream, configs, 1, 1, true);
        let reference_bits: Vec<u64> = reference.iter().map(|e| e.to_bits()).collect();
        for shards in 1..=8usize {
            for &workers in &[1usize, 2, 4] {
                let lane = drive_main_cohort(&stream, configs, shards, workers, false);
                let lane_bits: Vec<u64> = lane.iter().map(|e| e.to_bits()).collect();
                assert_eq!(
                    lane_bits,
                    reference_bits,
                    "jobs {} shards {shards} workers {workers}",
                    configs.len()
                );
                let scalar = drive_main_cohort(&stream, configs, shards, workers, true);
                let scalar_bits: Vec<u64> = scalar.iter().map(|e| e.to_bits()).collect();
                assert_eq!(
                    scalar_bits,
                    reference_bits,
                    "scalar cohort jobs {} shards {shards} workers {workers}",
                    configs.len()
                );
            }
        }
    }
}

#[test]
fn dynamic_bank_kernel_matches_scalar_bank_at_every_batch_size() {
    let (stream, config) = dynamic_workload();
    let reference: Vec<(f64, u64)> = (0..2)
        .map(|copy| drive_dynamic_copy(&stream, &config, copy, 512, true))
        .collect();
    assert_eq!(reference[0].1, 0, "scalar path must report no batches");
    for &batch in &[1usize, LANES - 1, LANES + 3, 57, 512] {
        for (copy, anchor) in reference.iter().enumerate() {
            let (lane, batches) = drive_dynamic_copy(&stream, &config, copy, batch, false);
            assert_eq!(
                lane.to_bits(),
                anchor.0.to_bits(),
                "copy {copy} batch {batch}"
            );
            // Every update runs the bank as one batched kernel.
            assert!(batches > 0, "batch {batch} reported no kernel batches");
        }
    }
}

#[test]
fn dynamic_bank_kernel_matches_scalar_bank_across_shards_and_workers() {
    let (stream, config) = dynamic_workload();
    let updates: &[EdgeUpdate] = stream.updates();
    let n = degentri_stream::DynamicEdgeStream::num_vertices(&stream);
    let (reference, _) = drive_dynamic_copy(&stream, &config, 0, 512, true);
    for shards in 1..=8usize {
        for &workers in &[1usize, 2, 4] {
            let mut stages = DynamicCopyStages::new(
                &config,
                updates.len(),
                n,
                dynamic_copy_seed(config.seed, 0),
            )
            .unwrap();
            while !stages.finished() {
                let view: ShardedSnapshot<'_, EdgeUpdate> =
                    ShardedSnapshot::new(n, updates, shards);
                let stages_ref = &stages;
                let per_shard = view.pass_sharded(workers, |s, slice| {
                    let mut acc = stages_ref.begin_pass();
                    stages_ref.fold(&mut acc, view.shard_range(s).start as u64, slice);
                    vec![acc]
                });
                let accs = per_shard.into_iter().flatten().collect();
                stages.finish_pass(accs).unwrap();
            }
            let lane = stages.finish().unwrap().estimate;
            assert_eq!(
                lane.to_bits(),
                reference.to_bits(),
                "shards {shards} workers {workers}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ragged chunkings — any batch size, in particular ones that leave a
    /// tail shorter than a lane block on every chunk — never change the
    /// lane-batched results of either estimator.
    #[test]
    fn ragged_chunk_tails_never_change_results(batch in 1usize..200, seed in 0u64..1000) {
        let stream = workload();
        let config = main_config(1, seed);
        let (reference, _) = drive_main_copy(&stream, &config, 0, 1024, true);
        let (lane, _) = drive_main_copy(&stream, &config, 0, batch, false);
        prop_assert_eq!(lane.to_bits(), reference.to_bits());

        let (dyn_stream, dyn_config) = dynamic_workload();
        let dyn_config = dyn_config.with_seed(seed);
        let (dyn_reference, _) = drive_dynamic_copy(&dyn_stream, &dyn_config, 0, 512, true);
        let (dyn_lane, _) = drive_dynamic_copy(&dyn_stream, &dyn_config, 0, batch, false);
        prop_assert_eq!(dyn_lane.to_bits(), dyn_reference.to_bits());
    }
}
