//! Mixed-kind batch parity: one engine run carrying main (counter *and*
//! sequential regime), ideal, and dynamic jobs over a single edge snapshot
//! must reproduce every job's isolated run bit for bit — the fusion matrix
//! (kind × rng regime) only changes how many physical sweeps the batch
//! costs, never any copy's estimate.

use degentri_core::{
    estimate_triangles, estimate_triangles_with_oracle, EstimatorConfig, ExactDegreeOracle,
    RngMode, TriangleEstimation,
};
use degentri_dynamic::{DynamicEstimatorConfig, DynamicTriangleEstimator};
use degentri_engine::{Engine, EngineConfig, JobSpec};
use degentri_stream::{DynamicMemoryStream, EdgeStream, EdgeUpdate, MemoryStream, StreamOrder};
use proptest::prelude::*;

fn workload() -> MemoryStream {
    let graph = degentri_gen::barabasi_albert(400, 5, 17).unwrap();
    MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(6))
}

fn main_config(copies: usize, seed: u64, mode: RngMode) -> EstimatorConfig {
    EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(5)
        .triangle_lower_bound(500)
        .r_constant(8.0)
        .inner_constant(16.0)
        .assignment_constant(6.0)
        .copies(copies)
        .seed(seed)
        .rng_mode(mode)
        .try_build()
        .unwrap()
}

fn dyn_config(copies: usize, seed: u64) -> DynamicEstimatorConfig {
    DynamicEstimatorConfig::new(5, 200)
        .with_epsilon(0.3)
        .with_copies(copies)
        .with_seed(seed)
        .with_max_samples(96)
        .with_rng_mode(RngMode::Counter)
}

/// The standalone reference for a dynamic job scheduled on an edge
/// snapshot: the estimator fed the same edges as an insert-only update
/// stream.
fn dynamic_reference(
    stream: &MemoryStream,
    config: &DynamicEstimatorConfig,
) -> degentri_dynamic::DynamicOutcome {
    let inserts = stream
        .edges()
        .iter()
        .map(|&edge| EdgeUpdate::insert(edge))
        .collect();
    let insert_stream =
        DynamicMemoryStream::from_updates(EdgeStream::num_vertices(stream), inserts);
    DynamicTriangleEstimator::new(config.clone())
        .run(&insert_stream)
        .unwrap()
}

fn assert_estimation_eq(actual: &TriangleEstimation, expected: &TriangleEstimation, what: &str) {
    assert_eq!(
        actual.copy_estimates, expected.copy_estimates,
        "{what}: copy estimates"
    );
    assert_eq!(
        actual.estimate.to_bits(),
        expected.estimate.to_bits(),
        "{what}: aggregate"
    );
}

/// All four matrix cells in one batch, across worker counts and ragged
/// chunk boundaries: every job is bit-identical to its isolated run, and
/// the batch's physical sweep count collapses far below the unfused sum.
#[test]
fn mixed_kind_batches_match_isolated_runs_bit_for_bit() {
    let stream = workload();
    let counter = main_config(3, 41, RngMode::Counter);
    let sequential = main_config(3, 42, RngMode::Sequential);
    let ideal = main_config(3, 43, RngMode::Counter);
    let dynamic = dyn_config(3, 44);

    // Isolated references, computed once: the public sequential-runner
    // entry points (scheduling must never change what they produce).
    let counter_ref = estimate_triangles(&stream, &counter).unwrap();
    let sequential_ref = estimate_triangles(&stream, &sequential).unwrap();
    let oracle = ExactDegreeOracle::build(&stream);
    let ideal_ref = estimate_triangles_with_oracle(&stream, &oracle, &ideal).unwrap();
    let dynamic_ref = dynamic_reference(&stream, &dynamic);

    for workers in [1usize, 2, 4] {
        for batch in [383usize, 4096] {
            let mut engine = Engine::new(
                EngineConfig::builder()
                    .workers(workers)
                    .batch_size(batch)
                    .job_rng_mode()
                    .try_build()
                    .unwrap(),
            );
            engine.submit(JobSpec::main("counter", counter.clone()));
            engine.submit(JobSpec::main("sequential", sequential.clone()));
            engine.submit(JobSpec::ideal("ideal", ideal.clone()));
            engine.submit(JobSpec::dynamic("dynamic", dynamic.clone()));
            let report = engine.run(&stream).unwrap();
            let what = format!("workers {workers} batch {batch}");

            assert_estimation_eq(report.jobs[0].estimation(), &counter_ref, &what);
            assert_estimation_eq(report.jobs[1].estimation(), &sequential_ref, &what);
            assert_estimation_eq(report.jobs[2].estimation(), &ideal_ref, &what);
            assert_eq!(
                report.jobs[3].estimation().copy_estimates,
                dynamic_ref.copy_estimates,
                "{what}: dynamic copies"
            );
            assert_eq!(
                report.jobs[3].estimation().estimate.to_bits(),
                dynamic_ref.estimate.to_bits(),
                "{what}: dynamic aggregate"
            );

            // Sweep accounting: 6 shared six-pass sweeps serve the counter
            // job entirely, the ideal job's 3 passes, and the sequential
            // job's order-insensitive passes 1/3/5; the sequential job adds
            // 3 private RNG passes per copy, the dynamic cohort adds its 4
            // turnstile sweeps, and the oracle stats pass adds 1.
            let fused_total = 6 + 3 * 3 + 4 + 1;
            let unfused_total = 3 * 6 + 3 * 6 + 3 * 3 + 3 * 4 + 1;
            assert_eq!(report.stats.sweeps_executed, fused_total, "{what}");
            assert!(
                report.stats.sweeps_executed < unfused_total,
                "{what}: fused batch must beat the unfused sum"
            );
            assert_eq!(report.stats.fused_cohorts, 2, "{what}: edge + turnstile");
            assert!(report.stats.fused_sweeps > 0, "{what}");
            assert_eq!(
                report.stats.fused_sweeps + report.stats.per_copy_sweeps,
                report.stats.sweeps_executed,
                "{what}: tier accounting must partition the sweeps"
            );
        }
    }
}

/// Turning fusion off entirely must not change any estimate either — the
/// matrix cells degrade to per-copy tasks with identical results.
#[test]
fn unfused_mixed_batch_matches_fused_results() {
    let stream = workload();
    let counter = main_config(2, 7, RngMode::Counter);
    let dynamic = dyn_config(2, 8);

    let run = |fused: bool| {
        let mut engine = Engine::new(
            EngineConfig::builder()
                .workers(2)
                .fused_execution(fused)
                .try_build()
                .unwrap(),
        );
        engine.submit(JobSpec::main("main", counter.clone()));
        engine.submit(JobSpec::dynamic("dynamic", dynamic.clone()));
        engine.run(&stream).unwrap()
    };
    let fused = run(true);
    let unfused = run(false);
    for (f, u) in fused.jobs.iter().zip(unfused.jobs.iter()) {
        assert_eq!(
            f.estimation().copy_estimates,
            u.estimation().copy_estimates,
            "{}",
            f.label
        );
    }
    assert!(fused.stats.sweeps_executed < unfused.stats.sweeps_executed);
    assert_eq!(unfused.stats.fused_sweeps, 0);
    assert_eq!(unfused.stats.per_copy_sweeps, unfused.stats.sweeps_executed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random mixed-kind cohort groupings with ragged pass budgets (ideal
    /// members retire after 3 passes, dynamic after 4, sequential members
    /// only attend half the stages) never change any copy's estimate.
    #[test]
    fn ragged_mixed_groupings_never_change_any_copys_estimate(
        job_shapes in proptest::collection::vec((0usize..4, 1usize..4, 0u64..1000), 1..5),
        workers in 1usize..5,
    ) {
        let stream = workload();
        let mut engine = Engine::new(
            EngineConfig::builder()
                .workers(workers)
                .job_rng_mode()
                .try_build()
                .unwrap(),
        );
        for (i, &(kind, copies, seed)) in job_shapes.iter().enumerate() {
            let label = format!("job-{i}");
            let _ = match kind {
                0 => engine.submit(JobSpec::main(label, main_config(copies, seed, RngMode::Counter))),
                1 => engine.submit(JobSpec::main(label, main_config(copies, seed, RngMode::Sequential))),
                2 => engine.submit(JobSpec::ideal(label, main_config(copies, seed, RngMode::Counter))),
                _ => engine.submit(JobSpec::dynamic(label, dyn_config(copies, seed))),
            };
        }
        let report = engine.run(&stream).unwrap();
        let oracle = ExactDegreeOracle::build(&stream);
        for (job, &(kind, copies, seed)) in report.jobs.iter().zip(job_shapes.iter()) {
            match kind {
                0 => {
                    let reference =
                        estimate_triangles(&stream, &main_config(copies, seed, RngMode::Counter))
                            .unwrap();
                    prop_assert_eq!(&job.estimation().copy_estimates, &reference.copy_estimates);
                }
                1 => {
                    let reference =
                        estimate_triangles(&stream, &main_config(copies, seed, RngMode::Sequential))
                            .unwrap();
                    prop_assert_eq!(&job.estimation().copy_estimates, &reference.copy_estimates);
                }
                2 => {
                    let reference = estimate_triangles_with_oracle(
                        &stream,
                        &oracle,
                        &main_config(copies, seed, RngMode::Counter),
                    )
                    .unwrap();
                    prop_assert_eq!(&job.estimation().copy_estimates, &reference.copy_estimates);
                }
                _ => {
                    let reference = dynamic_reference(&stream, &dyn_config(copies, seed));
                    prop_assert_eq!(&job.estimation().copy_estimates, &reference.copy_estimates);
                }
            }
        }
    }
}
