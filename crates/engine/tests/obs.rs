//! Observability is observation-only: every estimate must be bit-identical
//! with recording on, off, or mixed across runs — for both estimators and
//! every scheduling tier (fused, per-copy, sharded) — and the assembled
//! [`RunReport`] must describe the run it came from (pass names, item
//! counts, self-times nested inside the wall time) and survive a JSON
//! round-trip.

use degentri_core::{EstimatorConfig, RngMode};
use degentri_dynamic::DynamicEstimatorConfig;
use degentri_engine::{Engine, EngineConfig, EngineReport, JobSpec};
use degentri_obs::{Counter, RunReport};
use degentri_stream::{DynamicMemoryStream, MemoryStream, StreamOrder};

fn main_config(copies: usize) -> EstimatorConfig {
    EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(5)
        .triangle_lower_bound(600)
        .r_constant(8.0)
        .inner_constant(16.0)
        .assignment_constant(6.0)
        .copies(copies)
        .seed(7)
        .rng_mode(RngMode::Counter)
        .try_build()
        .unwrap()
}

fn workload() -> MemoryStream {
    let graph = degentri_gen::barabasi_albert(400, 5, 3).unwrap();
    MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(4))
}

fn dynamic_workload() -> (DynamicMemoryStream, DynamicEstimatorConfig) {
    let graph = degentri_gen::barabasi_albert(200, 4, 9).unwrap();
    let stream = DynamicMemoryStream::with_churn(&graph, 0.5, 31);
    let config = DynamicEstimatorConfig::new(4, 80)
        .with_epsilon(0.3)
        .with_seed(13)
        .with_max_samples(96)
        .with_rng_mode(RngMode::Counter);
    (stream, config)
}

fn run_main(stream: &MemoryStream, engine_config: EngineConfig, copies: usize) -> EngineReport {
    let mut engine = Engine::new(engine_config);
    engine.submit(JobSpec::main("obs-main", main_config(copies)));
    engine.run(stream).unwrap()
}

fn run_dynamic(recording: bool, fused: bool, workers: usize) -> EngineReport {
    let (stream, config) = dynamic_workload();
    let mut engine = Engine::new(
        EngineConfig::builder()
            .workers(workers)
            .fused_execution(fused)
            .recording(recording)
            .try_build()
            .unwrap(),
    );
    engine.submit(JobSpec::dynamic("obs-dynamic", config));
    engine.run_dynamic(&stream).unwrap()
}

#[test]
fn recording_is_observation_only_for_main_jobs() {
    let stream = workload();
    // (fused?, workers): the fused single-worker path, the per-copy path,
    // and the sharded fused path.
    for (fused, workers) in [(true, 1), (false, 2), (true, 8)] {
        let build = |recording: bool| {
            EngineConfig::builder()
                .workers(workers)
                .fused_execution(fused)
                .recording(recording)
                .try_build()
                .unwrap()
        };
        let on = run_main(&stream, build(true), 4);
        let off = run_main(&stream, build(false), 4);
        assert_eq!(
            on.jobs[0].estimation().estimate.to_bits(),
            off.jobs[0].estimation().estimate.to_bits(),
            "fused={fused} workers={workers}"
        );
        assert_eq!(
            on.jobs[0].estimation().copy_estimates,
            off.jobs[0].estimation().copy_estimates
        );
        assert!(on.run_report.is_some(), "recording run carries a report");
        assert!(off.run_report.is_none(), "silent run carries no report");
        // Recording never changes what was executed, only what was seen.
        assert_eq!(on.stats.sweeps_executed, off.stats.sweeps_executed);
        assert_eq!(on.stats.edges_streamed, off.stats.edges_streamed);
    }
}

#[test]
fn recording_is_observation_only_for_dynamic_jobs() {
    for (fused, workers) in [(true, 1), (false, 2), (true, 4)] {
        let on = run_dynamic(true, fused, workers);
        let off = run_dynamic(false, fused, workers);
        assert_eq!(
            on.jobs[0].estimation().estimate.to_bits(),
            off.jobs[0].estimation().estimate.to_bits(),
            "fused={fused} workers={workers}"
        );
        assert_eq!(
            on.jobs[0].estimation().copy_estimates,
            off.jobs[0].estimation().copy_estimates
        );
        assert!(on.run_report.is_some() && off.run_report.is_none());
    }
}

#[test]
fn fused_main_run_report_structure() {
    let stream = workload();
    let m = stream.edges().len() as u64;
    let copies = 4usize;
    let report = run_main(
        &stream,
        EngineConfig::builder()
            .workers(2)
            .recording(true)
            .try_build()
            .unwrap(),
        copies,
    );
    assert_eq!(report.stats.fused_cohorts, 1);
    let run: &RunReport = report.run_report.as_ref().unwrap();
    assert_eq!(run.cohorts.len(), 1);
    let cohort = &run.cohorts[0];
    assert_eq!(cohort.label, "six-pass");
    assert_eq!(cohort.copies, copies);
    assert_eq!(cohort.passes.len(), 6);
    for (pass, name) in cohort.passes.iter().zip([
        "p1_uniform_sample",
        "p2_degrees",
        "p3_neighbor_sample",
        "p4_closure",
        "p5_assignment_gather",
        "p6_assignment_closure",
    ]) {
        assert_eq!(pass.name, name);
        // One shared sweep sees the whole snapshot; every copy folds it.
        assert_eq!(pass.items, m);
        assert_eq!(pass.tally.items, m * copies as u64);
        assert_eq!(pass.shards.iter().map(|s| s.items).sum::<u64>(), m);
        assert!(!pass.shards.is_empty());
    }
    // Self-times nest inside the wall time and are not all zero.
    assert!(cohort.total_nanos() > 0);
    assert!(cohort.total_nanos() <= run.wall_nanos);
    // Job accounting in submission order, with a real queue latency.
    assert_eq!(run.jobs.len(), 1);
    assert_eq!(run.jobs[0].label, "obs-main");
    assert_eq!(run.jobs[0].tasks, copies);
    assert!(run.jobs[0].latency_nanos >= run.wall_nanos);
    // Merged metrics: six shared sweeps, each copy folding every item.
    assert_eq!(run.metrics.counter(Counter::SweepsExecuted), 6);
    assert_eq!(
        run.metrics.counter(Counter::ItemsFolded),
        6 * m * copies as u64
    );
    assert!(run.metrics.counter(Counter::ProbeHits) > 0);
    assert_eq!(run.metrics.counter(Counter::TasksExecuted), copies as u64);
    assert_eq!(run.metrics.counter(Counter::JobsCompleted), 1);
    assert_eq!(run.metrics.counter(Counter::CohortCopies), copies as u64);
}

#[test]
fn dynamic_run_report_and_per_pass_timings() {
    let report = run_dynamic(true, true, 2);
    let run = report.run_report.as_ref().unwrap();
    assert_eq!(run.cohorts.len(), 1);
    let cohort = &run.cohorts[0];
    assert_eq!(cohort.label, "turnstile");
    assert_eq!(cohort.passes.len(), 4);
    for (pass, name) in cohort.passes.iter().zip([
        "u1_l0_edge_sample",
        "u2_degrees",
        "u3_l0_neighbor_sample",
        "u4_closure",
    ]) {
        assert_eq!(pass.name, name);
        assert!(pass.tally.items > 0);
    }
    // The ℓ0 sketch bank is updated once per update per sampler in pass 1.
    assert!(run.metrics.counter(Counter::SketchUpdates) > 0);
    assert!(cohort.total_nanos() <= run.wall_nanos);
    // Satellite: the dynamic outcome now carries real per-pass wall times
    // (the fused driver records them through the same hook as the main
    // estimator), and they nest inside the run's wall time.
    let outcome = report.jobs[0].dynamic().unwrap();
    let pass_sum: u64 = outcome.pass_nanos.iter().sum();
    assert!(pass_sum > 0, "dynamic per-pass timings must be populated");
    assert!(pass_sum <= run.wall_nanos);
}

#[test]
fn run_report_json_round_trips_and_text_tree_names_passes() {
    let stream = workload();
    let report = run_main(
        &stream,
        EngineConfig::builder()
            .workers(2)
            .recording(true)
            .try_build()
            .unwrap(),
        4,
    );
    let run = report.run_report.unwrap();
    // Exact schema round-trip on a real report.
    let json = run.to_json();
    let parsed = RunReport::from_json(&json).unwrap();
    assert_eq!(parsed, run);
    // The text tree names the run, cohort, every pass, the job, and the
    // metrics summary.
    let tree = run.to_string();
    for needle in [
        "run ·",
        "cohort six-pass",
        "p1_uniform_sample",
        "p6_assignment_closure",
        "job obs-main",
        "metrics",
    ] {
        assert!(tree.contains(needle), "missing {needle:?} in:\n{tree}");
    }
}

#[test]
fn stats_display_reports_fusion_and_sweeps() {
    let stream = workload();
    let report = run_main(&stream, EngineConfig::with_workers(2), 4);
    let text = report.stats.to_string();
    assert!(text.contains("1 fused cohorts"), "{text}");
    assert!(text.contains("6 sweeps"), "{text}");
    // The invariant is enforced at stats construction.
    assert_eq!(
        report.stats.edges_streamed,
        report.stats.sweeps_executed * stream.edges().len() as u64
    );
}
