//! Engine ↔ sequential-runner parity and determinism.
//!
//! The engine's contract is that parallelism changes wall-clock time only:
//! for the same configuration, seed and **effective randomness regime** it
//! must produce bit-identical `estimate` and `copy_estimates` to
//! `degentri_core`'s sequential runner, at every worker count, on every
//! run. The engine forces `RngMode::Counter` onto its jobs by default, so
//! engine runs are compared against the sequential runner executing the
//! same counter-mode configuration; the sequential-regime parity is
//! asserted through `job_rng_mode()` (respect-the-job override) and the
//! `parallel_estimate_*` entry points, which never override.

use degentri_baselines::{ExactStreamCounter, StreamingTriangleCounter, TriestImpr};
use degentri_core::{
    estimate_triangles, estimate_triangles_with_oracle, EstimatorConfig, ExactDegreeOracle, RngMode,
};
use degentri_engine::{
    parallel_estimate_triangles, parallel_estimate_triangles_with_oracle, Engine, EngineConfig,
    JobSpec,
};
use degentri_gen::{barabasi_albert, wheel};
use degentri_stream::{EdgeStream, MemoryStream, StreamOrder, StreamStats};

fn test_config(kappa: usize, t_hint: u64, copies: usize, seed: u64) -> EstimatorConfig {
    EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(kappa)
        .triangle_lower_bound(t_hint)
        .r_constant(20.0)
        .inner_constant(40.0)
        .assignment_constant(15.0)
        .copies(copies)
        .seed(seed)
        .try_build()
        .expect("test configuration is valid")
}

/// The configuration as the engine's default override executes it.
fn counter_mode(config: &EstimatorConfig) -> EstimatorConfig {
    EstimatorConfig {
        rng_mode: RngMode::Counter,
        ..config.clone()
    }
}

#[test]
fn parallel_main_estimator_is_bit_identical_to_sequential() {
    let graph = wheel(900).unwrap();
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(11));
    let config = test_config(3, 449, 8, 42);

    let sequential = estimate_triangles(&stream, &config).unwrap();
    for workers in [1, 2, 3, 4, 8] {
        let parallel = parallel_estimate_triangles(&stream, &config, workers).unwrap();
        assert_eq!(
            parallel.copy_estimates, sequential.copy_estimates,
            "workers = {workers}"
        );
        assert_eq!(parallel.estimate.to_bits(), sequential.estimate.to_bits());
        assert_eq!(parallel.space, sequential.space);
        assert_eq!(parallel.passes_per_copy, sequential.passes_per_copy);
        assert_eq!(parallel.copies, sequential.copies);
    }
}

#[test]
fn parallel_ideal_estimator_is_bit_identical_to_sequential() {
    let graph = barabasi_albert(700, 5, 3).unwrap();
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(5));
    let config = test_config(5, 500, 6, 9);

    let oracle = ExactDegreeOracle::build(&stream);
    let sequential = estimate_triangles_with_oracle(&stream, &oracle, &config).unwrap();
    let stats = StreamStats::compute(&stream);
    for workers in [1, 3, 6] {
        let parallel =
            parallel_estimate_triangles_with_oracle(&stream, &stats, &config, workers).unwrap();
        assert_eq!(parallel.copy_estimates, sequential.copy_estimates);
        assert_eq!(parallel.estimate.to_bits(), sequential.estimate.to_bits());
    }
}

#[test]
fn batch_size_and_sharding_never_change_results() {
    let graph = barabasi_albert(600, 5, 9).unwrap();
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(3));
    let config = test_config(5, 700, 3, 31);
    let sequential = estimate_triangles(&stream, &config).unwrap();

    // Batch size sweep through the full-config entry point (which never
    // overrides the job's rng mode).
    for batch in [1, 17, 4096, 1 << 20] {
        let engine_config = EngineConfig::builder()
            .workers(2)
            .batch_size(batch)
            .try_build()
            .unwrap();
        let parallel =
            degentri_engine::parallel_estimate_triangles_with(&stream, &config, &engine_config)
                .unwrap();
        assert_eq!(parallel.copy_estimates, sequential.copy_estimates);
        assert_eq!(parallel.estimate.to_bits(), sequential.estimate.to_bits());
    }

    // Engine scheduling: 3 copies on 9 workers shards each copy 3 ways;
    // the job result must still match the sequential runner executing the
    // same effective (counter-mode) configuration bit for bit.
    let sequential_counter = estimate_triangles(&stream, &counter_mode(&config)).unwrap();
    for sharding in [false, true] {
        let mut engine = Engine::new(
            EngineConfig::builder()
                .workers(9)
                .intra_task_sharding(sharding)
                .try_build()
                .unwrap(),
        );
        engine.submit(JobSpec::main("sweep", config.clone()));
        let report = engine.run(&stream).unwrap();
        assert_eq!(
            report.jobs[0].estimation().copy_estimates,
            sequential_counter.copy_estimates,
            "sharding = {sharding}"
        );
        assert_eq!(
            report.jobs[0].estimation().estimate.to_bits(),
            sequential_counter.estimate.to_bits()
        );
        // With intra-task sharding the fused cohort shards its shared
        // sweeps across the whole pool; without it (and a multi-worker
        // pool) the engine keeps copy-level parallelism by not fusing.
        assert_eq!(report.stats.fused_cohorts, usize::from(sharding));
        assert_eq!(
            report.stats.intra_task_workers,
            if sharding { 9 } else { 1 }
        );
    }

    // With the respect-the-job override the engine reproduces the
    // sequential-regime runner exactly as it did before counter mode.
    let mut engine = Engine::new(
        EngineConfig::builder()
            .workers(9)
            .job_rng_mode()
            .try_build()
            .unwrap(),
    );
    engine.submit(JobSpec::main("respect", config.clone()));
    let report = engine.run(&stream).unwrap();
    assert_eq!(
        report.jobs[0].estimation().copy_estimates,
        sequential.copy_estimates
    );
    assert_eq!(
        report.jobs[0].estimation().estimate.to_bits(),
        sequential.estimate.to_bits()
    );
}

#[test]
fn counter_mode_ideal_jobs_shard_across_spare_workers() {
    let graph = barabasi_albert(500, 5, 21).unwrap();
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(9));
    let config = test_config(5, 400, 2, 77);

    // 8 workers for 2 ideal copies → the copies fuse into one 3-pass
    // cohort whose shared sweeps shard across the whole pool: legal only
    // because the engine's counter-mode default makes the ideal
    // estimator's sampling passes order-insensitive.
    let mut engine = Engine::with_workers(8);
    engine.submit(JobSpec::ideal("ideal", config.clone()));
    let sharded = engine.run(&stream).unwrap();
    assert_eq!(sharded.stats.intra_task_workers, 8);
    assert_eq!(sharded.stats.fused_cohorts, 1);
    assert_eq!(sharded.stats.rng_mode, Some(RngMode::Counter));

    // Bit-identical to a single worker and to the sequential oracle
    // runner executing the same effective configuration.
    let mut engine = Engine::with_workers(1);
    engine.submit(JobSpec::ideal("ideal", config.clone()));
    let single = engine.run(&stream).unwrap();
    assert_eq!(single.stats.intra_task_workers, 1);
    assert_eq!(
        sharded.jobs[0].estimation().copy_estimates,
        single.jobs[0].estimation().copy_estimates
    );
    let oracle = ExactDegreeOracle::build(&stream);
    let sequential =
        estimate_triangles_with_oracle(&stream, &oracle, &counter_mode(&config)).unwrap();
    assert_eq!(
        sharded.jobs[0].estimation().copy_estimates,
        sequential.copy_estimates
    );
    assert_eq!(
        sharded.jobs[0].estimation().estimate.to_bits(),
        sequential.estimate.to_bits()
    );
}

#[test]
fn forced_sequential_engine_matches_sequential_runner() {
    let graph = wheel(700).unwrap();
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(4));
    let config = test_config(3, 349, 4, 19);
    let sequential = estimate_triangles(&stream, &config).unwrap();
    let mut engine = Engine::new(
        EngineConfig::builder()
            .workers(8)
            .rng_mode(RngMode::Sequential)
            .try_build()
            .unwrap(),
    );
    engine.submit(JobSpec::main("forced-sequential", config));
    let report = engine.run(&stream).unwrap();
    assert_eq!(report.stats.rng_mode, Some(RngMode::Sequential));
    assert_eq!(
        report.jobs[0].estimation().copy_estimates,
        sequential.copy_estimates
    );
    assert_eq!(
        report.jobs[0].estimation().estimate.to_bits(),
        sequential.estimate.to_bits()
    );
}

#[test]
fn repeated_runs_are_deterministic() {
    let graph = wheel(500).unwrap();
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(2));
    let config = test_config(3, 249, 7, 123);
    let first = parallel_estimate_triangles(&stream, &config, 4).unwrap();
    for _ in 0..3 {
        let again = parallel_estimate_triangles(&stream, &config, 4).unwrap();
        assert_eq!(again.copy_estimates, first.copy_estimates);
        assert_eq!(again.estimate.to_bits(), first.estimate.to_bits());
    }
}

#[test]
fn engine_jobs_match_direct_runs_and_report_throughput() {
    let graph = wheel(800).unwrap();
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(7));
    let m = EdgeStream::num_edges(&stream);
    let main_config = test_config(3, 399, 5, 77);
    let ideal_config = test_config(3, 399, 4, 13);

    let mut engine = Engine::new(EngineConfig::with_workers(4));
    engine.submit(JobSpec::main("main", main_config.clone()));
    engine.submit(JobSpec::ideal("ideal", ideal_config.clone()));
    engine.submit(JobSpec::baseline(
        "triest",
        Box::new(TriestImpr::new(256, 5)),
    ));
    engine.submit(JobSpec::baseline(
        "exact",
        Box::new(ExactStreamCounter::new()),
    ));
    let report = engine.run(&stream).unwrap();
    assert_eq!(report.jobs.len(), 4);

    // Main job: identical to the sequential public entry point running the
    // same effective (counter-mode) configuration.
    let sequential_main = estimate_triangles(&stream, &counter_mode(&main_config)).unwrap();
    assert_eq!(report.jobs[0].label, "main");
    assert_eq!(
        report.jobs[0].estimation().copy_estimates,
        sequential_main.copy_estimates
    );
    assert_eq!(
        report.jobs[0].estimation().estimate.to_bits(),
        sequential_main.estimate.to_bits()
    );

    // Ideal job: identical to the sequential oracle entry point.
    let oracle = ExactDegreeOracle::build(&stream);
    let sequential_ideal =
        estimate_triangles_with_oracle(&stream, &oracle, &counter_mode(&ideal_config)).unwrap();
    assert_eq!(
        report.jobs[1].estimation().copy_estimates,
        sequential_ideal.copy_estimates
    );

    // Baseline jobs: identical to running the baseline directly.
    let direct_triest = TriestImpr::new(256, 5).estimate(&stream);
    assert_eq!(report.jobs[2].estimation().estimate, direct_triest.estimate);
    assert_eq!(
        report.jobs[2].estimation().passes_per_copy,
        direct_triest.passes
    );
    let direct_exact = ExactStreamCounter::new().estimate(&stream);
    assert_eq!(report.jobs[3].estimation().estimate, direct_exact.estimate);

    // Throughput accounting counts *physical* snapshot traversals: the
    // five main copies and 4 ideal copies share one fused cohort whose 6
    // sweeps serve everyone (the ideal members ride the first 3 and then
    // retire), plus 1 oracle stats pass and the two baselines' passes,
    // all over m edges.
    let baseline_passes = (direct_triest.passes + direct_exact.passes) as u64;
    let expected_sweeps = (6 + 1) as u64 + baseline_passes;
    assert_eq!(report.stats.sweeps_executed, expected_sweeps);
    assert_eq!(report.stats.edges_streamed, expected_sweeps * m as u64);
    assert_eq!(report.stats.fused_cohorts, 1);
    assert_eq!(report.stats.tasks, 5 + 4 + 2);
    assert!(report.stats.edges_per_second > 0.0);
    assert!(report.stats.worker_utilization > 0.0);
    assert!(report.stats.busy_seconds >= 0.0);
    assert_eq!(report.stats.workers, 4);
}

#[test]
fn engine_is_deterministic_across_worker_counts() {
    let graph = wheel(400).unwrap();
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(1));
    let config = test_config(3, 199, 6, 55);
    let run_with = |workers: usize| {
        let mut engine = Engine::with_workers(workers);
        engine.submit(JobSpec::main("a", config.clone()));
        engine.submit(JobSpec::main(
            "b",
            EstimatorConfig {
                seed: 99,
                ..config.clone()
            },
        ));
        engine.run(&stream).unwrap()
    };
    let reference = run_with(1);
    for workers in [2, 4, 7] {
        let report = run_with(workers);
        for (job, ref_job) in report.jobs.iter().zip(&reference.jobs) {
            assert_eq!(
                job.estimation().copy_estimates,
                ref_job.estimation().copy_estimates
            );
            assert_eq!(
                job.estimation().estimate.to_bits(),
                ref_job.estimation().estimate.to_bits()
            );
        }
    }
    // Different seeds genuinely produce different jobs.
    assert_ne!(
        reference.jobs[0].estimation().copy_estimates,
        reference.jobs[1].estimation().copy_estimates
    );
}

#[test]
fn engine_surfaces_estimator_errors() {
    let stream = MemoryStream::from_edges(4, Vec::new(), StreamOrder::AsGiven);
    let mut engine = Engine::with_workers(2);
    engine.submit(JobSpec::main("empty", test_config(3, 1, 3, 1)));
    assert!(engine.run(&stream).is_err());
}
