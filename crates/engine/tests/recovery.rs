//! The recovery layer, proven end to end: copy-level containment keeps a
//! failing copy from sinking its job, deterministic retries re-run only
//! the failed copies (bit-identical, because counter-mode randomness keys
//! every draw by stream position and copy seed), and quorum policies
//! accept the surviving-copy aggregate when retries run dry.
//!
//! The root module needs no features (clean-run inertness of the new
//! policies); the `faulted` module drives the injection harness and only
//! compiles with `--features fault-inject`.

use std::time::Duration;

use degentri_core::{EstimatorConfig, RngMode, TriangleEstimation};
use degentri_engine::{
    Backoff, Engine, EngineConfig, EngineError, JobSpec, QuorumPolicy, RetryPolicy,
};
use degentri_stream::{MemoryStream, StreamOrder};

fn main_config(seed: u64) -> EstimatorConfig {
    main_config_copies(seed, 2)
}

fn main_config_copies(seed: u64, copies: usize) -> EstimatorConfig {
    EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(5)
        .triangle_lower_bound(600)
        .r_constant(8.0)
        .inner_constant(16.0)
        .assignment_constant(6.0)
        .copies(copies)
        .seed(seed)
        .rng_mode(RngMode::Counter)
        .try_build()
        .unwrap()
}

fn workload() -> MemoryStream {
    let graph = degentri_gen::barabasi_albert(300, 4, 3).unwrap();
    MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(4))
}

fn engine(workers: usize, fused: bool) -> Engine {
    Engine::new(
        EngineConfig::builder()
            .workers(workers)
            .fused_execution(fused)
            .try_build()
            .unwrap(),
    )
}

/// Runs `f` with an empty fault plan installed when the injection feature
/// is compiled in (the harness is process-global; see `fault_isolation`).
fn quiesced<R>(f: impl FnOnce() -> R) -> R {
    #[cfg(feature = "fault-inject")]
    {
        degentri_core::faults::with_plan(degentri_core::faults::FaultPlan::default(), f)
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        f()
    }
}

fn assert_bits(actual: &TriangleEstimation, expected: &TriangleEstimation, what: &str) {
    assert_eq!(
        actual.estimate.to_bits(),
        expected.estimate.to_bits(),
        "{what}: estimate"
    );
    assert_eq!(
        actual.copy_estimates, expected.copy_estimates,
        "{what}: copy estimates"
    );
}

/// Retry and quorum policies on a clean run are pure metadata: results,
/// stats, and the degradation field all match a policy-free run.
#[test]
fn recovery_policies_are_inert_on_clean_runs() {
    let stream = workload();
    let reference = quiesced(|| {
        let mut plain = engine(2, true);
        plain.submit(JobSpec::main("ref", main_config(31)));
        plain.run(&stream).unwrap().jobs.remove(0).into_estimation()
    });
    quiesced(|| {
        for fused in [true, false] {
            for workers in [1usize, 2, 4] {
                let mut engine = engine(workers, fused);
                engine.submit(
                    JobSpec::main("tuned", main_config(31))
                        .retry(
                            RetryPolicy::new(3)
                                .with_backoff(Backoff::Fixed(Duration::from_millis(5))),
                        )
                        .quorum(QuorumPolicy::best_effort()),
                );
                let report = engine.run(&stream).unwrap();
                let what = format!("fused={fused} workers={workers}");
                assert!(report.jobs[0].is_ok(), "{what}");
                assert!(!report.jobs[0].is_degraded(), "{what}");
                assert_bits(report.jobs[0].estimation(), &reference, &what);
                assert_eq!(report.stats.copies_retried, 0, "{what}");
                assert_eq!(report.stats.copies_quarantined, 0, "{what}");
                assert_eq!(report.stats.jobs_degraded, 0, "{what}");
                assert_eq!(report.stats.retry_backoff_seconds, 0.0, "{what}");
            }
        }
    });
}

/// `max_attempts = 0` is rejected up front, on the job and on the engine
/// default, before any task runs.
#[test]
fn zero_attempt_retry_policies_are_rejected() {
    let stream = workload();
    quiesced(|| {
        let mut engine = engine(1, true);
        engine.submit(JobSpec::main("bad", main_config(1)).retry(RetryPolicy::new(0)));
        assert!(matches!(
            engine.run(&stream),
            Err(EngineError::InvalidConfig { .. })
        ));
        assert!(EngineConfig::builder()
            .retry_policy(RetryPolicy::new(0))
            .try_build()
            .is_err());
    });
}

#[cfg(feature = "fault-inject")]
mod faulted {
    use super::*;
    use std::time::Instant;

    use degentri_core::faults::{self, FaultKind, FaultPlan, FaultSite};
    use degentri_core::{
        aggregate_copies, main_copy_seed, run_main_copy, CopyContribution, EstimatorError,
    };
    use degentri_dynamic::{
        aggregate_dynamic_copies, dynamic_copy_seed, run_dynamic_copy, DynamicEstimatorConfig,
    };
    use degentri_stream::DynamicMemoryStream;

    fn dyn_config(seed: u64, copies: usize) -> DynamicEstimatorConfig {
        DynamicEstimatorConfig::new(4, 80)
            .with_epsilon(0.3)
            .with_copies(copies)
            .with_seed(seed)
            .with_max_samples(96)
            .with_rng_mode(RngMode::Counter)
    }

    /// A transient `FailTimes(1)` fault heals on re-execution: the retry
    /// layer re-runs exactly the failed copy and the job comes back at
    /// full strength, bit-identical to the clean run, on both tiers at
    /// every worker count. The deterministic schedule also means two
    /// faulted runs agree with each other bit for bit.
    #[test]
    fn transient_fault_retries_back_to_full_strength() {
        let stream = workload();
        let seed = 71u64;
        let reference = quiesced(|| {
            let mut engine = engine(2, true);
            engine.submit(JobSpec::main("job", main_config(seed)));
            engine
                .run(&stream)
                .unwrap()
                .jobs
                .remove(0)
                .into_estimation()
        });
        for fused in [true, false] {
            for workers in [1usize, 2, 4] {
                // Copy 1's third pass finish fails once, then heals.
                let plan = FaultPlan::single(
                    FaultSite::MainFinish,
                    main_copy_seed(seed, 1),
                    2,
                    FaultKind::FailTimes(1),
                );
                let run = || {
                    faults::with_plan(plan.clone(), || {
                        let mut engine = engine(workers, fused);
                        engine.submit(
                            JobSpec::main("job", main_config(seed)).retry(RetryPolicy::new(2)),
                        );
                        engine.run(&stream).unwrap()
                    })
                };
                let report = run();
                let what = format!("fused={fused} workers={workers}");
                assert!(
                    report.jobs[0].is_ok(),
                    "{what}: {:?}",
                    report.jobs[0].error()
                );
                assert!(!report.jobs[0].is_degraded(), "{what}");
                assert_bits(report.jobs[0].estimation(), &reference, &what);
                assert_eq!(report.stats.jobs_failed, 0, "{what}");
                assert_eq!(report.stats.copies_retried, 1, "{what}");
                assert_eq!(report.stats.copies_quarantined, 0, "{what}");
                if fused {
                    // Only the failing copy left the cohort.
                    assert_eq!(report.stats.copies_evicted, 1, "{what}");
                }
                // Re-running the identical faulted configuration (fresh
                // plan, fresh hit counters) reproduces the result exactly.
                let again = run();
                assert_bits(
                    again.jobs[0].estimation(),
                    report.jobs[0].estimation(),
                    &what,
                );
            }
        }
    }

    /// The turnstile estimator goes through the same retry path: a
    /// transient `DynamicFinish` fault is retried back to a full-strength
    /// result on both tiers.
    #[test]
    fn transient_dynamic_fault_retries_back_to_full_strength() {
        let graph = degentri_gen::barabasi_albert(200, 4, 9).unwrap();
        let stream = DynamicMemoryStream::with_churn(&graph, 0.5, 31);
        let seed = 43u64;
        let reference = quiesced(|| {
            let mut engine = engine(2, true);
            engine.submit(JobSpec::dynamic("job", dyn_config(seed, 2)));
            engine
                .run_dynamic(&stream)
                .unwrap()
                .jobs
                .remove(0)
                .into_estimation()
        });
        for fused in [true, false] {
            for workers in [1usize, 2, 4] {
                let plan = FaultPlan::single(
                    FaultSite::DynamicFinish,
                    dynamic_copy_seed(seed, 1),
                    1,
                    FaultKind::FailTimes(1),
                );
                let report = faults::with_plan(plan, || {
                    let mut engine = engine(workers, fused);
                    engine.submit(
                        JobSpec::dynamic("job", dyn_config(seed, 2)).retry(RetryPolicy::new(2)),
                    );
                    engine.run_dynamic(&stream).unwrap()
                });
                let what = format!("dynamic fused={fused} workers={workers}");
                assert!(
                    report.jobs[0].is_ok(),
                    "{what}: {:?}",
                    report.jobs[0].error()
                );
                assert!(!report.jobs[0].is_degraded(), "{what}");
                assert_bits(report.jobs[0].estimation(), &reference, &what);
                assert_eq!(report.stats.copies_retried, 1, "{what}");
            }
        }
    }

    /// A persistent fault outlives the retry budget; the copy quarantines
    /// and the job succeeds degraded, with its aggregate equal — bit for
    /// bit — to the core API's aggregation over exactly the surviving
    /// copies. Without a tolerant quorum the same failure fails the job.
    #[test]
    fn persistent_fault_quarantines_into_the_degraded_aggregate() {
        let stream = workload();
        let seed = 73u64;
        let config = main_config_copies(seed, 3);
        // The reference: the surviving copies 0 and 2, aggregated by the
        // sequential building blocks the engine is bit-compatible with.
        let expected = quiesced(|| {
            let contributions: Vec<CopyContribution> = [0usize, 2]
                .iter()
                .map(|&copy| {
                    CopyContribution::from(&run_main_copy(&stream, &config, copy).unwrap())
                })
                .collect();
            aggregate_copies(&contributions)
        });
        let plan = || {
            FaultPlan::single(
                FaultSite::MainFinish,
                main_copy_seed(seed, 1),
                0,
                FaultKind::FailTimes(u64::MAX),
            )
        };
        for fused in [true, false] {
            for workers in [1usize, 2, 4] {
                let report = faults::with_plan(plan(), || {
                    let mut engine = engine(workers, fused);
                    engine.submit(
                        JobSpec::main("job", config.clone())
                            .retry(RetryPolicy::new(2))
                            .quorum(QuorumPolicy::best_effort()),
                    );
                    engine.run(&stream).unwrap()
                });
                let what = format!("fused={fused} workers={workers}");
                assert!(
                    report.jobs[0].is_ok(),
                    "{what}: {:?}",
                    report.jobs[0].error()
                );
                let degradation = report.jobs[0].degradation().expect("degraded").clone();
                assert_eq!(degradation.copies_used, 2, "{what}");
                assert_eq!(degradation.copies_lost, 1, "{what}");
                assert_eq!(degradation.copy_errors.len(), 1, "{what}");
                assert_eq!(degradation.copy_errors[0].0, 1, "{what}");
                assert!(
                    matches!(
                        degradation.copy_errors[0].1,
                        EngineError::Estimator(EstimatorError::Injected {
                            site: FaultSite::MainFinish,
                        })
                    ),
                    "{what}: {:?}",
                    degradation.copy_errors[0].1
                );
                assert_bits(report.jobs[0].estimation(), &expected, &what);
                assert_eq!(report.stats.jobs_degraded, 1, "{what}");
                assert_eq!(report.stats.copies_quarantined, 1, "{what}");
                // One retry attempt was spent before quarantining.
                assert_eq!(report.stats.copies_retried, 1, "{what}");
            }
        }
        // A quorum demanding all three copies rejects the degraded result;
        // so does the default all-or-nothing policy.
        for quorum in [QuorumPolicy::at_least(3), QuorumPolicy::default()] {
            let report = faults::with_plan(plan(), || {
                let mut engine = engine(2, true);
                engine.submit(
                    JobSpec::main("job", config.clone())
                        .retry(RetryPolicy::new(2))
                        .quorum(quorum),
                );
                engine.run(&stream).unwrap()
            });
            assert!(
                matches!(
                    report.jobs[0].error(),
                    Some(EngineError::Estimator(EstimatorError::Injected {
                        site: FaultSite::MainFinish,
                    }))
                ),
                "quorum {quorum:?}: {:?}",
                report.jobs[0].error()
            );
            assert_eq!(report.stats.jobs_failed, 1);
        }
    }

    /// A retry budget of zero quarantines immediately: no attempts, no
    /// sleeps, straight to the degraded path.
    #[test]
    fn exhausted_retry_budget_quarantines_without_attempts() {
        let stream = workload();
        let seed = 77u64;
        let plan = FaultPlan::single(
            FaultSite::MainFinish,
            main_copy_seed(seed, 0),
            0,
            FaultKind::FailTimes(u64::MAX),
        );
        let report = faults::with_plan(plan, || {
            let mut engine = engine(2, false);
            engine.submit(
                JobSpec::main("job", main_config_copies(seed, 3))
                    .retry(RetryPolicy::new(5).with_budget(0))
                    .quorum(QuorumPolicy::best_effort()),
            );
            engine.run(&stream).unwrap()
        });
        assert!(report.jobs[0].is_degraded());
        assert_eq!(report.stats.copies_retried, 0);
        assert_eq!(report.stats.copies_quarantined, 1);
    }

    /// A retry whose backoff cannot fit before the job deadline
    /// short-circuits to `DeadlineExceeded` without sleeping: under a
    /// tolerant quorum the job degrades, under the default it fails — and
    /// either way the run returns long before the 10-second backoff.
    #[test]
    fn retry_exceeding_the_deadline_short_circuits_without_sleeping() {
        let stream = workload();
        let seed = 79u64;
        let plan = || {
            FaultPlan::single(
                FaultSite::MainFinish,
                main_copy_seed(seed, 1),
                0,
                FaultKind::FailTimes(u64::MAX),
            )
        };
        let policy = RetryPolicy::new(3).with_backoff(Backoff::Fixed(Duration::from_secs(10)));
        for fused in [true, false] {
            for (quorum, expect_degraded) in [
                (QuorumPolicy::best_effort(), true),
                (QuorumPolicy::default(), false),
            ] {
                let started = Instant::now();
                let report = faults::with_plan(plan(), || {
                    let mut engine = engine(2, fused);
                    engine.submit(
                        JobSpec::main("job", main_config_copies(seed, 3))
                            .retry(policy)
                            .quorum(quorum)
                            .deadline(Duration::from_secs(2)),
                    );
                    engine.run(&stream).unwrap()
                });
                let elapsed = started.elapsed();
                let what = format!("fused={fused} degraded={expect_degraded}");
                assert!(
                    elapsed < Duration::from_secs(8),
                    "{what}: backoff slept through the deadline ({elapsed:?})"
                );
                if expect_degraded {
                    let degradation = report.jobs[0].degradation().expect("degraded");
                    assert!(
                        matches!(
                            degradation.copy_errors[0].1,
                            EngineError::DeadlineExceeded { .. }
                        ),
                        "{what}: {:?}",
                        degradation.copy_errors[0].1
                    );
                } else {
                    assert!(
                        matches!(
                            report.jobs[0].error(),
                            Some(EngineError::DeadlineExceeded { .. })
                        ),
                        "{what}: {:?}",
                        report.jobs[0].error()
                    );
                }
            }
        }
    }

    /// Cancelling the engine's token mid-backoff stops the sleep promptly
    /// (the retry layer sleeps in small cancellable slices) and surfaces
    /// `Cancelled` through the quarantine path; an already-finished
    /// batchmate keeps its result.
    #[test]
    fn cancellation_stops_a_backoff_sleep_promptly() {
        let stream = workload();
        let seed = 83u64;
        let clean_started = Instant::now();
        let reference = quiesced(|| {
            let mut engine = engine(2, true);
            engine.submit(JobSpec::main("healthy", main_config(84)));
            engine
                .run(&stream)
                .unwrap()
                .jobs
                .remove(0)
                .into_estimation()
        });
        // Cancel well after the tiers can have finished (the stuck job is
        // then parked in its 30-second backoff) but long before the sleep
        // would end on its own.
        let cancel_after = clean_started.elapsed() * 4 + Duration::from_millis(300);
        let plan = FaultPlan::single(
            FaultSite::MainFinish,
            main_copy_seed(seed, 0),
            0,
            FaultKind::FailTimes(u64::MAX),
        );
        let started = Instant::now();
        let report =
            faults::with_plan(plan, || {
                let mut engine = engine(2, true);
                let token = engine.cancel_token();
                engine.submit(JobSpec::main("healthy", main_config(84)));
                engine.submit(JobSpec::main("stuck", main_config(seed)).retry(
                    RetryPolicy::new(3).with_backoff(Backoff::Fixed(Duration::from_secs(30))),
                ));
                let canceller = std::thread::spawn(move || {
                    std::thread::sleep(cancel_after);
                    token.cancel();
                });
                let report = engine.run(&stream).unwrap();
                canceller.join().unwrap();
                report
            });
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(15),
            "cancel did not interrupt the backoff ({elapsed:?})"
        );
        assert!(report.jobs[0].is_ok(), "healthy batchmate failed");
        assert_bits(report.jobs[0].estimation(), &reference, "healthy batchmate");
        assert!(
            matches!(report.jobs[1].error(), Some(EngineError::Cancelled { .. })),
            "got {:?}",
            report.jobs[1].error()
        );
    }

    /// The degraded-dynamic guard: a mid-pass `BankFold` fault must not
    /// leave a partially-folded copy in the aggregate. The surviving
    /// estimate equals the core API's aggregation over exactly the copies
    /// whose four passes all completed, on both tiers.
    #[test]
    fn degraded_dynamic_job_aggregates_only_fully_finished_copies() {
        let graph = degentri_gen::barabasi_albert(200, 4, 9).unwrap();
        let stream = DynamicMemoryStream::with_churn(&graph, 0.5, 31);
        let seed = 89u64;
        let config = dyn_config(seed, 3);
        let expected = quiesced(|| {
            let survivors = [0usize, 2]
                .iter()
                .map(|&copy| run_dynamic_copy(&stream, &config, copy).unwrap())
                .collect::<Vec<_>>();
            aggregate_dynamic_copies(&survivors)
        });
        for fused in [true, false] {
            for workers in [1usize, 2, 4] {
                // Copy 1 dies inside its second fold chunk — mid-pass, so
                // its sketch bank holds torn state when it's evicted.
                let plan = FaultPlan::single(
                    FaultSite::BankFold,
                    dynamic_copy_seed(seed, 1),
                    1,
                    FaultKind::FailTimes(u64::MAX),
                );
                let report = faults::with_plan(plan, || {
                    let mut engine = engine(workers, fused);
                    engine.submit(
                        JobSpec::dynamic("job", config.clone()).quorum(QuorumPolicy::best_effort()),
                    );
                    engine.run_dynamic(&stream).unwrap()
                });
                let what = format!("bank-fold fused={fused} workers={workers}");
                assert!(
                    report.jobs[0].is_ok(),
                    "{what}: {:?}",
                    report.jobs[0].error()
                );
                let degradation = report.jobs[0].degradation().expect("degraded");
                assert_eq!(degradation.copies_used, 2, "{what}");
                assert_eq!(degradation.copies_lost, 1, "{what}");
                assert_eq!(degradation.copy_errors[0].0, 1, "{what}");
                assert_eq!(
                    report.jobs[0].estimation().estimate.to_bits(),
                    expected.estimate.to_bits(),
                    "{what}: degraded aggregate must use only finished copies"
                );
                assert_eq!(
                    report.jobs[0].estimation().copy_estimates,
                    expected.copy_estimates,
                    "{what}"
                );
            }
        }
    }
}
