//! Barabási–Albert preferential attachment graphs.
//!
//! Preferential attachment graphs are the paper's flagship example of a
//! "natural" constant-degeneracy class (Section 1): every vertex arrives with
//! `k` edges, so peeling vertices in reverse arrival order shows `κ ≤ k`.
//! They are also triangle-rich when seeded from a clique, which puts them in
//! the `T = Ω(κ²)` regime the paper argues is typical for real graphs.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a Barabási–Albert graph: start from a `(k+1)`-clique and attach
/// each new vertex to `k` distinct existing vertices chosen proportionally
/// to their degree.
///
/// The resulting graph has `n` vertices, `m ≈ nk` edges and degeneracy at
/// most `k` beyond the seed clique (exactly `k` for `n > k + 1`).
///
/// # Errors
/// Returns an error if `k == 0` or `n ≤ k`.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Result<CsrGraph> {
    if k == 0 {
        return Err(GraphError::invalid_parameter(
            "barabasi_albert: k must be positive",
        ));
    }
    if n <= k {
        return Err(GraphError::invalid_parameter(format!(
            "barabasi_albert: need n > k (n = {n}, k = {k})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_vertices(n);

    // `targets` holds one entry per edge endpoint, so sampling a uniform
    // element of it is exactly degree-proportional sampling.
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(2 * n * k);

    // Seed clique on vertices 0..=k.
    let clique = (k + 1).min(n);
    for u in 0..clique as u32 {
        for v in (u + 1)..clique as u32 {
            builder.add_edge_raw(u, v);
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }

    for new in clique..n {
        let new = new as u32;
        let mut chosen: Vec<u32> = Vec::with_capacity(k);
        // Sample k distinct targets degree-proportionally (rejection on
        // duplicates; the pool is never empty because the seed is a clique).
        let mut guard = 0usize;
        while chosen.len() < k {
            let t = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 100 * k + 1000 {
                // Extremely unlikely; fall back to uniform choice over all
                // existing vertices to guarantee termination.
                let t = rng.gen_range(0..new);
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
        }
        for t in chosen {
            builder.add_edge_raw(new, t);
            endpoint_pool.push(new);
            endpoint_pool.push(t);
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;
    use degentri_graph::triangles::count_triangles;

    #[test]
    fn sizes_are_as_expected() {
        let (n, k) = (500usize, 5usize);
        let g = barabasi_albert(n, k, 3).unwrap();
        assert_eq!(g.num_vertices(), n);
        let clique_edges = (k + 1) * k / 2;
        let expected = clique_edges + (n - k - 1) * k;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn degeneracy_is_k() {
        for k in [2usize, 4, 8] {
            let g = barabasi_albert(400, k, 11).unwrap();
            assert_eq!(degeneracy(&g), k, "BA graph with parameter k={k}");
        }
    }

    #[test]
    fn contains_many_triangles() {
        let g = barabasi_albert(1000, 6, 5).unwrap();
        assert!(count_triangles(&g) > 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = barabasi_albert(300, 4, 77).unwrap();
        let b = barabasi_albert(300, 4, 77).unwrap();
        assert_eq!(a.edges(), b.edges());
        let c = barabasi_albert(300, 4, 78).unwrap();
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(barabasi_albert(10, 0, 1).is_err());
        assert!(barabasi_albert(5, 5, 1).is_err());
        assert!(barabasi_albert(5, 9, 1).is_err());
    }

    #[test]
    fn minimal_instance_is_a_clique() {
        let g = barabasi_albert(4, 3, 1).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(count_triangles(&g), 4);
    }
}
