//! Triangle-book graphs (the Section 1.2 variance example).
//!
//! The book `B_p` has a single *spine* edge `{0, 1}` and `p` *pages*: vertices
//! `2..p+2`, each adjacent to both spine endpoints. All `p` triangles share
//! the spine, so the per-edge triangle counts `t_e` are maximally skewed
//! (`t_spine = p`, every other edge has `t_e = 1`) while the graph stays
//! planar (`κ = 2`). This is the example the paper uses to show that naive
//! "count triangles incident to sampled edges" estimators have unbounded
//! variance and why the assignment rule is needed.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};

/// The triangle-book graph with `pages` pages (so `pages + 2` vertices,
/// `2·pages + 1` edges and exactly `pages` triangles).
///
/// # Errors
/// Returns an error if `pages == 0`.
pub fn book(pages: usize) -> Result<CsrGraph> {
    if pages == 0 {
        return Err(GraphError::invalid_parameter(
            "book: need at least one page",
        ));
    }
    let mut b = GraphBuilder::with_vertices(pages + 2);
    b.add_edge_raw(0, 1);
    for i in 0..pages as u32 {
        b.add_edge_raw(0, 2 + i);
        b.add_edge_raw(1, 2 + i);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;
    use degentri_graph::triangles::TriangleCounts;
    use degentri_graph::Edge;

    #[test]
    fn book_structure() {
        for pages in [1usize, 5, 100, 2000] {
            let g = book(pages).unwrap();
            assert_eq!(g.num_vertices(), pages + 2);
            assert_eq!(g.num_edges(), 2 * pages + 1);
            let tc = TriangleCounts::compute(&g);
            assert_eq!(tc.total, pages as u64);
            assert_eq!(tc.edge_count(Edge::from_raw(0, 1)), pages as u64);
            assert_eq!(degeneracy(&g), 2);
        }
    }

    #[test]
    fn per_edge_skew_is_maximal() {
        let g = book(50).unwrap();
        let tc = TriangleCounts::compute(&g);
        assert_eq!(tc.max_per_edge(), 50);
        // every non-spine edge participates in exactly one triangle
        for &e in g.edges() {
            if e != Edge::from_raw(0, 1) {
                assert_eq!(tc.edge_count(e), 1);
            }
        }
    }

    #[test]
    fn rejects_empty_book() {
        assert!(book(0).is_err());
    }
}
