//! Chung–Lu random graphs with power-law expected degrees.
//!
//! Each vertex `v` gets a weight `w_v` drawn from a truncated power law with
//! exponent `γ`; the pair `{u, v}` becomes an edge with probability
//! `min(1, w_u w_v / Σw)`. Heavy-tailed degree sequences with γ slightly
//! above 2 mimic the degree skew of social and web graphs — large maximum
//! degree, yet small degeneracy — which is precisely the regime where the
//! paper's `mκ/T` bound beats the `m∆/T` and `m/√T` baselines.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a Chung–Lu graph with `n` vertices, power-law exponent
/// `gamma > 1`, and maximum expected degree `max_weight`.
///
/// # Errors
/// Returns an error if `n == 0`, `gamma ≤ 1`, or `max_weight < 1`.
pub fn chung_lu(n: usize, gamma: f64, max_weight: f64, seed: u64) -> Result<CsrGraph> {
    if n == 0 {
        return Err(GraphError::invalid_parameter(
            "chung_lu: n must be positive",
        ));
    }
    if gamma <= 1.0 || gamma.is_nan() {
        return Err(GraphError::invalid_parameter(format!(
            "chung_lu: gamma must exceed 1, got {gamma}"
        )));
    }
    if max_weight < 1.0 || max_weight.is_nan() {
        return Err(GraphError::invalid_parameter(format!(
            "chung_lu: max_weight must be at least 1, got {max_weight}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Weights: inverse-transform sampling of a Pareto-like law truncated to
    // [1, max_weight], sorted descending so the edge-skipping loop below can
    // cut off early.
    let mut weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            // P(W > w) ∝ w^{1-γ} on [1, ∞), truncated.
            let w = u.powf(-1.0 / (gamma - 1.0));
            w.min(max_weight)
        })
        .collect();
    weights.sort_unstable_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
    let total: f64 = weights.iter().sum();

    let mut builder = GraphBuilder::with_vertices(n);
    // Miller–Hagberg style generation: for each u, walk v > u and skip
    // geometrically using an upper bound on the edge probability, then accept
    // with the exact probability. O(n + m) in expectation.
    for u in 0..n {
        let wu = weights[u];
        if wu <= 0.0 {
            break;
        }
        let mut v = u + 1;
        // Upper bound on p for the remaining v's (weights are descending).
        while v < n {
            let p_bound = (wu * weights[v] / total).min(1.0);
            if p_bound <= 0.0 {
                break;
            }
            if p_bound < 1.0 {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                let skip = (r.ln() / (1.0 - p_bound).ln()).floor() as usize;
                v += skip;
            }
            if v >= n {
                break;
            }
            let p_exact = (wu * weights[v] / total).min(1.0);
            let accept: f64 = rng.gen();
            if accept < p_exact / p_bound {
                builder.add_edge_raw(u as u32, v as u32);
            }
            v += 1;
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;

    #[test]
    fn basic_shape() {
        let g = chung_lu(2000, 2.2, 60.0, 13).unwrap();
        assert_eq!(g.num_vertices(), 2000);
        assert!(
            g.num_edges() > 500,
            "should be reasonably dense, got {}",
            g.num_edges()
        );
        // Heavy-tailed but bounded-degeneracy.
        assert!(g.max_degree() >= 10);
        assert!(degeneracy(&g) <= 40);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = chung_lu(500, 2.5, 30.0, 4).unwrap();
        let b = chung_lu(500, 2.5, 30.0, 4).unwrap();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(chung_lu(0, 2.0, 10.0, 1).is_err());
        assert!(chung_lu(10, 1.0, 10.0, 1).is_err());
        assert!(chung_lu(10, 0.5, 10.0, 1).is_err());
        assert!(chung_lu(10, 2.0, 0.5, 1).is_err());
        assert!(chung_lu(10, f64::NAN, 10.0, 1).is_err());
    }

    #[test]
    fn steeper_exponent_gives_sparser_graph() {
        let dense = chung_lu(3000, 2.1, 80.0, 9).unwrap();
        let sparse = chung_lu(3000, 3.5, 80.0, 9).unwrap();
        assert!(dense.num_edges() > sparse.num_edges());
    }
}
