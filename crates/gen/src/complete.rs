//! Complete and complete bipartite graphs.
//!
//! `K_n` is the extreme high-degeneracy/high-triangle endpoint of the
//! parameter space (κ = n − 1, T = C(n, 3)); `K_{p,p}` is the triangle-free
//! fixed part of the lower-bound gadget of Section 6.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};

/// The complete graph `K_n`.
///
/// # Errors
/// Returns an error if `n == 0`.
pub fn complete(n: usize) -> Result<CsrGraph> {
    if n == 0 {
        return Err(GraphError::invalid_parameter(
            "complete: n must be positive",
        ));
    }
    let mut b = GraphBuilder::with_vertices(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge_raw(u, v);
        }
    }
    Ok(b.build())
}

/// The complete bipartite graph `K_{a,b}`: sides `0..a` and `a..a+b`.
///
/// # Errors
/// Returns an error if either side is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Result<CsrGraph> {
    if a == 0 || b == 0 {
        return Err(GraphError::invalid_parameter(
            "complete_bipartite: both sides must be non-empty",
        ));
    }
    let mut builder = GraphBuilder::with_vertices(a + b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            builder.add_edge_raw(u, a as u32 + v);
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;
    use degentri_graph::triangles::count_triangles;

    #[test]
    fn complete_counts() {
        let g = complete(7).unwrap();
        assert_eq!(g.num_edges(), 21);
        assert_eq!(count_triangles(&g), 35);
        assert_eq!(degeneracy(&g), 6);
        assert!(complete(0).is_err());
        assert_eq!(complete(1).unwrap().num_edges(), 0);
    }

    #[test]
    fn bipartite_is_triangle_free() {
        let g = complete_bipartite(5, 7).unwrap();
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 35);
        assert_eq!(count_triangles(&g), 0);
        assert_eq!(degeneracy(&g), 5);
        assert!(complete_bipartite(0, 3).is_err());
        assert!(complete_bipartite(3, 0).is_err());
    }
}
