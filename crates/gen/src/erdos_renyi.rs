//! Erdős–Rényi random graphs `G(n, p)` and `G(n, M)`.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `G(n, p)`: every unordered pair is an edge independently with
/// probability `p`.
///
/// Uses the skipping (geometric) technique so the cost is `O(n + m)` rather
/// than `O(n²)` for sparse graphs.
///
/// # Errors
/// Returns an error if `p` is not in `[0, 1]` or `n == 0`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<CsrGraph> {
    if n == 0 {
        return Err(GraphError::invalid_parameter("gnp: n must be positive"));
    }
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::invalid_parameter(format!(
            "gnp: p must lie in [0, 1], got {p}"
        )));
    }
    let mut builder = GraphBuilder::with_vertices(n);
    if p == 0.0 || n == 1 {
        return Ok(builder.build());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if p == 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                builder.add_edge_raw(u, v);
            }
        }
        return Ok(builder.build());
    }

    // Batagelj–Brandes skipping over the upper-triangular pair enumeration.
    let log_1p = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n_i = n as i64;
    while v < n_i {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / log_1p).floor() as i64;
        while w >= v && v < n_i {
            w -= v;
            v += 1;
        }
        if v < n_i {
            builder.add_edge_raw(w as u32, v as u32);
        }
    }
    Ok(builder.build())
}

/// Generates `G(n, M)`: a graph with exactly `M` distinct edges chosen
/// uniformly among all pairs (rejection sampling; requires
/// `M ≤ n(n−1)/2`).
///
/// # Errors
/// Returns an error if `n == 0` or `M` exceeds the number of possible edges.
pub fn gnm(n: usize, m: usize, seed: u64) -> Result<CsrGraph> {
    if n == 0 {
        return Err(GraphError::invalid_parameter("gnm: n must be positive"));
    }
    let possible = n as u64 * (n as u64 - 1) / 2;
    if m as u64 > possible {
        return Err(GraphError::invalid_parameter(format!(
            "gnm: m = {m} exceeds the {possible} possible edges on {n} vertices"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_vertices(n);

    if m as u64 > possible / 2 {
        // Dense regime: enumerate all pairs and take a random subset via
        // partial Fisher–Yates to avoid long rejection chains.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(possible as usize);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                pairs.push((u, v));
            }
        }
        for i in 0..m {
            let j = rng.gen_range(i..pairs.len());
            pairs.swap(i, j);
            let (u, v) = pairs[i];
            builder.add_edge_raw(u, v);
        }
    } else {
        while builder.num_edges() < m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                builder.add_edge_raw(u, v);
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_zero_and_one() {
        let g = gnp(10, 0.0, 1).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 10);
        let g = gnp(8, 1.0, 1).unwrap();
        assert_eq!(g.num_edges(), 28);
    }

    #[test]
    fn gnp_is_deterministic_and_near_expected_density() {
        let g1 = gnp(500, 0.02, 42).unwrap();
        let g2 = gnp(500, 0.02, 42).unwrap();
        assert_eq!(g1.edges(), g2.edges());
        let expected = 0.02 * (500.0 * 499.0 / 2.0);
        let m = g1.num_edges() as f64;
        assert!(
            (m - expected).abs() < 4.0 * expected.sqrt() + 50.0,
            "m={m} expected≈{expected}"
        );
    }

    #[test]
    fn gnp_different_seeds_differ() {
        let g1 = gnp(200, 0.05, 1).unwrap();
        let g2 = gnp(200, 0.05, 2).unwrap();
        assert_ne!(g1.edges(), g2.edges());
    }

    #[test]
    fn gnp_rejects_bad_parameters() {
        assert!(gnp(0, 0.5, 1).is_err());
        assert!(gnp(5, -0.1, 1).is_err());
        assert!(gnp(5, 1.5, 1).is_err());
        assert!(gnp(5, f64::NAN, 1).is_err());
    }

    #[test]
    fn gnm_exact_edge_count() {
        for (n, m) in [(10, 0), (10, 5), (50, 200), (20, 190)] {
            let g = gnm(n, m, 9).unwrap();
            assert_eq!(g.num_edges(), m);
            assert_eq!(g.num_vertices(), n);
        }
    }

    #[test]
    fn gnm_dense_regime_complete() {
        let g = gnm(8, 28, 3).unwrap();
        assert_eq!(g.num_edges(), 28);
    }

    #[test]
    fn gnm_rejects_impossible() {
        assert!(gnm(5, 11, 1).is_err());
        assert!(gnm(0, 0, 1).is_err());
    }

    #[test]
    fn gnm_is_deterministic() {
        assert_eq!(
            gnm(100, 300, 5).unwrap().edges(),
            gnm(100, 300, 5).unwrap().edges()
        );
    }
}
