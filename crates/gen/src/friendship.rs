//! Friendship (windmill) graphs.
//!
//! `F_k` consists of `k` triangles all sharing a single hub vertex. Like the
//! book graph it concentrates triangles on one vertex, but spreads them over
//! distinct edges: every edge lies in exactly one triangle, so the *edge*
//! skew is flat while the *vertex* skew is extreme. Together the two
//! families separate "per-edge variance" from "per-vertex variance" in the
//! ablation experiments.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};

/// The friendship graph with `k` blades: hub `0`, blade `i` on vertices
/// `2i+1, 2i+2`.
///
/// # Errors
/// Returns an error if `k == 0`.
pub fn friendship(k: usize) -> Result<CsrGraph> {
    if k == 0 {
        return Err(GraphError::invalid_parameter(
            "friendship: need at least one blade",
        ));
    }
    let mut b = GraphBuilder::with_vertices(2 * k + 1);
    for i in 0..k as u32 {
        let x = 2 * i + 1;
        let y = 2 * i + 2;
        b.add_edge_raw(0, x);
        b.add_edge_raw(0, y);
        b.add_edge_raw(x, y);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;
    use degentri_graph::triangles::TriangleCounts;

    #[test]
    fn friendship_structure() {
        for k in [1usize, 3, 40, 500] {
            let g = friendship(k).unwrap();
            assert_eq!(g.num_vertices(), 2 * k + 1);
            assert_eq!(g.num_edges(), 3 * k);
            let tc = TriangleCounts::compute(&g);
            assert_eq!(tc.total, k as u64);
            // every edge is in exactly one triangle
            assert_eq!(tc.max_per_edge(), 1);
            // the hub is in all of them
            assert_eq!(tc.per_vertex[0], k as u64);
            assert_eq!(degeneracy(&g), 2);
        }
    }

    #[test]
    fn rejects_zero_blades() {
        assert!(friendship(0).is_err());
    }
}
