//! Square grid graphs.
//!
//! Grids are planar (κ ≤ 2... actually κ = 2 for non-degenerate grids) and
//! triangle-free: a useful control family where `T = 0` and every estimator
//! should report 0.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};

/// The `rows × cols` grid graph (4-neighbor lattice).
///
/// # Errors
/// Returns an error if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Result<CsrGraph> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::invalid_parameter(
            "grid: dimensions must be positive",
        ));
    }
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::with_vertices(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge_raw(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge_raw(idx(r, c), idx(r + 1, c));
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;
    use degentri_graph::triangles::count_triangles;

    #[test]
    fn grid_structure() {
        let g = grid(5, 7).unwrap();
        assert_eq!(g.num_vertices(), 35);
        assert_eq!(g.num_edges(), 5 * 6 + 4 * 7);
        assert_eq!(count_triangles(&g), 0);
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn degenerate_cases() {
        let path = grid(1, 10).unwrap();
        assert_eq!(path.num_edges(), 9);
        assert_eq!(degeneracy(&path), 1);
        let single = grid(1, 1).unwrap();
        assert_eq!(single.num_vertices(), 1);
        assert_eq!(single.num_edges(), 0);
        assert!(grid(0, 5).is_err());
    }
}
