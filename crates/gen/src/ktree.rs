//! Random k-trees and partial k-trees — graphs with *exactly* controlled
//! degeneracy.
//!
//! A `k`-tree is built by starting from a `(k+1)`-clique and repeatedly
//! attaching a new vertex to all `k` vertices of an existing `k`-clique.
//! Every k-tree has degeneracy exactly `k` (the construction order is a
//! degeneracy ordering read backwards, and the graph contains `K_{k+1}`),
//! and every new vertex closes `C(k, 2)` new triangles, so both `κ` and `T`
//! are dialled in exactly — which is what the space-scaling experiments
//! (E2) need when they sweep `κ` with everything else held fixed. Partial
//! k-trees (subgraphs of k-trees, obtained here by dropping each edge
//! independently) cover the "degeneracy at most k" regime, the widest class
//! the paper's theorems apply to.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniform-attachment random `k`-tree on `n` vertices.
///
/// # Errors
/// Returns an error if `k == 0` or `n < k + 1`.
pub fn random_ktree(n: usize, k: usize, seed: u64) -> Result<CsrGraph> {
    if k == 0 {
        return Err(GraphError::invalid_parameter("random_ktree: k must be ≥ 1"));
    }
    if n < k + 1 {
        return Err(GraphError::invalid_parameter(format!(
            "random_ktree: need at least k + 1 = {} vertices, got {n}",
            k + 1
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_vertices(n);

    // Seed clique on vertices 0..=k.
    for a in 0..=k as u32 {
        for b in (a + 1)..=k as u32 {
            builder.add_edge_raw(a, b);
        }
    }
    // Active k-cliques the next vertex may attach to.
    let mut cliques: Vec<Vec<u32>> = Vec::new();
    for skip in 0..=k {
        let clique: Vec<u32> = (0..=k as u32).filter(|&v| v != skip as u32).collect();
        cliques.push(clique);
    }

    for v in (k + 1)..n {
        let chosen = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &chosen {
            builder.add_edge_raw(v as u32, u);
        }
        // Every (k−1)-subset of the chosen clique plus the new vertex is a
        // fresh k-clique available to later vertices.
        for skip in 0..chosen.len() {
            let mut next: Vec<u32> = chosen
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &u)| u)
                .collect();
            next.push(v as u32);
            cliques.push(next);
        }
    }
    builder.build_non_empty()
}

/// A random partial `k`-tree: a [`random_ktree`] with every edge kept
/// independently with probability `keep_probability`. Its degeneracy is at
/// most `k`.
///
/// # Errors
/// Returns an error for the same parameter violations as [`random_ktree`] or
/// if `keep_probability ∉ (0, 1]`.
pub fn random_partial_ktree(
    n: usize,
    k: usize,
    keep_probability: f64,
    seed: u64,
) -> Result<CsrGraph> {
    if !(keep_probability > 0.0 && keep_probability <= 1.0) {
        return Err(GraphError::invalid_parameter(
            "random_partial_ktree: keep_probability must lie in (0, 1]",
        ));
    }
    let full = random_ktree(n, k, seed)?;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5eed));
    let mut builder = GraphBuilder::with_vertices(n);
    for e in full.edges() {
        if rng.gen_bool(keep_probability) {
            builder.add_edge(e.u(), e.v());
        }
    }
    builder.build_non_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;
    use degentri_graph::triangles::count_triangles;

    #[test]
    fn rejects_bad_parameters() {
        assert!(random_ktree(5, 0, 1).is_err());
        assert!(random_ktree(3, 4, 1).is_err());
        assert!(random_partial_ktree(50, 3, 0.0, 1).is_err());
        assert!(random_partial_ktree(50, 3, 1.5, 1).is_err());
    }

    #[test]
    fn ktree_has_exactly_the_prescribed_size_and_degeneracy() {
        for (n, k) in [(50usize, 2usize), (200, 3), (400, 5), (100, 8)] {
            let g = random_ktree(n, k, 42).unwrap();
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), k * (k + 1) / 2 + (n - k - 1) * k);
            assert_eq!(degeneracy(&g), k, "n = {n}, k = {k}");
        }
    }

    #[test]
    fn ktree_triangle_count_grows_linearly_with_n() {
        // Every added vertex closes exactly C(k, 2) triangles.
        for (n, k) in [(100usize, 3usize), (300, 4)] {
            let g = random_ktree(n, k, 7).unwrap();
            let per_vertex = (k * (k - 1) / 2) as u64;
            let seed_clique = ((k + 1) * k * (k - 1) / 6) as u64;
            assert_eq!(
                count_triangles(&g),
                seed_clique + (n - k - 1) as u64 * per_vertex
            );
        }
    }

    #[test]
    fn ktree_is_deterministic_given_the_seed() {
        let a = random_ktree(250, 4, 9).unwrap();
        let b = random_ktree(250, 4, 9).unwrap();
        let c = random_ktree(250, 4, 10).unwrap();
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn partial_ktree_degeneracy_never_exceeds_k() {
        for keep in [0.3, 0.6, 0.9] {
            let g = random_partial_ktree(300, 5, keep, 13).unwrap();
            assert!(degeneracy(&g) <= 5, "keep = {keep}");
            assert!(g.num_edges() > 0);
        }
        // Keeping everything reproduces the k-tree.
        let full = random_partial_ktree(300, 5, 1.0, 13).unwrap();
        assert_eq!(
            full.num_edges(),
            random_ktree(300, 5, 13).unwrap().num_edges()
        );
    }
}
