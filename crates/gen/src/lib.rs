//! # degentri-gen — seeded graph generators
//!
//! Synthetic graph families that span the parameter regimes (`m`, `T`, `κ`)
//! the paper's bounds are stated in, standing in for the real-world graphs
//! the paper motivates (social networks, web graphs) and for the
//! communication-complexity hard instances of its lower bound:
//!
//! * **Random models** — [`erdos_renyi`], [`barabasi_albert`] (preferential
//!   attachment: constant degeneracy, the paper's flagship "natural" class),
//!   [`chung_lu`] (power-law expected degrees), [`rmat`].
//! * **Planar / bounded-degeneracy structured families** — [`wheel`] (the
//!   Section 1.1 example with `m = T = Θ(n)`, `κ = 3`), [`grid`],
//!   [`triangular_lattice`], [`complete`], [`complete_bipartite`].
//! * **Adversarial variance family** — [`book`] (the Section 1.2 example:
//!   `n − 2` triangles all sharing one edge), [`friendship`] (windmill).
//! * **Planted triangles** — [`planted_triangles`]: a sparse
//!   bounded-degeneracy base graph with a controlled number of planted
//!   triangles, used for the space scaling sweeps.
//! * **Lower-bound gadget** — [`lower_bound`]: the Section 6 reduction
//!   graphs built from YES/NO set-disjointness instances.
//! * **Small-world and exact-degeneracy families** — [`watts_strogatz`]
//!   (the clustering-rich model the paper's motivation cites) and
//!   [`ktree`] (random k-trees and partial k-trees, whose degeneracy is
//!   exactly / at most `k` by construction).
//!
//! Every generator is deterministic given its seed, so each experiment in
//! `EXPERIMENTS.md` is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barabasi_albert;
pub mod book;
pub mod chung_lu;
pub mod complete;
pub mod erdos_renyi;
pub mod friendship;
pub mod grid;
pub mod ktree;
pub mod lower_bound;
pub mod planted;
pub mod rmat;
pub mod triangular_lattice;
pub mod watts_strogatz;
pub mod wheel;

pub use barabasi_albert::barabasi_albert;
pub use book::book;
pub use chung_lu::chung_lu;
pub use complete::{complete, complete_bipartite};
pub use erdos_renyi::{gnm, gnp};
pub use friendship::friendship;
pub use grid::grid;
pub use ktree::{random_ktree, random_partial_ktree};
pub use lower_bound::{DisjointnessInstance, LowerBoundGadget};
pub use planted::planted_triangles;
pub use rmat::rmat;
pub use triangular_lattice::triangular_lattice;
pub use watts_strogatz::watts_strogatz;
pub use wheel::wheel;

use degentri_graph::Result;

/// A named graph instance: generator output bundled with a human-readable
/// label, used by the experiment harness to print tables.
#[derive(Debug, Clone)]
pub struct NamedGraph {
    /// Short label used in experiment output (e.g. `"ba_20000_8"`).
    pub name: String,
    /// The generated graph.
    pub graph: degentri_graph::CsrGraph,
}

impl NamedGraph {
    /// Creates a named graph.
    pub fn new(name: impl Into<String>, graph: degentri_graph::CsrGraph) -> Self {
        NamedGraph {
            name: name.into(),
            graph,
        }
    }
}

/// The default suite of graphs used by experiments E1 and E8: a mix of
/// low-degeneracy random models and structured families at moderate size.
///
/// `scale` multiplies the base sizes (use 1 for quick runs, 4+ for
/// paper-scale runs).
pub fn standard_suite(scale: usize, seed: u64) -> Result<Vec<NamedGraph>> {
    let scale = scale.max(1);
    let mut out = Vec::new();
    out.push(NamedGraph::new(
        format!("ba_n{}_d8", 5000 * scale),
        barabasi_albert(5000 * scale, 8, seed)?,
    ));
    out.push(NamedGraph::new(
        format!("chunglu_n{}_g2.2", 5000 * scale),
        chung_lu(5000 * scale, 2.2, 40.0, seed.wrapping_add(1))?,
    ));
    out.push(NamedGraph::new(
        format!("gnm_n{}_m{}", 4000 * scale, 24000 * scale),
        gnm(4000 * scale, 24000 * scale, seed.wrapping_add(2))?,
    ));
    out.push(NamedGraph::new(
        format!("wheel_n{}", 4000 * scale),
        wheel(4000 * scale)?,
    ));
    out.push(NamedGraph::new(
        format!("lattice_{}x{}", 60 * scale, 60 * scale),
        triangular_lattice(60 * scale, 60 * scale)?,
    ));
    out.push(NamedGraph::new(
        format!("book_p{}", 3000 * scale),
        book(3000 * scale)?,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::triangles::count_triangles;

    #[test]
    fn standard_suite_builds_and_is_deterministic() {
        let a = standard_suite(1, 7).unwrap();
        let b = standard_suite(1, 7).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.graph.edges(), y.graph.edges());
            assert!(x.graph.num_edges() > 0);
        }
    }

    #[test]
    fn standard_suite_has_triangles_everywhere_except_maybe_gnm() {
        let suite = standard_suite(1, 11).unwrap();
        for named in &suite {
            if named.name.starts_with("gnm") {
                continue; // sparse G(n,m) may have few triangles; that's fine
            }
            assert!(
                count_triangles(&named.graph) > 0,
                "{} should contain triangles",
                named.name
            );
        }
    }
}
