//! The Section 6 lower-bound gadget family.
//!
//! The paper proves the `Ω(mκ/T)` lower bound by reducing from the promise
//! set-disjointness problem `disj^N_{N/3}`: Alice holds `x ∈ {0,1}^N`, Bob
//! holds `y ∈ {0,1}^N`, each with exactly `N/3` ones, and they must decide
//! whether some index has `x_i = y_i = 1`.
//!
//! The reduction graph `G(x, y)` consists of
//!
//! * a fixed complete bipartite graph on `A ∪ B` with `|A| = |B| = p`,
//! * `N` blocks `V_1 … V_N` of `q` vertices each,
//! * for every `i` with `x_i = 1`: all edges between `V_i` and `A`,
//! * for every `i` with `y_i = 1`: all edges between `V_i` and `B`.
//!
//! The graph is triangle-free iff `x` and `y` are disjoint; otherwise it has
//! at least `p²q` triangles. Its degeneracy is `p` in the YES (disjoint)
//! case and at most `2p` in the NO case. Setting `p = κ` and `q = κ^{r−2}`
//! realizes instances with `T = κ^r` and `m = Θ(Npq)`, for which any
//! constant-pass algorithm needs `Ω(mκ/T)` bits.
//!
//! The generator below builds both the disjointness instances and the
//! reduction graphs, so experiment E5 can measure how estimation accuracy
//! decays as the space budget drops below `mκ/T`.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A promise set-disjointness instance: two `N`-bit strings with exactly
/// `N/3` ones each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjointnessInstance {
    /// Alice's characteristic vector.
    pub x: Vec<bool>,
    /// Bob's characteristic vector.
    pub y: Vec<bool>,
}

impl DisjointnessInstance {
    /// Generates a YES instance (disjoint supports ⇒ triangle-free graph)
    /// with universe size `n` (rounded up to a multiple of 3).
    pub fn yes(n: usize, seed: u64) -> Self {
        let n = round_up_to_multiple_of_3(n);
        let third = n / 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let mut x = vec![false; n];
        let mut y = vec![false; n];
        for &i in perm.iter().take(third) {
            x[i] = true;
        }
        for &i in perm.iter().skip(third).take(third) {
            y[i] = true;
        }
        DisjointnessInstance { x, y }
    }

    /// Generates a NO instance (exactly `overlap ≥ 1` common indices ⇒ at
    /// least `overlap · p²q` triangles) with universe size `n`.
    pub fn no(n: usize, overlap: usize, seed: u64) -> Self {
        let n = round_up_to_multiple_of_3(n);
        let third = n / 3;
        let overlap = overlap.clamp(1, third);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let mut x = vec![false; n];
        let mut y = vec![false; n];
        // `overlap` shared indices, then disjoint remainders for both sides.
        for &i in perm.iter().take(overlap) {
            x[i] = true;
            y[i] = true;
        }
        for &i in perm.iter().skip(overlap).take(third - overlap) {
            x[i] = true;
        }
        for &i in perm.iter().skip(third).take(third - overlap) {
            y[i] = true;
        }
        DisjointnessInstance { x, y }
    }

    /// Universe size `N`.
    pub fn universe(&self) -> usize {
        self.x.len()
    }

    /// Number of indices where both strings are 1.
    pub fn intersection_size(&self) -> usize {
        self.x
            .iter()
            .zip(self.y.iter())
            .filter(|(&a, &b)| a && b)
            .count()
    }

    /// Whether this is a YES (disjoint) instance.
    pub fn is_disjoint(&self) -> bool {
        self.intersection_size() == 0
    }
}

fn round_up_to_multiple_of_3(n: usize) -> usize {
    let n = n.max(3);
    n.div_ceil(3) * 3
}

/// The Section 6 reduction graph, parameterized by the bipartite side size
/// `p` (= target degeneracy κ) and block size `q` (= κ^{r−2}).
#[derive(Debug, Clone)]
pub struct LowerBoundGadget {
    /// Side size of the fixed complete bipartite core (`|A| = |B| = p`).
    pub p: usize,
    /// Size of each block `V_i`.
    pub q: usize,
    /// The disjointness instance the graph encodes.
    pub instance: DisjointnessInstance,
    /// The reduction graph.
    pub graph: CsrGraph,
}

impl LowerBoundGadget {
    /// Builds the reduction graph for a given disjointness instance.
    ///
    /// Vertex layout: `A = 0..p`, `B = p..2p`, block `V_i` occupies
    /// `2p + i·q .. 2p + (i+1)·q`.
    ///
    /// # Errors
    /// Returns an error if `p == 0` or `q == 0`.
    pub fn build(p: usize, q: usize, instance: DisjointnessInstance) -> Result<Self> {
        if p == 0 || q == 0 {
            return Err(GraphError::invalid_parameter(
                "lower_bound: p and q must be positive",
            ));
        }
        let n_blocks = instance.universe();
        let total_vertices = 2 * p + n_blocks * q;
        let mut b = GraphBuilder::with_vertices(total_vertices);

        let a_side = |i: usize| i as u32;
        let b_side = |i: usize| (p + i) as u32;
        let block_vertex = |block: usize, j: usize| (2 * p + block * q + j) as u32;

        // Fixed part: complete bipartite A x B.
        for i in 0..p {
            for j in 0..p {
                b.add_edge_raw(a_side(i), b_side(j));
            }
        }
        // Alice's edges: V_i x A whenever x_i = 1.
        for (block, &bit) in instance.x.iter().enumerate() {
            if bit {
                for j in 0..q {
                    for i in 0..p {
                        b.add_edge_raw(block_vertex(block, j), a_side(i));
                    }
                }
            }
        }
        // Bob's edges: V_i x B whenever y_i = 1.
        for (block, &bit) in instance.y.iter().enumerate() {
            if bit {
                for j in 0..q {
                    for i in 0..p {
                        b.add_edge_raw(block_vertex(block, j), b_side(i));
                    }
                }
            }
        }

        Ok(LowerBoundGadget {
            p,
            q,
            instance,
            graph: b.build(),
        })
    }

    /// Convenience: builds the YES-instance gadget (triangle-free).
    pub fn yes_instance(p: usize, q: usize, universe: usize, seed: u64) -> Result<Self> {
        Self::build(p, q, DisjointnessInstance::yes(universe, seed))
    }

    /// Convenience: builds a NO-instance gadget with the given overlap
    /// (at least `overlap · p² · q` triangles).
    pub fn no_instance(
        p: usize,
        q: usize,
        universe: usize,
        overlap: usize,
        seed: u64,
    ) -> Result<Self> {
        Self::build(p, q, DisjointnessInstance::no(universe, overlap, seed))
    }

    /// The number of triangles guaranteed by the construction:
    /// `intersection · p² · q` (each common block contributes a full
    /// `V_i × A × B` family... each triangle uses one vertex of `V_i`, one of
    /// `A`, one of `B`).
    pub fn guaranteed_triangles(&self) -> u64 {
        self.instance.intersection_size() as u64 * (self.p as u64) * (self.p as u64) * self.q as u64
    }

    /// The paper's parameterization: given target degeneracy `κ` and exponent
    /// `r ≥ 2` (so `T = κ^r`), returns `(p, q) = (κ, κ^{r−2})`.
    pub fn parameters_for(kappa: usize, r: u32) -> (usize, usize) {
        let q = if r <= 2 {
            1
        } else {
            kappa.saturating_pow(r - 2).max(1)
        };
        (kappa.max(1), q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;
    use degentri_graph::triangles::count_triangles;

    #[test]
    fn disjointness_instances_respect_promise() {
        let yes = DisjointnessInstance::yes(30, 1);
        assert_eq!(yes.universe(), 30);
        assert!(yes.is_disjoint());
        assert_eq!(yes.x.iter().filter(|&&b| b).count(), 10);
        assert_eq!(yes.y.iter().filter(|&&b| b).count(), 10);

        let no = DisjointnessInstance::no(30, 2, 1);
        assert_eq!(no.intersection_size(), 2);
        assert_eq!(no.x.iter().filter(|&&b| b).count(), 10);
        assert_eq!(no.y.iter().filter(|&&b| b).count(), 10);
    }

    #[test]
    fn universe_rounds_up() {
        assert_eq!(DisjointnessInstance::yes(10, 1).universe(), 12);
        assert_eq!(DisjointnessInstance::yes(1, 1).universe(), 3);
    }

    #[test]
    fn yes_gadget_is_triangle_free() {
        let g = LowerBoundGadget::yes_instance(4, 3, 12, 7).unwrap();
        assert_eq!(count_triangles(&g.graph), 0);
        assert_eq!(g.guaranteed_triangles(), 0);
        // Degeneracy equals p in the YES case.
        assert_eq!(degeneracy(&g.graph), 4);
    }

    #[test]
    fn no_gadget_has_promised_triangles() {
        let g = LowerBoundGadget::no_instance(4, 3, 12, 1, 7).unwrap();
        let t = count_triangles(&g.graph);
        assert_eq!(t, g.guaranteed_triangles());
        assert_eq!(t, 4 * 4 * 3);
        // Degeneracy is at most 2p in the NO case.
        let k = degeneracy(&g.graph);
        assert!((4..=8).contains(&k), "κ = {k}");
    }

    #[test]
    fn overlap_scales_triangles() {
        let one = LowerBoundGadget::no_instance(3, 2, 15, 1, 5).unwrap();
        let three = LowerBoundGadget::no_instance(3, 2, 15, 3, 5).unwrap();
        assert_eq!(count_triangles(&one.graph), 18);
        assert_eq!(count_triangles(&three.graph), 54);
    }

    #[test]
    fn vertex_and_edge_counts_match_formula() {
        let (p, q, universe) = (5usize, 4usize, 15usize);
        let g = LowerBoundGadget::yes_instance(p, q, universe, 3).unwrap();
        // n = 2p + Nq
        assert_eq!(g.graph.num_vertices(), 2 * p + universe * q);
        // m = p^2 + 2 * (N/3) * p * q  (each side contributes N/3 blocks)
        assert_eq!(g.graph.num_edges(), p * p + 2 * (universe / 3) * p * q);
    }

    #[test]
    fn parameterization_matches_paper() {
        assert_eq!(LowerBoundGadget::parameters_for(5, 2), (5, 1));
        assert_eq!(LowerBoundGadget::parameters_for(5, 3), (5, 5));
        assert_eq!(LowerBoundGadget::parameters_for(5, 4), (5, 25));
        // κ = 0 is clamped to 1 so the gadget stays constructible.
        assert_eq!(LowerBoundGadget::parameters_for(0, 4), (1, 1));
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(LowerBoundGadget::build(0, 3, DisjointnessInstance::yes(6, 1)).is_err());
        assert!(LowerBoundGadget::build(3, 0, DisjointnessInstance::yes(6, 1)).is_err());
    }
}
