//! Sparse base graphs with a controlled number of planted triangles.
//!
//! The space-scaling experiment (E2) needs graph families where `m`, `κ` and
//! `T` can be dialed independently, so that the measured space can be
//! regressed against the predicted `mκ/T`. A random `d`-regular-ish base
//! graph (degeneracy ≈ d, essentially triangle-free for large n) plus `t`
//! planted vertex-disjoint triangles gives exactly that control.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates a graph with `n` vertices: a sparse random "background" where
/// every vertex gets about `base_degree` random neighbors, plus `triangles`
/// planted triangles on randomly chosen disjoint vertex triples.
///
/// The planted triangles dominate the triangle count for sparse backgrounds
/// (the background is locally tree-like), and the degeneracy stays
/// `Θ(base_degree)`.
///
/// # Errors
/// Returns an error if `n < 3`, `base_degree == 0`, or more triangles are
/// requested than disjoint triples exist (`triangles > n / 3`).
pub fn planted_triangles(
    n: usize,
    base_degree: usize,
    triangles: usize,
    seed: u64,
) -> Result<CsrGraph> {
    if n < 3 {
        return Err(GraphError::invalid_parameter(
            "planted: need at least 3 vertices",
        ));
    }
    if base_degree == 0 {
        return Err(GraphError::invalid_parameter(
            "planted: base_degree must be positive (use 1 for an almost-empty background)",
        ));
    }
    if triangles > n / 3 {
        return Err(GraphError::invalid_parameter(format!(
            "planted: cannot place {triangles} disjoint triangles on {n} vertices"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_vertices(n);

    // Background: each vertex picks `base_degree` random partners. This is
    // the standard "random multigraph then simplify" construction; the
    // resulting degeneracy concentrates around base_degree.
    for u in 0..n as u32 {
        for _ in 0..base_degree {
            let v = rng.gen_range(0..n as u32);
            if v != u {
                builder.add_edge_raw(u, v);
            }
        }
    }

    // Planted triangles on disjoint triples of a random permutation.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);
    for i in 0..triangles {
        let a = perm[3 * i];
        let b = perm[3 * i + 1];
        let c = perm[3 * i + 2];
        builder.add_edge_raw(a, b);
        builder.add_edge_raw(b, c);
        builder.add_edge_raw(a, c);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;
    use degentri_graph::triangles::count_triangles;

    #[test]
    fn planted_triangles_dominate_count() {
        let t = 200usize;
        let g = planted_triangles(6000, 2, t, 17).unwrap();
        let count = count_triangles(&g);
        // The background G(n, ~2/n-ish) contributes o(1) triangles per vertex;
        // allow some slack but require the planted count to dominate.
        assert!(count >= t as u64, "count {count} < planted {t}");
        assert!(
            count <= (t as u64) + (t as u64) / 2 + 30,
            "count {count} too far above planted {t}"
        );
    }

    #[test]
    fn degeneracy_tracks_base_degree() {
        let sparse = planted_triangles(3000, 2, 50, 3).unwrap();
        let dense = planted_triangles(3000, 10, 50, 3).unwrap();
        assert!(degeneracy(&sparse) < degeneracy(&dense));
        assert!(degeneracy(&sparse) <= 2 * 2 + 2);
        assert!(degeneracy(&dense) <= 2 * 10 + 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = planted_triangles(1000, 3, 30, 9).unwrap();
        let b = planted_triangles(1000, 3, 30, 9).unwrap();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(planted_triangles(2, 2, 0, 1).is_err());
        assert!(planted_triangles(10, 0, 1, 1).is_err());
        assert!(planted_triangles(10, 2, 4, 1).is_err());
    }
}
