//! R-MAT (recursive matrix) random graphs.
//!
//! R-MAT reproduces the skewed, community-ish edge distribution of web and
//! social graphs and is the standard synthetic workload of the Graph500
//! benchmark. We include it so that the experiment suite covers a family
//! with heavier degeneracy than preferential attachment but still far below
//! the `√m` worst case.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an R-MAT graph with `2^scale` vertices and (approximately)
/// `edges` distinct edges, with quadrant probabilities `(a, b, c)`
/// (`d = 1 − a − b − c`).
///
/// Duplicate edges and self-loops produced by the recursive process are
/// dropped, so the final edge count can be slightly below `edges`.
///
/// # Errors
/// Returns an error if `scale == 0`, `edges == 0`, any probability is
/// negative, or `a + b + c > 1`.
pub fn rmat(scale: u32, edges: usize, a: f64, b: f64, c: f64, seed: u64) -> Result<CsrGraph> {
    if scale == 0 || scale > 30 {
        return Err(GraphError::invalid_parameter(format!(
            "rmat: scale must be in 1..=30, got {scale}"
        )));
    }
    if edges == 0 {
        return Err(GraphError::invalid_parameter(
            "rmat: edges must be positive",
        ));
    }
    if a < 0.0 || b < 0.0 || c < 0.0 || a + b + c > 1.0 + 1e-12 {
        return Err(GraphError::invalid_parameter(format!(
            "rmat: invalid quadrant probabilities a={a} b={b} c={c}"
        )));
    }
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_vertices(n);

    // Attempt a bounded number of drops: each attempt descends `scale` levels.
    let attempts = edges.saturating_mul(4).max(edges + 16);
    let mut produced = 0usize;
    for _ in 0..attempts {
        if produced >= edges {
            break;
        }
        let (mut lo_u, mut hi_u) = (0usize, n);
        let (mut lo_v, mut hi_v) = (0usize, n);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (right, down) = if r < a {
                (false, false)
            } else if r < a + b {
                (true, false)
            } else if r < a + b + c {
                (false, true)
            } else {
                (true, true)
            };
            let mid_u = (lo_u + hi_u) / 2;
            let mid_v = (lo_v + hi_v) / 2;
            if down {
                lo_u = mid_u;
            } else {
                hi_u = mid_u;
            }
            if right {
                lo_v = mid_v;
            } else {
                hi_v = mid_v;
            }
        }
        let u = lo_u as u32;
        let v = lo_v as u32;
        if u != v && builder.add_edge_raw(u, v) {
            produced += 1;
        }
    }
    Ok(builder.build())
}

/// R-MAT with the Graph500 default probabilities `(0.57, 0.19, 0.19)`.
pub fn rmat_graph500(scale: u32, edges: usize, seed: u64) -> Result<CsrGraph> {
    rmat(scale, edges, 0.57, 0.19, 0.19, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_produces_roughly_requested_edges() {
        let g = rmat_graph500(12, 20_000, 5).unwrap();
        assert_eq!(g.num_vertices(), 4096);
        assert!(g.num_edges() > 10_000, "got {}", g.num_edges());
        assert!(g.num_edges() <= 20_000);
    }

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat_graph500(10, 5000, 3).unwrap();
        let b = rmat_graph500(10, 5000, 3).unwrap();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn skewed_quadrants_give_skewed_degrees() {
        let skewed = rmat(12, 15_000, 0.7, 0.1, 0.1, 7).unwrap();
        let uniform = rmat(12, 15_000, 0.25, 0.25, 0.25, 7).unwrap();
        assert!(skewed.max_degree() > uniform.max_degree());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(rmat(0, 100, 0.25, 0.25, 0.25, 1).is_err());
        assert!(rmat(40, 100, 0.25, 0.25, 0.25, 1).is_err());
        assert!(rmat(10, 0, 0.25, 0.25, 0.25, 1).is_err());
        assert!(rmat(10, 100, 0.6, 0.3, 0.3, 1).is_err());
        assert!(rmat(10, 100, -0.1, 0.3, 0.3, 1).is_err());
    }
}
