//! Triangular lattice graphs.
//!
//! A planar, constant-degeneracy family that is *triangle-dense*
//! (`T = Θ(n)`): each unit cell of the lattice contributes two triangles.
//! Together with the wheel it covers the "planar and triangle-rich" corner
//! of the parameter space where the paper's bound shines.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};

/// A `rows × cols` triangular lattice: the square grid plus one diagonal per
/// unit cell.
///
/// # Errors
/// Returns an error if either dimension is 0.
pub fn triangular_lattice(rows: usize, cols: usize) -> Result<CsrGraph> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::invalid_parameter(
            "triangular_lattice: dimensions must be positive",
        ));
    }
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::with_vertices(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge_raw(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge_raw(idx(r, c), idx(r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols {
                b.add_edge_raw(idx(r, c), idx(r + 1, c + 1));
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;
    use degentri_graph::triangles::count_triangles;

    #[test]
    fn lattice_structure() {
        let (rows, cols) = (6usize, 9usize);
        let g = triangular_lattice(rows, cols).unwrap();
        assert_eq!(g.num_vertices(), rows * cols);
        let horizontal = rows * (cols - 1);
        let vertical = (rows - 1) * cols;
        let diagonal = (rows - 1) * (cols - 1);
        assert_eq!(g.num_edges(), horizontal + vertical + diagonal);
        // Each unit cell holds exactly two triangles.
        assert_eq!(count_triangles(&g), 2 * diagonal as u64);
        // Planar => degeneracy <= 5; this lattice has κ = 3.
        assert!(degeneracy(&g) <= 5);
        assert_eq!(degeneracy(&g), 3);
    }

    #[test]
    fn thin_lattices() {
        let g = triangular_lattice(1, 8).unwrap();
        assert_eq!(count_triangles(&g), 0);
        let g = triangular_lattice(2, 2).unwrap();
        assert_eq!(count_triangles(&g), 2);
        assert!(triangular_lattice(0, 3).is_err());
    }
}
