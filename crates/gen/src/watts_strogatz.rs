//! Watts–Strogatz small-world graphs.
//!
//! The paper motivates its parameterization with the observation that
//! real-world graphs combine low sparsity with high triangle density,
//! citing the small-world model of Watts and Strogatz. The model starts
//! from a ring lattice (every vertex adjacent to its `k/2` nearest
//! neighbors on each side — a `k`-regular graph with `3n·⌊k/2⌋·(⌊k/2⌋−1)/2`
//! triangles and degeneracy exactly `k`) and rewires each edge with
//! probability `β`, trading clustering for short paths. For small `β` the
//! graph keeps `Θ(nk²)` triangles at degeneracy `O(k)`, which puts it
//! squarely in the regime where `mκ/T` is small.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Watts–Strogatz small-world graph on `n` vertices with mean degree
/// `k` (rounded down to an even number) and rewiring probability `beta`.
///
/// # Errors
/// Returns an error if `n < 4`, `k < 2`, `k ≥ n`, or `beta ∉ [0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<CsrGraph> {
    if n < 4 {
        return Err(GraphError::invalid_parameter(format!(
            "watts_strogatz: need at least 4 vertices, got {n}"
        )));
    }
    let half = k / 2;
    if half == 0 {
        return Err(GraphError::invalid_parameter(
            "watts_strogatz: mean degree must be at least 2",
        ));
    }
    if k >= n {
        return Err(GraphError::invalid_parameter(format!(
            "watts_strogatz: mean degree {k} must be smaller than n = {n}"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::invalid_parameter(
            "watts_strogatz: beta must lie in [0, 1]",
        ));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_vertices(n);
    for v in 0..n as u32 {
        for offset in 1..=half as u32 {
            let w = (v + offset) % n as u32;
            if rng.gen_bool(beta) {
                // Rewire the far endpoint to a uniform random vertex,
                // avoiding self-loops; duplicate edges are dropped by the
                // builder (the standard implementation simply skips them).
                let mut target = rng.gen_range(0..n as u32);
                let mut attempts = 0;
                while (target == v || builder.contains(VertexId::new(v), VertexId::new(target)))
                    && attempts < 16
                {
                    target = rng.gen_range(0..n as u32);
                    attempts += 1;
                }
                if target != v {
                    builder.add_edge_raw(v, target);
                } else {
                    builder.add_edge_raw(v, w);
                }
            } else {
                builder.add_edge_raw(v, w);
            }
        }
    }
    builder.build_non_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;
    use degentri_graph::triangles::count_triangles;

    #[test]
    fn rejects_bad_parameters() {
        assert!(watts_strogatz(3, 2, 0.1, 1).is_err());
        assert!(watts_strogatz(100, 1, 0.1, 1).is_err());
        assert!(watts_strogatz(100, 100, 0.1, 1).is_err());
        assert!(watts_strogatz(100, 6, 1.5, 1).is_err());
    }

    #[test]
    fn unrewired_lattice_has_predictable_structure() {
        let n = 200;
        let k = 6;
        let g = watts_strogatz(n, k, 0.0, 7).unwrap();
        assert_eq!(g.num_vertices(), n);
        assert_eq!(g.num_edges(), n * (k / 2));
        // Each vertex forms triangles with its near neighbors: the ring
        // lattice with k = 6 has 3 triangles per vertex (as the leftmost
        // member), so 3n in total.
        assert_eq!(count_triangles(&g), 3 * n as u64);
        // The lattice is k-regular, so the whole graph is a subgraph of
        // minimum degree k and the degeneracy is exactly k.
        assert_eq!(degeneracy(&g), k);
    }

    #[test]
    fn deterministic_given_the_seed() {
        let a = watts_strogatz(300, 8, 0.2, 11).unwrap();
        let b = watts_strogatz(300, 8, 0.2, 11).unwrap();
        let c = watts_strogatz(300, 8, 0.2, 12).unwrap();
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn mild_rewiring_keeps_triangles_and_low_degeneracy() {
        let g = watts_strogatz(1000, 10, 0.1, 3).unwrap();
        let t = count_triangles(&g);
        let kappa = degeneracy(&g);
        assert!(t > 1000, "small-world graphs stay triangle rich, got {t}");
        assert!(kappa <= 12, "degeneracy stays O(k), got {kappa}");
    }

    #[test]
    fn heavy_rewiring_reduces_clustering() {
        let ordered = watts_strogatz(800, 8, 0.0, 5).unwrap();
        let random = watts_strogatz(800, 8, 1.0, 5).unwrap();
        assert!(count_triangles(&random) < count_triangles(&ordered));
    }
}
