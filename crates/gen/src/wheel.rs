//! The wheel graph of Section 1.1.
//!
//! A hub vertex connected to every vertex of an `(n−1)`-cycle. It is planar,
//! so `κ = 3`, and has `m = 2(n−1)` edges and `T = n − 1` triangles (for
//! `n ≥ 5`), i.e. `m = T = Θ(n)` and `mκ/T = Θ(1)`: the paper's showcase of
//! a graph where its bound is polylogarithmic while every prior bound is
//! `Ω(√n)`.

use degentri_graph::{CsrGraph, GraphBuilder, GraphError, Result};

/// The wheel graph on `n` vertices: hub `0`, rim cycle `1..n`.
///
/// # Errors
/// Returns an error if `n < 4` (a wheel needs a rim of length at least 3).
pub fn wheel(n: usize) -> Result<CsrGraph> {
    if n < 4 {
        return Err(GraphError::invalid_parameter(format!(
            "wheel: need at least 4 vertices, got {n}"
        )));
    }
    let rim = (n - 1) as u32;
    let mut b = GraphBuilder::with_vertices(n);
    for i in 1..=rim {
        b.add_edge_raw(0, i);
        let next = if i == rim { 1 } else { i + 1 };
        b.add_edge_raw(i, next);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::degeneracy::degeneracy;
    use degentri_graph::triangles::count_triangles;

    #[test]
    fn wheel_structure() {
        for n in [5usize, 10, 101, 1000] {
            let g = wheel(n).unwrap();
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), 2 * (n - 1));
            assert_eq!(count_triangles(&g), (n - 1) as u64);
            assert_eq!(degeneracy(&g), 3);
        }
    }

    #[test]
    fn smallest_wheel_is_k4() {
        let g = wheel(4).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(count_triangles(&g), 4);
    }

    #[test]
    fn rejects_tiny_wheels() {
        assert!(wheel(3).is_err());
        assert!(wheel(0).is_err());
    }
}
