//! Property-based tests for the generators: structural invariants hold over
//! randomized parameter ranges, and determinism is preserved.

use degentri_gen::*;
use degentri_graph::degeneracy::degeneracy;
use degentri_graph::triangles::count_triangles;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gnp_edge_count_within_range(n in 2usize..120, p in 0.0f64..1.0, seed in 0u64..1000) {
        let g = gnp(n, p, seed).unwrap();
        prop_assert_eq!(g.num_vertices(), n);
        let max_edges = n * (n - 1) / 2;
        prop_assert!(g.num_edges() <= max_edges);
    }

    #[test]
    fn gnm_has_exact_edges(n in 3usize..80, seed in 0u64..1000) {
        let max_edges = n * (n - 1) / 2;
        let m = max_edges / 2;
        let g = gnm(n, m, seed).unwrap();
        prop_assert_eq!(g.num_edges(), m);
    }

    #[test]
    fn ba_degeneracy_equals_k(n in 10usize..200, k in 1usize..6, seed in 0u64..500) {
        prop_assume!(n > k + 1);
        let g = barabasi_albert(n, k, seed).unwrap();
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert_eq!(degeneracy(&g), k);
    }

    #[test]
    fn wheel_invariants(n in 4usize..500) {
        let g = wheel(n).unwrap();
        prop_assert_eq!(g.num_edges(), 2 * (n - 1));
        let expected_triangles = if n == 4 { 4 } else { (n - 1) as u64 };
        prop_assert_eq!(count_triangles(&g), expected_triangles);
        prop_assert_eq!(degeneracy(&g), 3);
    }

    #[test]
    fn book_and_friendship_counts(k in 1usize..300) {
        let b = book(k).unwrap();
        prop_assert_eq!(count_triangles(&b), k as u64);
        let f = friendship(k).unwrap();
        prop_assert_eq!(count_triangles(&f), k as u64);
        prop_assert_eq!(degeneracy(&f), 2);
    }

    #[test]
    fn lattice_triangles(rows in 1usize..25, cols in 1usize..25) {
        let g = triangular_lattice(rows, cols).unwrap();
        let cells = rows.saturating_sub(1) * cols.saturating_sub(1);
        prop_assert_eq!(count_triangles(&g), 2 * cells as u64);
    }

    #[test]
    fn gadget_triangle_promise(p in 1usize..6, q in 1usize..5, overlap in 1usize..4, seed in 0u64..100) {
        let universe = 12usize;
        let yes = LowerBoundGadget::yes_instance(p, q, universe, seed).unwrap();
        prop_assert_eq!(count_triangles(&yes.graph), 0);
        let no = LowerBoundGadget::no_instance(p, q, universe, overlap, seed).unwrap();
        prop_assert_eq!(count_triangles(&no.graph), no.guaranteed_triangles());
        prop_assert!(no.guaranteed_triangles() >= (p * p * q) as u64);
        // Degeneracy stays within the paper's claimed sandwich [p, 2p].
        let k = degeneracy(&no.graph);
        prop_assert!(k >= p && k <= 2 * p, "κ = {} not in [{}, {}]", k, p, 2 * p);
    }

    #[test]
    fn generators_are_deterministic(seed in 0u64..200) {
        let a = gnp(60, 0.1, seed).unwrap();
        let b = gnp(60, 0.1, seed).unwrap();
        prop_assert_eq!(a.edges(), b.edges());
        let a = barabasi_albert(50, 3, seed).unwrap();
        let b = barabasi_albert(50, 3, seed).unwrap();
        prop_assert_eq!(a.edges(), b.edges());
        let a = planted_triangles(60, 2, 10, seed).unwrap();
        let b = planted_triangles(60, 2, 10, seed).unwrap();
        prop_assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn planted_triangle_floor(n in 30usize..300, seed in 0u64..200) {
        let t = n / 5;
        let g = planted_triangles(n, 1, t, seed).unwrap();
        prop_assert!(count_triangles(&g) >= t as u64);
    }
}
