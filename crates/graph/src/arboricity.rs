//! Arboricity bounds.
//!
//! The arboricity `α(G)` is the minimum number of forests needed to cover
//! `E(G)`. The paper (Section 1.1) notes that all its results can be stated
//! in terms of arboricity because `α ≤ κ ≤ 2α − 1`. Computing arboricity
//! exactly requires matroid machinery; for the experiments we only need the
//! sandwich bounds, which are cheap:
//!
//! * **lower bound** (Nash–Williams): `α ≥ ⌈m' / (n' − 1)⌉` for every
//!   subgraph with `n'` vertices and `m'` edges. We evaluate the bound on the
//!   densest core returned by the core decomposition (and on the whole
//!   graph), which is where it is tightest in practice.
//! * **upper bound**: `α ≤ κ` (a degeneracy ordering yields an edge
//!   partition into `κ` forests).

use crate::csr::CsrGraph;
use crate::degeneracy::CoreDecomposition;

/// Lower and upper bounds on the arboricity of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArboricityBounds {
    /// A certified lower bound on `α` (Nash–Williams density).
    pub lower: usize,
    /// A certified upper bound on `α` (the degeneracy `κ`).
    pub upper: usize,
}

impl ArboricityBounds {
    /// Computes the bounds for `g`.
    pub fn compute(g: &CsrGraph) -> Self {
        let decomposition = CoreDecomposition::compute(g);
        Self::from_decomposition(g, &decomposition)
    }

    /// Computes the bounds reusing an existing core decomposition.
    pub fn from_decomposition(g: &CsrGraph, decomposition: &CoreDecomposition) -> Self {
        let kappa = decomposition.degeneracy;
        if g.num_edges() == 0 {
            return ArboricityBounds { lower: 0, upper: 0 };
        }

        // Whole-graph Nash–Williams density.
        let mut lower = density_lower_bound(g.num_vertices(), g.num_edges());

        // Density of the maximum core: the subgraph induced by vertices of
        // core number equal to κ has minimum degree κ, so it is dense and
        // often gives a much better bound.
        let keep: Vec<bool> = (0..g.num_vertices())
            .map(|v| decomposition.core_numbers[v] == kappa)
            .collect();
        if keep.iter().any(|&k| k) {
            let (core_sub, _) = g.induced_subgraph(&keep);
            if core_sub.num_edges() > 0 {
                lower = lower.max(density_lower_bound(
                    core_sub.num_vertices(),
                    core_sub.num_edges(),
                ));
            }
        }

        // κ-orientation bound: a graph of degeneracy κ decomposes into κ
        // forests, and arboricity is also at least ⌈κ/2⌉ + something; we only
        // claim the sandwich α ≤ κ and α ≥ ceil((κ+1)/2) is NOT valid in
        // general, so the certified lower bound stays the density bound.
        ArboricityBounds {
            lower: lower.min(kappa.max(1)),
            upper: kappa,
        }
    }

    /// Returns `true` if the bounds are consistent (`lower ≤ upper`).
    pub fn is_consistent(&self) -> bool {
        self.lower <= self.upper
    }
}

fn density_lower_bound(n: usize, m: usize) -> usize {
    if n <= 1 || m == 0 {
        return if m > 0 { m } else { 0 };
    }
    // ceil(m / (n - 1))
    m.div_ceil(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn complete(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::with_vertices(n as usize);
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge_raw(i, j);
            }
        }
        b.build()
    }

    #[test]
    fn tree_has_arboricity_one() {
        let g = CsrGraph::from_raw_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let b = ArboricityBounds::compute(&g);
        assert_eq!(b.lower, 1);
        assert_eq!(b.upper, 1);
        assert!(b.is_consistent());
    }

    #[test]
    fn complete_graph_bounds() {
        // α(K_n) = ceil(n/2); κ(K_n) = n-1.
        let g = complete(8);
        let b = ArboricityBounds::compute(&g);
        assert!(b.lower >= 4, "Nash-Williams should give ceil(28/7) = 4");
        assert_eq!(b.upper, 7);
        assert!(b.is_consistent());
    }

    #[test]
    fn empty_graph_bounds() {
        let g = GraphBuilder::with_vertices(3).build();
        let b = ArboricityBounds::compute(&g);
        assert_eq!(b, ArboricityBounds { lower: 0, upper: 0 });
    }

    #[test]
    fn sandwich_alpha_le_kappa_le_2alpha_minus_1() {
        // For any graph the paper's sandwich requires lower ≤ κ and
        // κ ≤ 2α − 1 ≤ 2·upper − 1; with upper = κ that is trivially true,
        // but check the lower bound respects κ too.
        for g in [
            complete(5),
            complete(9),
            CsrGraph::from_raw_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4)]),
        ] {
            let b = ArboricityBounds::compute(&g);
            assert!(b.is_consistent());
            assert!(b.lower <= b.upper);
        }
    }

    #[test]
    fn cycle_bounds() {
        let mut builder = GraphBuilder::new();
        for i in 0..10u32 {
            builder.add_edge_raw(i, (i + 1) % 10);
        }
        let g = builder.build();
        let b = ArboricityBounds::compute(&g);
        // A cycle has arboricity 2 and degeneracy 2; Nash-Williams on the
        // whole graph gives ceil(10/9) = 2.
        assert_eq!(b.upper, 2);
        assert!(b.lower >= 1 && b.lower <= 2);
    }
}
