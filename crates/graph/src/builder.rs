//! Incremental construction of simple undirected graphs.
//!
//! [`GraphBuilder`] accepts edges in any order, possibly with duplicates and
//! self-loops, and produces a [`CsrGraph`] over a dense vertex range `0..n`.
//! Generators and the edge-list reader all funnel through it, so every graph
//! in the workspace satisfies the same invariants: no self-loops, no parallel
//! edges, sorted adjacency lists.

use rustc_hash::FxHashSet;

use crate::csr::CsrGraph;
use crate::edge::Edge;
use crate::error::GraphError;
use crate::vertex::VertexId;
use crate::Result;

/// Builder for simple undirected graphs.
///
/// ```
/// use degentri_graph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge_raw(0, 1);
/// b.add_edge_raw(1, 2);
/// b.add_edge_raw(2, 0);
/// b.add_edge_raw(0, 1); // duplicate: ignored
/// b.add_edge_raw(3, 3); // self-loop: ignored (and vertex 3 is not recorded)
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(VertexId::new(0)), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    seen: FxHashSet<Edge>,
    max_vertex: Option<u32>,
    min_vertices: usize,
    dropped_self_loops: usize,
    dropped_duplicates: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Creates an empty builder that will produce a graph with at least
    /// `n` vertices (vertices without incident edges stay isolated).
    pub fn with_vertices(n: usize) -> Self {
        GraphBuilder {
            min_vertices: n,
            ..GraphBuilder::default()
        }
    }

    /// Creates a builder with capacity for `m` edges.
    pub fn with_capacity(m: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(m),
            seen: FxHashSet::with_capacity_and_hasher(m, Default::default()),
            ..GraphBuilder::default()
        }
    }

    /// Ensures the built graph has at least `n` vertices.
    pub fn ensure_vertices(&mut self, n: usize) {
        self.min_vertices = self.min_vertices.max(n);
    }

    /// Adds an undirected edge; duplicates and self-loops are silently
    /// dropped (and tallied in [`GraphBuilder::dropped_self_loops`] /
    /// [`GraphBuilder::dropped_duplicates`]).
    ///
    /// Returns `true` if the edge was newly inserted.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) -> bool {
        if a == b {
            self.dropped_self_loops += 1;
            return false;
        }
        let e = Edge::new(a, b);
        if !self.seen.insert(e) {
            self.dropped_duplicates += 1;
            return false;
        }
        let hi = e.v().raw();
        self.max_vertex = Some(self.max_vertex.map_or(hi, |m| m.max(hi)));
        self.edges.push(e);
        true
    }

    /// Adds an edge given raw `u32` endpoints. See [`GraphBuilder::add_edge`].
    pub fn add_edge_raw(&mut self, a: u32, b: u32) -> bool {
        self.add_edge(VertexId::new(a), VertexId::new(b))
    }

    /// Adds every edge from an iterator of raw pairs.
    pub fn extend_raw<I: IntoIterator<Item = (u32, u32)>>(&mut self, iter: I) {
        for (a, b) in iter {
            self.add_edge_raw(a, b);
        }
    }

    /// Number of distinct edges currently in the builder.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of self-loops that were dropped.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of duplicate edges that were dropped.
    pub fn dropped_duplicates(&self) -> usize {
        self.dropped_duplicates
    }

    /// Returns `true` if the edge has already been added.
    pub fn contains(&self, a: VertexId, b: VertexId) -> bool {
        a != b && self.seen.contains(&Edge::new(a, b))
    }

    /// Consumes the builder and produces the CSR graph.
    ///
    /// The vertex count is `max(min_vertices, 1 + max vertex id)`, or
    /// `min_vertices` for an edgeless builder.
    pub fn build(self) -> CsrGraph {
        let n = self
            .max_vertex
            .map(|m| m as usize + 1)
            .unwrap_or(0)
            .max(self.min_vertices);
        CsrGraph::from_edges(n, self.edges)
    }

    /// Like [`GraphBuilder::build`] but fails on an empty (no vertices) graph.
    pub fn build_non_empty(self) -> Result<CsrGraph> {
        let g = self.build();
        if g.num_vertices() == 0 {
            Err(GraphError::EmptyGraph)
        } else {
            Ok(g)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_and_drops_self_loops() {
        let mut b = GraphBuilder::new();
        assert!(b.add_edge_raw(0, 1));
        assert!(!b.add_edge_raw(1, 0)); // same undirected edge
        assert!(!b.add_edge_raw(2, 2)); // self loop
        assert!(b.add_edge_raw(1, 2));
        assert_eq!(b.num_edges(), 2);
        assert_eq!(b.dropped_duplicates(), 1);
        assert_eq!(b.dropped_self_loops(), 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn with_vertices_creates_isolated_vertices() {
        let mut b = GraphBuilder::with_vertices(10);
        b.add_edge_raw(0, 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(VertexId::new(9)), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(GraphBuilder::new().build_non_empty().is_err());
    }

    #[test]
    fn contains_reports_inserted_edges() {
        let mut b = GraphBuilder::new();
        b.add_edge_raw(3, 5);
        assert!(b.contains(VertexId::new(5), VertexId::new(3)));
        assert!(!b.contains(VertexId::new(3), VertexId::new(4)));
        assert!(!b.contains(VertexId::new(3), VertexId::new(3)));
    }

    #[test]
    fn extend_raw_adds_all() {
        let mut b = GraphBuilder::with_capacity(4);
        b.extend_raw([(0, 1), (1, 2), (2, 3), (0, 1)]);
        assert_eq!(b.num_edges(), 3);
    }

    #[test]
    fn ensure_vertices_grows_only() {
        let mut b = GraphBuilder::with_vertices(5);
        b.ensure_vertices(3);
        b.ensure_vertices(8);
        let g = b.build();
        assert_eq!(g.num_vertices(), 8);
    }
}
