//! Compressed sparse row (CSR) graph representation.
//!
//! [`CsrGraph`] stores sorted adjacency lists in two flat arrays. It is the
//! ground-truth representation used by the exact algorithms (degeneracy,
//! triangle counting) and by the generators; the *streaming* algorithms never
//! get access to it — they only see an edge stream — except through the
//! narrow interfaces the paper's model allows (e.g. the degree oracle of
//! Section 4).

use crate::edge::Edge;
use crate::error::GraphError;
use crate::vertex::VertexId;
use crate::Result;

/// An immutable simple undirected graph in CSR form.
///
/// Invariants (established by [`CsrGraph::from_edges`] and preserved because
/// the type is immutable):
/// * no self-loops, no parallel edges;
/// * each adjacency list is sorted by vertex id;
/// * `offsets.len() == n + 1`, `neighbors.len() == 2 * m`;
/// * `edges` holds each undirected edge exactly once in normalized
///   (`u < v`) form, sorted lexicographically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    edges: Vec<Edge>,
}

impl CsrGraph {
    /// Builds a CSR graph with `n` vertices from a list of normalized,
    /// deduplicated edges (as produced by
    /// [`GraphBuilder`](crate::builder::GraphBuilder)).
    ///
    /// Duplicate edges or self-loops in the input would violate the
    /// invariants, so this is crate-internal; external callers go through the
    /// builder.
    pub(crate) fn from_edges(n: usize, mut edges: Vec<Edge>) -> Self {
        edges.sort_unstable();
        edges.dedup();

        let mut degree = vec![0usize; n];
        for e in &edges {
            degree[e.u().index()] += 1;
            degree[e.v().index()] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }

        let mut cursor = offsets.clone();
        let mut neighbors = vec![VertexId::default(); acc];
        for e in &edges {
            let (u, v) = e.endpoints();
            neighbors[cursor[u.index()]] = v;
            cursor[u.index()] += 1;
            neighbors[cursor[v.index()]] = u;
            cursor[v.index()] += 1;
        }

        // Each adjacency list must be sorted for binary-search adjacency
        // tests; edges were sorted lexicographically so lists for `u` are
        // already sorted for the `u < v` half, but the `v` half interleaves.
        for u in 0..n {
            neighbors[offsets[u]..offsets[u + 1]].sort_unstable();
        }

        CsrGraph {
            offsets,
            neighbors,
            edges,
        }
    }

    /// Builds a graph directly from raw `(u, v)` pairs, deduplicating and
    /// dropping self-loops. Convenience wrapper over the builder.
    pub fn from_raw_edges(n: usize, raw: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut b = crate::builder::GraphBuilder::with_vertices(n);
        b.extend_raw(raw);
        b.build()
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// The degree of an edge as defined in the paper (Section 3):
    /// `d_e = min(d_u, d_v)`.
    #[inline]
    pub fn edge_degree(&self, e: Edge) -> usize {
        self.degree(e.u()).min(self.degree(e.v()))
    }

    /// The endpoint of `e` with the smaller degree (ties broken towards the
    /// smaller vertex id), i.e. the endpoint whose neighborhood defines
    /// `N(e)` in the paper.
    #[inline]
    pub fn lower_degree_endpoint(&self, e: Edge) -> VertexId {
        if self.degree(e.u()) <= self.degree(e.v()) {
            e.u()
        } else {
            e.v()
        }
    }

    /// Sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The neighborhood `N(e)` of an edge: the neighbors of its lower-degree
    /// endpoint (Section 3 of the paper).
    #[inline]
    pub fn edge_neighborhood(&self, e: Edge) -> &[VertexId] {
        self.neighbors(self.lower_degree_endpoint(e))
    }

    /// Tests adjacency in `O(log d)` via binary search on the smaller list.
    #[inline]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        if a == b {
            return false;
        }
        let (probe, list_of) = if self.degree(a) <= self.degree(b) {
            (b, a)
        } else {
            (a, b)
        };
        self.neighbors(list_of).binary_search(&probe).is_ok()
    }

    /// Returns `true` if vertices `a`, `b`, `c` form a triangle.
    pub fn is_triangle(&self, a: VertexId, b: VertexId, c: VertexId) -> bool {
        a != b
            && b != c
            && a != c
            && self.has_edge(a, b)
            && self.has_edge(b, c)
            && self.has_edge(a, c)
    }

    /// All edges in normalized form, sorted lexicographically.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(VertexId::new)
    }

    /// Maximum degree `Δ`, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The degree vector indexed by vertex id.
    pub fn degree_vector(&self) -> Vec<usize> {
        self.vertices().map(|v| self.degree(v)).collect()
    }

    /// Sum of edge degrees `d_E = Σ_e min(d_u, d_v)` (Section 3). The
    /// Chiba–Nishizeki lemma bounds this by `2mκ`.
    pub fn edge_degree_sum(&self) -> u64 {
        self.edges.iter().map(|&e| self.edge_degree(e) as u64).sum()
    }

    /// Validates that an externally supplied vertex is within range.
    pub fn check_vertex(&self, v: VertexId) -> Result<()> {
        if v.index() < self.num_vertices() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v.raw(),
                n: self.num_vertices(),
            })
        }
    }

    /// Returns the subgraph induced by `keep[v] == true`, relabelling kept
    /// vertices to a dense range while preserving relative order. Also
    /// returns the mapping `old id -> new id`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (CsrGraph, Vec<Option<VertexId>>) {
        assert_eq!(
            keep.len(),
            self.num_vertices(),
            "keep mask length must equal n"
        );
        let mut mapping: Vec<Option<VertexId>> = vec![None; self.num_vertices()];
        let mut next = 0u32;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                mapping[i] = Some(VertexId::new(next));
                next += 1;
            }
        }
        let mut b = crate::builder::GraphBuilder::with_vertices(next as usize);
        for e in &self.edges {
            if let (Some(u), Some(v)) = (mapping[e.u().index()], mapping[e.v().index()]) {
                b.add_edge(u, v);
            }
        }
        (b.build(), mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn v(x: u32) -> VertexId {
        VertexId::new(x)
    }

    fn triangle_plus_pendant() -> CsrGraph {
        // 0-1-2 triangle with pendant 3 attached to 0.
        CsrGraph::from_raw_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
    }

    #[test]
    fn basic_counts_and_degrees() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(v(0)), 3);
        assert_eq!(g.degree(v(1)), 2);
        assert_eq!(g.degree(v(3)), 1);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.degree_vector(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn adjacency_lists_are_sorted_and_symmetric() {
        let g = triangle_plus_pendant();
        for u in g.vertices() {
            let ns = g.neighbors(u);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted");
            for &w in ns {
                assert!(g.neighbors(w).contains(&u), "symmetric");
            }
        }
    }

    #[test]
    fn has_edge_and_is_triangle() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(v(0), v(1)));
        assert!(g.has_edge(v(1), v(0)));
        assert!(!g.has_edge(v(1), v(3)));
        assert!(!g.has_edge(v(2), v(2)));
        assert!(g.is_triangle(v(0), v(1), v(2)));
        assert!(g.is_triangle(v(2), v(0), v(1)));
        assert!(!g.is_triangle(v(0), v(1), v(3)));
        assert!(!g.is_triangle(v(0), v(0), v(1)));
    }

    #[test]
    fn edge_degree_and_neighborhood() {
        let g = triangle_plus_pendant();
        let e01 = Edge::from_raw(0, 1);
        assert_eq!(g.edge_degree(e01), 2);
        assert_eq!(g.lower_degree_endpoint(e01), v(1));
        assert_eq!(g.edge_neighborhood(e01), g.neighbors(v(1)));
        let e03 = Edge::from_raw(0, 3);
        assert_eq!(g.edge_degree(e03), 1);
        assert_eq!(g.lower_degree_endpoint(e03), v(3));
    }

    #[test]
    fn edge_degree_sum_matches_manual() {
        let g = triangle_plus_pendant();
        // d = [3,2,2,1]; edges: (0,1)->2 (0,2)->2 (0,3)->1 (1,2)->2  => 7
        assert_eq!(g.edge_degree_sum(), 7);
    }

    #[test]
    fn edges_are_sorted_unique_normalized() {
        let g = CsrGraph::from_raw_edges(5, [(4, 0), (1, 0), (0, 1), (3, 2)]);
        let edges = g.edges();
        assert_eq!(edges.len(), 3);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        for e in edges {
            assert!(e.u() < e.v());
        }
    }

    #[test]
    fn check_vertex_bounds() {
        let g = triangle_plus_pendant();
        assert!(g.check_vertex(v(3)).is_ok());
        assert!(matches!(
            g.check_vertex(v(4)),
            Err(GraphError::VertexOutOfRange { vertex: 4, n: 4 })
        ));
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = triangle_plus_pendant();
        // keep vertices 0, 2, 3 -> edges (0,2) and (0,3) survive
        let keep = vec![true, false, true, true];
        let (sub, mapping) = g.induced_subgraph(&keep);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(mapping[0], Some(v(0)));
        assert_eq!(mapping[1], None);
        assert_eq!(mapping[2], Some(v(1)));
        assert_eq!(mapping[3], Some(v(2)));
        assert!(sub.has_edge(v(0), v(1)));
        assert!(sub.has_edge(v(0), v(2)));
        assert!(!sub.has_edge(v(1), v(2)));
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edge_degree_sum(), 0);

        let g = GraphBuilder::with_vertices(3).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(v(2)), 0);
    }
}
