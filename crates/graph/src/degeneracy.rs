//! Core decomposition and degeneracy.
//!
//! The degeneracy `κ(G)` (Definition 1.1 of the paper) is the largest minimum
//! degree over all subgraphs of `G`, equivalently the largest "observed
//! degree" when repeatedly removing a minimum-degree vertex. This module
//! implements the classic linear-time bucket-queue peeling algorithm
//! (Matula–Beck), producing:
//!
//! * the degeneracy `κ`,
//! * the core number of every vertex,
//! * the *degeneracy ordering* (the order vertices were peeled), which
//!   certifies `κ`: every vertex has at most `κ` neighbors later in the
//!   ordering.

use crate::csr::CsrGraph;
use crate::vertex::VertexId;

/// Result of the core decomposition of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// The degeneracy `κ` of the graph (0 for an edgeless graph).
    pub degeneracy: usize,
    /// `core[v]` is the core number of vertex `v`: the largest `k` such that
    /// `v` belongs to a subgraph of minimum degree `k`.
    pub core_numbers: Vec<usize>,
    /// Vertices in peeling order (first peeled first). Every vertex has at
    /// most `degeneracy` neighbors that appear *after* it in this order.
    pub ordering: Vec<VertexId>,
    /// `position[v]` is the index of `v` in `ordering`.
    pub position: Vec<usize>,
}

impl CoreDecomposition {
    /// Computes the core decomposition of `g` with the bucket-queue peeling
    /// algorithm in `O(n + m)` time.
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        if n == 0 {
            return CoreDecomposition {
                degeneracy: 0,
                core_numbers: Vec::new(),
                ordering: Vec::new(),
                position: Vec::new(),
            };
        }

        let mut degree: Vec<usize> = g.degree_vector();
        let max_deg = *degree.iter().max().unwrap_or(&0);

        // bucket[d] holds the vertices whose current degree is d.
        let mut bucket_start = vec![0usize; max_deg + 2];
        for &d in &degree {
            bucket_start[d + 1] += 1;
        }
        for d in 1..bucket_start.len() {
            bucket_start[d] += bucket_start[d - 1];
        }
        // vert: vertices sorted by current degree; pos: index of v in vert.
        let mut vert = vec![0u32; n];
        let mut pos = vec![0usize; n];
        {
            let mut cursor = bucket_start.clone();
            for v in 0..n {
                let d = degree[v];
                vert[cursor[d]] = v as u32;
                pos[v] = cursor[d];
                cursor[d] += 1;
            }
        }
        // bin[d] = index in `vert` of the first vertex with degree d.
        let mut bin = bucket_start;
        bin.pop();

        let degeneracy;
        let mut ordering = Vec::with_capacity(n);

        for i in 0..n {
            let v = vert[i] as usize;
            ordering.push(VertexId::new(v as u32));

            for &w in g.neighbors(VertexId::new(v as u32)) {
                let w = w.index();
                if degree[w] > degree[v] {
                    let dw = degree[w];
                    let pw = pos[w];
                    let pfirst = bin[dw];
                    let vfirst = vert[pfirst] as usize;
                    if w != vfirst {
                        vert.swap(pw, pfirst);
                        pos[w] = pfirst;
                        pos[vfirst] = pw;
                    }
                    bin[dw] += 1;
                    degree[w] -= 1;
                }
            }
        }

        // The core number of v is its remaining degree at peel time, made
        // monotone by a running maximum; the degeneracy is the final maximum.
        let mut core_numbers = vec![0usize; n];
        {
            // Recompute peel-time degrees deterministically from the ordering.
            let mut remaining: Vec<usize> = g.degree_vector();
            let mut removed = vec![false; n];
            let mut running_max = 0usize;
            for &v in &ordering {
                let dv = remaining[v.index()];
                running_max = running_max.max(dv);
                core_numbers[v.index()] = running_max;
                removed[v.index()] = true;
                for &w in g.neighbors(v) {
                    if !removed[w.index()] {
                        remaining[w.index()] -= 1;
                    }
                }
            }
            degeneracy = running_max;
        }

        let mut position = vec![0usize; n];
        for (i, &v) in ordering.iter().enumerate() {
            position[v.index()] = i;
        }

        CoreDecomposition {
            degeneracy,
            core_numbers,
            ordering,
            position,
        }
    }

    /// The number of neighbors of `v` that appear after `v` in the degeneracy
    /// ordering. By construction this is at most [`Self::degeneracy`].
    pub fn forward_degree(&self, g: &CsrGraph, v: VertexId) -> usize {
        g.neighbors(v)
            .iter()
            .filter(|w| self.position[w.index()] > self.position[v.index()])
            .count()
    }

    /// Verifies the defining property of the ordering: every vertex has at
    /// most `degeneracy` neighbors later in the ordering. Used by tests.
    pub fn verify(&self, g: &CsrGraph) -> bool {
        g.vertices()
            .all(|v| self.forward_degree(g, v) <= self.degeneracy)
    }
}

/// Computes just the degeneracy `κ` of `g`.
pub fn degeneracy(g: &CsrGraph) -> usize {
    CoreDecomposition::compute(g).degeneracy
}

/// A brute-force reference implementation of Definition 1.1: repeatedly
/// remove a minimum-degree vertex and report the maximum degree observed at
/// removal time. `O(n²)`; only suitable for tests on small graphs.
pub fn degeneracy_reference(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    let mut alive = vec![true; n];
    let mut degree = g.degree_vector();
    let mut best = 0usize;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| degree[v])
            .expect("at least one alive vertex");
        best = best.max(degree[v]);
        alive[v] = false;
        for &w in g.neighbors(VertexId::from(v)) {
            if alive[w.index()] {
                degree[w.index()] -= 1;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..n.saturating_sub(1) {
            b.add_edge_raw(i, i + 1);
        }
        b.build()
    }

    fn complete(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::with_vertices(n as usize);
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge_raw(i, j);
            }
        }
        b.build()
    }

    fn cycle(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_edge_raw(i, (i + 1) % n);
        }
        b.build()
    }

    fn star(leaves: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 1..=leaves {
            b.add_edge_raw(0, i);
        }
        b.build()
    }

    #[test]
    fn degeneracy_of_basic_families() {
        assert_eq!(degeneracy(&path(10)), 1);
        assert_eq!(degeneracy(&cycle(10)), 2);
        assert_eq!(degeneracy(&complete(6)), 5);
        assert_eq!(degeneracy(&star(20)), 1);
        assert_eq!(degeneracy(&GraphBuilder::with_vertices(5).build()), 0);
        assert_eq!(degeneracy(&GraphBuilder::new().build()), 0);
    }

    #[test]
    fn matches_reference_on_small_graphs() {
        for g in [path(7), cycle(9), complete(5), star(8)] {
            assert_eq!(degeneracy(&g), degeneracy_reference(&g));
        }
    }

    #[test]
    fn core_numbers_of_complete_graph() {
        let g = complete(5);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.degeneracy, 4);
        assert!(d.core_numbers.iter().all(|&c| c == 4));
        assert!(d.verify(&g));
    }

    #[test]
    fn core_numbers_of_star_plus_triangle() {
        // Star center 0 with leaves 1..=4, plus a triangle 5-6-7 attached to 0 via 5.
        let mut b = GraphBuilder::new();
        for i in 1..=4 {
            b.add_edge_raw(0, i);
        }
        b.extend_raw([(5, 6), (6, 7), (5, 7), (0, 5)]);
        let g = b.build();
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.degeneracy, 2);
        // Leaves are 1-core, triangle vertices are 2-core.
        for leaf in 1..=4u32 {
            assert_eq!(d.core_numbers[leaf as usize], 1);
        }
        for t in 5..=7u32 {
            assert_eq!(d.core_numbers[t as usize], 2);
        }
        assert!(d.verify(&g));
    }

    #[test]
    fn ordering_is_a_permutation_with_consistent_positions() {
        let g = cycle(12);
        let d = CoreDecomposition::compute(&g);
        let mut seen = vec![false; 12];
        for (i, &v) in d.ordering.iter().enumerate() {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
            assert_eq!(d.position[v.index()], i);
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn forward_degree_bounded_by_degeneracy() {
        let g = complete(7);
        let d = CoreDecomposition::compute(&g);
        assert!(d.verify(&g));
        for v in g.vertices() {
            assert!(d.forward_degree(&g, v) <= d.degeneracy);
        }
    }

    #[test]
    fn wheel_graph_has_constant_degeneracy() {
        // Wheel: hub 0 connected to cycle 1..n-1 (the Section 1.1 example).
        let n = 50u32;
        let mut b = GraphBuilder::new();
        for i in 1..n {
            b.add_edge_raw(0, i);
            let next = if i == n - 1 { 1 } else { i + 1 };
            b.add_edge_raw(i, next);
        }
        let g = b.build();
        assert_eq!(degeneracy(&g), 3);
        assert_eq!(degeneracy_reference(&g), 3);
    }

    #[test]
    fn degeneracy_at_most_sqrt_2m() {
        for g in [complete(8), cycle(30), star(30), path(30)] {
            let k = degeneracy(&g) as f64;
            let bound = (2.0 * g.num_edges() as f64).sqrt();
            assert!(k <= bound + 1e-9, "κ={k} > sqrt(2m)={bound}");
        }
    }
}
