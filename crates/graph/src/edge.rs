//! Undirected edges.
//!
//! An [`Edge`] is an unordered pair of distinct vertices stored in normalized
//! form (`u < v`), so that the same undirected edge always compares and
//! hashes equally regardless of the order it appeared in the stream.

use std::fmt;

use crate::vertex::VertexId;

/// An undirected edge between two distinct vertices, stored with
/// `u() < v()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Creates a normalized edge from two distinct endpoints.
    ///
    /// # Panics
    /// Panics if `a == b` (self-loops are not representable; the
    /// [`GraphBuilder`](crate::builder::GraphBuilder) silently drops them
    /// instead of constructing an `Edge`).
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "self-loop {a:?} cannot be represented as an Edge");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Creates a normalized edge from raw `u32` endpoints.
    ///
    /// # Panics
    /// Panics if `a == b`.
    #[inline]
    pub fn from_raw(a: u32, b: u32) -> Self {
        Edge::new(VertexId::new(a), VertexId::new(b))
    }

    /// The smaller endpoint.
    #[inline]
    pub const fn u(self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    #[inline]
    pub const fn v(self) -> VertexId {
        self.v
    }

    /// Both endpoints as a `(smaller, larger)` pair.
    #[inline]
    pub const fn endpoints(self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Packs the edge into a single `u64` key: the smaller endpoint in the
    /// high 32 bits, the larger in the low 32 bits.
    ///
    /// Because edges are stored normalized (`u() < v()`), the packing is a
    /// bijection between edges and their keys, and the `u64` ordering of
    /// keys coincides with the `(u, v)` lexicographic ordering of edges —
    /// which is what lets the hot loops replace hash sets of `Edge` with
    /// sorted `u64` probe vectors.
    #[inline]
    pub const fn key(self) -> u64 {
        ((self.u.raw() as u64) << 32) | self.v.raw() as u64
    }

    /// Unpacks a key produced by [`Edge::key`].
    ///
    /// # Panics
    /// Panics if `key` does not encode a normalized edge (high half not
    /// strictly below the low half).
    #[inline]
    pub fn from_key(key: u64) -> Self {
        let u = (key >> 32) as u32;
        let v = key as u32;
        assert!(u < v, "invalid edge key {key:#x}: endpoints not normalized");
        Edge {
            u: VertexId::new(u),
            v: VertexId::new(v),
        }
    }

    /// Returns `true` if `x` is one of the two endpoints.
    #[inline]
    pub fn contains(self, x: VertexId) -> bool {
        self.u == x || self.v == x
    }

    /// Given one endpoint, returns the other.
    ///
    /// Returns `None` if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, x: VertexId) -> Option<VertexId> {
        if x == self.u {
            Some(self.v)
        } else if x == self.v {
            Some(self.u)
        } else {
            None
        }
    }

    /// Returns `true` if the two edges share at least one endpoint.
    #[inline]
    pub fn shares_endpoint(self, other: Edge) -> bool {
        self.contains(other.u) || self.contains(other.v)
    }

    /// If `self` and `other` share exactly one endpoint, returns the triple
    /// `(shared, self_other_end, other_other_end)` describing the wedge
    /// (2-path) they form. Returns `None` if they are disjoint or equal.
    pub fn wedge_with(self, other: Edge) -> Option<(VertexId, VertexId, VertexId)> {
        if self == other {
            return None;
        }
        if self.u == other.u {
            Some((self.u, self.v, other.v))
        } else if self.u == other.v {
            Some((self.u, self.v, other.u))
        } else if self.v == other.u {
            Some((self.v, self.u, other.v))
        } else if self.v == other.v {
            Some((self.v, self.u, other.u))
        } else {
            None
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.u, self.v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.u, self.v)
    }
}

impl From<(u32, u32)> for Edge {
    #[inline]
    fn from((a, b): (u32, u32)) -> Self {
        Edge::from_raw(a, b)
    }
}

/// A triangle: three pairwise-adjacent vertices, stored sorted.
///
/// Triangles are the objects the whole workspace counts; a canonical sorted
/// representation makes the assignment memo table of Algorithm 3 (and the
/// deduplication logic in tests) straightforward.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triangle {
    a: VertexId,
    b: VertexId,
    c: VertexId,
}

impl Triangle {
    /// Creates a triangle from three distinct vertices (any order).
    ///
    /// # Panics
    /// Panics if any two vertices coincide.
    pub fn new(x: VertexId, y: VertexId, z: VertexId) -> Self {
        assert!(
            x != y && y != z && x != z,
            "triangle vertices must be distinct"
        );
        let mut t = [x, y, z];
        t.sort_unstable();
        Triangle {
            a: t[0],
            b: t[1],
            c: t[2],
        }
    }

    /// Creates a triangle from raw `u32` vertex ids.
    pub fn from_raw(x: u32, y: u32, z: u32) -> Self {
        Triangle::new(VertexId::new(x), VertexId::new(y), VertexId::new(z))
    }

    /// The three vertices in increasing order.
    pub const fn vertices(self) -> [VertexId; 3] {
        [self.a, self.b, self.c]
    }

    /// The three edges of the triangle.
    pub fn edges(self) -> [Edge; 3] {
        [
            Edge::new(self.a, self.b),
            Edge::new(self.b, self.c),
            Edge::new(self.a, self.c),
        ]
    }

    /// Returns `true` if `e` is one of the triangle's three edges.
    pub fn contains_edge(self, e: Edge) -> bool {
        self.edges().contains(&e)
    }

    /// Returns the vertex of the triangle opposite to edge `e`, or `None` if
    /// `e` is not an edge of this triangle.
    pub fn apex(self, e: Edge) -> Option<VertexId> {
        if !self.contains_edge(e) {
            return None;
        }
        self.vertices().into_iter().find(|&x| !e.contains(x))
    }
}

impl fmt::Debug for Triangle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "△({},{},{})", self.a, self.b, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId::new(x)
    }

    #[test]
    fn edge_is_normalized() {
        assert_eq!(Edge::from_raw(5, 2), Edge::from_raw(2, 5));
        assert_eq!(Edge::from_raw(5, 2).u(), v(2));
        assert_eq!(Edge::from_raw(5, 2).v(), v(5));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = Edge::from_raw(3, 3);
    }

    #[test]
    fn contains_and_other() {
        let e = Edge::from_raw(1, 4);
        assert!(e.contains(v(1)));
        assert!(e.contains(v(4)));
        assert!(!e.contains(v(2)));
        assert_eq!(e.other(v(1)), Some(v(4)));
        assert_eq!(e.other(v(4)), Some(v(1)));
        assert_eq!(e.other(v(9)), None);
    }

    #[test]
    fn wedge_detection() {
        let e1 = Edge::from_raw(0, 1);
        let e2 = Edge::from_raw(1, 2);
        let e3 = Edge::from_raw(3, 4);
        let (center, a, b) = e1.wedge_with(e2).unwrap();
        assert_eq!(center, v(1));
        assert_eq!([a, b], [v(0), v(2)]);
        assert!(e1.wedge_with(e3).is_none());
        assert!(e1.wedge_with(e1).is_none());
    }

    #[test]
    fn shares_endpoint() {
        assert!(Edge::from_raw(0, 1).shares_endpoint(Edge::from_raw(1, 2)));
        assert!(!Edge::from_raw(0, 1).shares_endpoint(Edge::from_raw(2, 3)));
    }

    #[test]
    fn triangle_canonical_form() {
        let t1 = Triangle::from_raw(5, 1, 3);
        let t2 = Triangle::from_raw(3, 5, 1);
        assert_eq!(t1, t2);
        assert_eq!(t1.vertices(), [v(1), v(3), v(5)]);
    }

    #[test]
    fn triangle_edges_and_apex() {
        let t = Triangle::from_raw(0, 1, 2);
        let edges = t.edges();
        assert!(edges.contains(&Edge::from_raw(0, 1)));
        assert!(edges.contains(&Edge::from_raw(1, 2)));
        assert!(edges.contains(&Edge::from_raw(0, 2)));
        assert_eq!(t.apex(Edge::from_raw(0, 1)), Some(v(2)));
        assert_eq!(t.apex(Edge::from_raw(0, 2)), Some(v(1)));
        assert_eq!(t.apex(Edge::from_raw(4, 5)), None);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn degenerate_triangle_panics() {
        let _ = Triangle::from_raw(1, 1, 2);
    }

    #[test]
    fn key_roundtrip_and_ordering() {
        for (a, b) in [(0u32, 1u32), (2, 5), (1000, 2000), (0, u32::MAX)] {
            let e = Edge::from_raw(a, b);
            assert_eq!(Edge::from_key(e.key()), e);
        }
        // Key order matches edge order.
        let e1 = Edge::from_raw(1, 9);
        let e2 = Edge::from_raw(2, 3);
        assert_eq!(e1 < e2, e1.key() < e2.key());
        // Normalization means (a, b) and (b, a) share a key.
        assert_eq!(Edge::from_raw(9, 4).key(), Edge::from_raw(4, 9).key());
    }

    #[test]
    #[should_panic(expected = "invalid edge key")]
    fn malformed_key_panics() {
        // High half not below low half: not a normalized edge.
        let _ = Edge::from_key((7u64 << 32) | 3);
    }

    #[test]
    fn edge_from_tuple() {
        let e: Edge = (7u32, 2u32).into();
        assert_eq!(e, Edge::from_raw(2, 7));
    }
}
