//! Error type for graph construction and I/O.

use std::fmt;
use std::io;

/// Errors produced by graph construction, validation and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id at or beyond the declared vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An underlying I/O failure while reading or writing an edge list.
    Io(io::Error),
    /// The requested operation needs a non-empty graph.
    EmptyGraph,
    /// A generator or algorithm was given parameters it cannot honor.
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        message: String,
    },
}

impl GraphError {
    /// Convenience constructor for [`GraphError::InvalidParameter`].
    pub fn invalid_parameter(message: impl Into<String>) -> Self {
        GraphError::InvalidParameter {
            message: message.into(),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 10, n: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('5'));

        let e = GraphError::Parse {
            line: 3,
            message: "expected two integers".into(),
        };
        assert!(e.to_string().contains("line 3"));

        let e = GraphError::invalid_parameter("p must be in [0, 1]");
        assert!(e.to_string().contains("p must be"));

        assert!(GraphError::EmptyGraph.to_string().contains("non-empty"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let inner = io::Error::new(io::ErrorKind::NotFound, "nope");
        let e = GraphError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("nope"));
    }
}
