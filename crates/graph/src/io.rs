//! Plain-text edge-list input and output.
//!
//! The format is the de-facto standard used by SNAP and most graph
//! repositories: one edge per line, two whitespace-separated integer vertex
//! ids, `#`-prefixed comment lines ignored. Vertex ids are used as given
//! (the graph will have `max id + 1` vertices); self-loops and duplicate
//! edges are dropped by the builder.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

/// Reads an edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let a = parse_vertex(parts.next(), line_no)?;
        let b = parse_vertex(parts.next(), line_no)?;
        if parts.next().is_some() {
            // Extra columns (weights, timestamps) are tolerated and ignored,
            // matching common SNAP usage.
        }
        builder.add_edge_raw(a, b);
    }
    Ok(builder.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Parses an edge list from an in-memory string (useful in tests/examples).
pub fn parse_edge_list(text: &str) -> Result<CsrGraph> {
    read_edge_list(text.as_bytes())
}

/// Writes the graph as an edge list (one `u v` line per edge, `u < v`).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# degentri edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for e in g.edges() {
        writeln!(writer, "{} {}", e.u(), e.v())?;
    }
    Ok(())
}

/// Writes the graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, std::io::BufWriter::new(file))
}

fn parse_vertex(token: Option<&str>, line: usize) -> Result<u32> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".into(),
    })?;
    token.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid vertex id {token:?}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_edge_list() {
        let g = parse_edge_list("0 1\n1 2\n2 0\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn ignores_comments_blank_lines_and_extra_columns() {
        let text = "# a comment\n\n% another comment\n0 1 0.5\n1 2\n   \n2 3 1699999999\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn deduplicates_and_drops_self_loops_on_read() {
        let g = parse_edge_list("0 1\n1 0\n2 2\n1 2\n").unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse_edge_list("0 1\nnot an edge\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let err = parse_edge_list("0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip_through_text() {
        let g = CsrGraph::from_raw_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("degentri_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = CsrGraph::from_raw_edges(4, [(0, 1), (1, 2), (2, 3)]);
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g.edges(), g2.edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_edge_list_file("/definitely/not/a/file.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
