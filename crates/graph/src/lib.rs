//! # degentri-graph — static graph substrate
//!
//! This crate provides the in-memory graph machinery that the streaming
//! triangle-counting algorithms of Bera & Seshadhri (PODS 2020) are built on
//! and evaluated against:
//!
//! * [`Edge`] / [`VertexId`] — normalized undirected edges over `u32` vertex
//!   ids.
//! * [`GraphBuilder`] — deduplicating, self-loop-free construction of simple
//!   undirected graphs from arbitrary edge lists.
//! * [`CsrGraph`] — a compact sorted-adjacency (CSR) representation with
//!   `O(1)` degree queries and `O(log d)` adjacency tests.
//! * [`degeneracy`] — bucket-queue core decomposition: degeneracy `κ`, core
//!   numbers and the peeling (degeneracy) order.
//! * [`triangles`] — exact triangle counting: the Chiba–Nishizeki
//!   edge-iterator, the forward (degree-ordered) algorithm, per-edge and
//!   per-vertex triangle counts, and the edge-degree sum `d_E = Σ_e d_e`.
//! * [`arboricity`] — arboricity bounds and their relation to degeneracy.
//! * [`properties`] — degree distributions, wedge counts and clustering
//!   coefficients.
//! * [`io`] — plain-text edge-list reading and writing.
//!
//! The exact counters double as ground truth for every experiment in the
//! workspace: streaming estimates are always compared against
//! [`triangles::count_triangles`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arboricity;
pub mod builder;
pub mod csr;
pub mod degeneracy;
pub mod edge;
pub mod error;
pub mod io;
pub mod properties;
pub mod triangles;
pub mod vertex;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use degeneracy::CoreDecomposition;
pub use edge::{Edge, Triangle};
pub use error::GraphError;
pub use triangles::TriangleCounts;
pub use vertex::VertexId;

/// Convenient result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
