//! Aggregate graph statistics used throughout the experiments.
//!
//! These are the quantities the paper's bounds are stated in terms of:
//! `n`, `m`, `T`, the maximum degree `Δ`, the wedge count `W` (number of
//! 2-paths), the degeneracy `κ`, the edge-degree sum `d_E`, and the global /
//! average clustering coefficients that characterize "triangle-dense"
//! real-world graphs.

use crate::csr::CsrGraph;
use crate::degeneracy::CoreDecomposition;
use crate::triangles::TriangleCounts;

/// A summary of the structural parameters of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphProperties {
    /// Number of vertices `n`.
    pub num_vertices: usize,
    /// Number of edges `m`.
    pub num_edges: usize,
    /// Number of triangles `T`.
    pub triangles: u64,
    /// Maximum degree `Δ`.
    pub max_degree: usize,
    /// Degeneracy `κ`.
    pub degeneracy: usize,
    /// Wedge (2-path) count `W = Σ_v C(d_v, 2)`.
    pub wedges: u64,
    /// Edge-degree sum `d_E = Σ_e min(d_u, d_v)`.
    pub edge_degree_sum: u64,
    /// Maximum number of triangles on a single edge (the `J` of Table 1).
    pub max_triangles_per_edge: u64,
    /// Global clustering coefficient `3T / W` (0 when `W = 0`).
    pub global_clustering: f64,
    /// Average degree `2m / n` (0 for the empty graph).
    pub average_degree: f64,
}

impl GraphProperties {
    /// Computes every property of `g` (cost: one exact triangle count plus a
    /// core decomposition, i.e. `O(mκ + m^{3/2})` overall).
    pub fn compute(g: &CsrGraph) -> Self {
        let tc = TriangleCounts::compute(g);
        let decomposition = CoreDecomposition::compute(g);
        GraphProperties::from_parts(g, &tc, &decomposition)
    }

    /// Assembles the properties from precomputed triangle counts and core
    /// decomposition (avoids recomputation when the caller already has them).
    pub fn from_parts(
        g: &CsrGraph,
        triangle_counts: &TriangleCounts,
        decomposition: &CoreDecomposition,
    ) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let wedges = wedge_count(g);
        let triangles = triangle_counts.total;
        let global_clustering = if wedges == 0 {
            0.0
        } else {
            3.0 * triangles as f64 / wedges as f64
        };
        GraphProperties {
            num_vertices: n,
            num_edges: m,
            triangles,
            max_degree: g.max_degree(),
            degeneracy: decomposition.degeneracy,
            wedges,
            edge_degree_sum: g.edge_degree_sum(),
            max_triangles_per_edge: triangle_counts.max_per_edge(),
            global_clustering,
            average_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
        }
    }

    /// The paper's key premise for real graphs: `T = Ω(κ²)`. Returns the
    /// ratio `T / κ²` (`f64::INFINITY` when `κ = 0` and `T > 0`; 0 when both
    /// are 0).
    pub fn triangle_to_degeneracy_squared_ratio(&self) -> f64 {
        let k2 = (self.degeneracy as f64).powi(2);
        if k2 == 0.0 {
            if self.triangles == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.triangles as f64 / k2
        }
    }
}

/// Wedge (2-path) count `W = Σ_v C(d_v, 2)`.
pub fn wedge_count(g: &CsrGraph) -> u64 {
    g.vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Degree distribution histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Local clustering coefficient of every vertex:
/// `c_v = triangles(v) / C(d_v, 2)` (0 when `d_v < 2`).
pub fn local_clustering(g: &CsrGraph) -> Vec<f64> {
    let tc = TriangleCounts::compute(g);
    g.vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            let wedges_v = d * d.saturating_sub(1) / 2;
            if wedges_v == 0 {
                0.0
            } else {
                tc.per_vertex[v.index()] as f64 / wedges_v as f64
            }
        })
        .collect()
}

/// Average local clustering coefficient (Watts–Strogatz).
pub fn average_clustering(g: &CsrGraph) -> f64 {
    if g.num_vertices() == 0 {
        return 0.0;
    }
    local_clustering(g).iter().sum::<f64>() / g.num_vertices() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn complete(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::with_vertices(n as usize);
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge_raw(i, j);
            }
        }
        b.build()
    }

    #[test]
    fn properties_of_complete_graph() {
        let g = complete(6);
        let p = GraphProperties::compute(&g);
        assert_eq!(p.num_vertices, 6);
        assert_eq!(p.num_edges, 15);
        assert_eq!(p.triangles, 20);
        assert_eq!(p.max_degree, 5);
        assert_eq!(p.degeneracy, 5);
        assert_eq!(p.wedges, 6 * 10);
        assert_eq!(p.max_triangles_per_edge, 4);
        assert!((p.global_clustering - 1.0).abs() < 1e-12);
        assert!((p.average_degree - 5.0).abs() < 1e-12);
    }

    #[test]
    fn properties_of_path() {
        let g = CsrGraph::from_raw_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let p = GraphProperties::compute(&g);
        assert_eq!(p.triangles, 0);
        assert_eq!(p.degeneracy, 1);
        assert_eq!(p.wedges, 2);
        assert_eq!(p.global_clustering, 0.0);
        assert_eq!(p.max_triangles_per_edge, 0);
    }

    #[test]
    fn wedge_count_star() {
        let g = CsrGraph::from_raw_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(wedge_count(&g), 6); // C(4,2)
    }

    #[test]
    fn degree_histogram_shape() {
        let g = CsrGraph::from_raw_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let hist = degree_histogram(&g);
        assert_eq!(hist, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn clustering_of_triangle_with_pendant() {
        let g = CsrGraph::from_raw_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let local = local_clustering(&g);
        assert!((local[0] - 1.0).abs() < 1e-12);
        assert!((local[1] - 1.0).abs() < 1e-12);
        assert!((local[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local[3], 0.0);
        let avg = average_clustering(&g);
        assert!((avg - (1.0 + 1.0 + 1.0 / 3.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_properties() {
        let g = GraphBuilder::new().build();
        let p = GraphProperties::compute(&g);
        assert_eq!(p.num_vertices, 0);
        assert_eq!(p.average_degree, 0.0);
        assert_eq!(p.global_clustering, 0.0);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(p.triangle_to_degeneracy_squared_ratio(), 0.0);
    }

    #[test]
    fn t_over_kappa_squared() {
        let g = complete(6);
        let p = GraphProperties::compute(&g);
        assert!((p.triangle_to_degeneracy_squared_ratio() - 20.0 / 25.0).abs() < 1e-12);
    }
}
