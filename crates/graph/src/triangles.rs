//! Exact triangle counting.
//!
//! Three exact counters are provided:
//!
//! * [`count_triangles`] — the *forward* (degree-ordered) algorithm: orient
//!   every edge from lower to higher degree (ties by id) and intersect
//!   forward adjacency lists. Runs in `O(m^{3/2})`, and in `O(mκ)` when the
//!   orientation follows a degeneracy ordering.
//! * [`TriangleCounts::compute`] — the Chiba–Nishizeki *edge iterator*: for
//!   every edge intersect the two endpoint neighborhoods, producing the
//!   per-edge triangle counts `t_e` and per-vertex counts that the paper's
//!   analysis (and our experiments on assignment rules, heavy/costly edges
//!   and variance) need. Runs in `O(Σ_e d_e) = O(mκ)`.
//! * [`count_triangles_brute_force`] — an `O(n³)` reference used only in
//!   tests and property checks.
//!
//! All counters agree on every graph; the property tests in this module and
//! in the workspace integration suite assert it.

use rustc_hash::FxHashMap;

use crate::csr::CsrGraph;
use crate::edge::{Edge, Triangle};
use crate::vertex::VertexId;

/// Exact global triangle count via the forward algorithm.
///
/// Orients each edge from the endpoint with smaller degree to the endpoint
/// with larger degree (ties broken by vertex id) and counts, for every edge
/// `(u, v)`, the common out-neighbors of `u` and `v`.
pub fn count_triangles(g: &CsrGraph) -> u64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let rank = degree_rank(g);
    // Forward adjacency: out-neighbors sorted by rank for merge-intersection.
    let mut forward: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in g.edges() {
        let (u, v) = e.endpoints();
        let (lo, hi) = if rank[u.index()] < rank[v.index()] {
            (u, v)
        } else {
            (v, u)
        };
        forward[lo.index()].push(rank[hi.index()]);
    }
    for list in &mut forward {
        list.sort_unstable();
    }
    // rank -> vertex lookup so we can find the forward list of the middle vertex.
    let mut by_rank = vec![0u32; n];
    for v in 0..n {
        by_rank[rank[v] as usize] = v as u32;
    }

    let mut count = 0u64;
    for u in 0..n {
        let fu = &forward[u];
        for &rv in fu {
            let v = by_rank[rv as usize] as usize;
            count += sorted_intersection_size(fu, &forward[v]);
        }
    }
    count
}

/// Exact triangle count by testing all vertex triples. `O(n³)`; for tests.
pub fn count_triangles_brute_force(g: &CsrGraph) -> u64 {
    let n = g.num_vertices();
    let mut count = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            if !g.has_edge(VertexId::from(a), VertexId::from(b)) {
                continue;
            }
            for c in (b + 1)..n {
                if g.has_edge(VertexId::from(a), VertexId::from(c))
                    && g.has_edge(VertexId::from(b), VertexId::from(c))
                {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Enumerates every triangle of the graph (canonical form, each reported
/// once). Intended for small graphs in tests and for ground-truth assignment
/// analysis in the experiments.
pub fn enumerate_triangles(g: &CsrGraph) -> Vec<Triangle> {
    let counts = TriangleCounts::compute(g);
    counts.triangles
}

/// Per-edge and per-vertex exact triangle statistics, computed with the
/// Chiba–Nishizeki edge iterator.
#[derive(Debug, Clone)]
pub struct TriangleCounts {
    /// Total number of triangles `T`.
    pub total: u64,
    /// `t_e` for every edge, keyed by normalized edge.
    pub per_edge: FxHashMap<Edge, u64>,
    /// Number of triangles containing each vertex.
    pub per_vertex: Vec<u64>,
    /// Every triangle, in canonical form, listed once.
    pub triangles: Vec<Triangle>,
}

impl TriangleCounts {
    /// Runs the edge-iterator algorithm on `g`.
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut per_edge: FxHashMap<Edge, u64> =
            FxHashMap::with_capacity_and_hasher(g.num_edges(), Default::default());
        let mut per_vertex = vec![0u64; n];
        let mut triangles = Vec::new();

        for &e in g.edges() {
            let (u, v) = e.endpoints();
            // Intersect the two (sorted) neighborhoods; attribute each common
            // neighbor w with w > v to this edge being the "base" so every
            // triangle is listed exactly once (u < v < w ordering of ids is
            // not guaranteed, so use canonical Triangle dedup via base edge:
            // a triangle {a,b,c} with a<b<c is listed when e = (a,b)).
            for w in sorted_intersection(g.neighbors(u), g.neighbors(v)) {
                if w > v {
                    // e = (u, v) is the lexicographically smallest edge.
                    triangles.push(Triangle::new(u, v, w));
                }
            }
        }

        for &t in &triangles {
            for e in t.edges() {
                *per_edge.entry(e).or_insert(0) += 1;
            }
            for x in t.vertices() {
                per_vertex[x.index()] += 1;
            }
        }

        TriangleCounts {
            total: triangles.len() as u64,
            per_edge,
            per_vertex,
            triangles,
        }
    }

    /// `t_e` of an edge (0 if the edge exists but is in no triangle, or if it
    /// is not an edge of the graph).
    pub fn edge_count(&self, e: Edge) -> u64 {
        self.per_edge.get(&e).copied().unwrap_or(0)
    }

    /// The maximum `t_e` over all edges (the `J` parameter of
    /// Pagh–Tsourakakis in Table 1).
    pub fn max_per_edge(&self) -> u64 {
        self.per_edge.values().copied().max().unwrap_or(0)
    }

    /// Sum of per-edge counts; equals `3T` because every triangle contains
    /// three edges.
    pub fn per_edge_sum(&self) -> u64 {
        self.per_edge.values().sum()
    }
}

/// Number of triangles containing a given edge, via one neighborhood
/// intersection (`O(d_u + d_v)`).
pub fn triangles_on_edge(g: &CsrGraph, e: Edge) -> u64 {
    sorted_intersection_size_vertices(g.neighbors(e.u()), g.neighbors(e.v()))
}

fn degree_rank(g: &CsrGraph) -> Vec<u32> {
    // rank by (degree, id): lower degree first. The forward algorithm's
    // runtime bound only needs *some* total order consistent with degree.
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (g.degree(VertexId::new(v)), v));
    let mut rank = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    rank
}

fn sorted_intersection_size(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

fn sorted_intersection_size_vertices(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

fn sorted_intersection<'a>(
    a: &'a [VertexId],
    b: &'a [VertexId],
) -> impl Iterator<Item = VertexId> + 'a {
    SortedIntersection { a, b, i: 0, j: 0 }
}

struct SortedIntersection<'a> {
    a: &'a [VertexId],
    b: &'a [VertexId],
    i: usize,
    j: usize,
}

impl<'a> Iterator for SortedIntersection<'a> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        while self.i < self.a.len() && self.j < self.b.len() {
            match self.a[self.i].cmp(&self.b[self.j]) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    let out = self.a[self.i];
                    self.i += 1;
                    self.j += 1;
                    return Some(out);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn complete(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::with_vertices(n as usize);
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge_raw(i, j);
            }
        }
        b.build()
    }

    fn wheel(n: u32) -> CsrGraph {
        // hub 0, cycle on 1..n-1
        let mut b = GraphBuilder::new();
        let rim = n - 1;
        for i in 1..n {
            b.add_edge_raw(0, i);
            let next = if i == rim { 1 } else { i + 1 };
            b.add_edge_raw(i, next);
        }
        b.build()
    }

    fn choose3(n: u64) -> u64 {
        n * (n - 1) * (n - 2) / 6
    }

    #[test]
    fn triangle_free_graphs() {
        let path = CsrGraph::from_raw_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(count_triangles(&path), 0);
        let star = CsrGraph::from_raw_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(count_triangles(&star), 0);
        let c4 = CsrGraph::from_raw_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_triangles(&c4), 0);
        assert!(TriangleCounts::compute(&c4).triangles.is_empty());
    }

    #[test]
    fn complete_graph_counts() {
        for n in 3..9u32 {
            let g = complete(n);
            assert_eq!(count_triangles(&g), choose3(n as u64));
            assert_eq!(count_triangles_brute_force(&g), choose3(n as u64));
            let tc = TriangleCounts::compute(&g);
            assert_eq!(tc.total, choose3(n as u64));
            // each edge lies in exactly n-2 triangles
            assert!(tc.per_edge.values().all(|&t| t == (n - 2) as u64));
            // each vertex lies in C(n-1, 2) triangles
            let per_v = ((n - 1) * (n - 2) / 2) as u64;
            assert!(tc.per_vertex.iter().all(|&t| t == per_v));
        }
    }

    #[test]
    fn wheel_graph_counts() {
        // A wheel with rim length r >= 4 has exactly r triangles.
        for rim in [4u32, 5, 10, 33] {
            let g = wheel(rim + 1);
            assert_eq!(count_triangles(&g), rim as u64);
            assert_eq!(TriangleCounts::compute(&g).total, rim as u64);
        }
    }

    #[test]
    fn all_counters_agree_on_small_graphs() {
        let graphs = [
            CsrGraph::from_raw_edges(6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 2), (4, 5)]),
            complete(6),
            wheel(9),
            CsrGraph::from_raw_edges(3, []),
        ];
        for g in graphs {
            let a = count_triangles(&g);
            let b = count_triangles_brute_force(&g);
            let c = TriangleCounts::compute(&g).total;
            assert_eq!(a, b);
            assert_eq!(b, c);
        }
    }

    #[test]
    fn per_edge_sum_is_three_t() {
        let g = complete(7);
        let tc = TriangleCounts::compute(&g);
        assert_eq!(tc.per_edge_sum(), 3 * tc.total);
    }

    #[test]
    fn triangles_on_edge_matches_per_edge_counts() {
        let g = wheel(12);
        let tc = TriangleCounts::compute(&g);
        for &e in g.edges() {
            assert_eq!(triangles_on_edge(&g, e), tc.edge_count(e));
        }
    }

    #[test]
    fn enumerate_lists_each_triangle_once() {
        let g = complete(6);
        let ts = enumerate_triangles(&g);
        assert_eq!(ts.len() as u64, choose3(6));
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ts.len());
    }

    #[test]
    fn book_graph_per_edge_skew() {
        // Section 1.2 example: (n-2) triangles sharing one common edge (0,1).
        let pages = 30u32;
        let mut b = GraphBuilder::new();
        b.add_edge_raw(0, 1);
        for i in 0..pages {
            b.add_edge_raw(0, 2 + i);
            b.add_edge_raw(1, 2 + i);
        }
        let g = b.build();
        let tc = TriangleCounts::compute(&g);
        assert_eq!(tc.total, pages as u64);
        assert_eq!(tc.edge_count(Edge::from_raw(0, 1)), pages as u64);
        assert_eq!(tc.max_per_edge(), pages as u64);
        assert_eq!(tc.edge_count(Edge::from_raw(0, 2)), 1);
    }

    #[test]
    fn max_per_edge_of_empty_graph_is_zero() {
        let g = GraphBuilder::with_vertices(4).build();
        assert_eq!(TriangleCounts::compute(&g).max_per_edge(), 0);
    }
}
