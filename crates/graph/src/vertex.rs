//! Vertex identifiers.
//!
//! Vertices are dense `u32` indices `0..n`. A newtype keeps them from being
//! confused with edge indices, counts or sample sizes in the estimator code,
//! while staying `Copy` and 4 bytes wide (the space accounting in
//! `degentri-stream` charges one machine word per stored vertex or edge).

use std::fmt;

/// A vertex identifier: a dense index in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Creates a vertex id from a raw `u32` index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        VertexId(raw)
    }

    /// Returns the raw `u32` index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize`, for indexing into per-vertex arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(raw: u32) -> Self {
        VertexId(raw)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl From<usize> for VertexId {
    /// Converts a `usize` index to a vertex id.
    ///
    /// # Panics
    /// Panics if `raw` does not fit in a `u32`. Graphs in this workspace are
    /// far below 4 billion vertices, so this is a programming error.
    #[inline]
    fn from(raw: usize) -> Self {
        VertexId(u32::try_from(raw).expect("vertex index exceeds u32::MAX"))
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        let v = VertexId::new(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn roundtrip_usize() {
        let v = VertexId::from(7usize);
        assert_eq!(v.index(), 7);
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert_eq!(VertexId::new(5), VertexId::new(5));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", VertexId::new(3)), "3");
        assert_eq!(format!("{:?}", VertexId::new(3)), "v3");
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn oversized_usize_panics() {
        let _ = VertexId::from(u32::MAX as usize + 1);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(VertexId::default(), VertexId::new(0));
    }
}
