//! Property-based tests for the graph substrate.
//!
//! These check the structural invariants the paper's analysis relies on:
//! builder/CSR invariants, the degeneracy characterization, the
//! Chiba–Nishizeki bound `d_E ≤ 2mκ`, the triangle bound `T ≤ 2mκ/3`
//! (Corollary 3.2 states `≤ 2mκ`; the factor-3-tighter bound also holds and
//! is what we check), and agreement of all exact triangle counters.

use degentri_graph::degeneracy::{degeneracy_reference, CoreDecomposition};
use degentri_graph::properties::wedge_count;
use degentri_graph::triangles::{
    count_triangles, count_triangles_brute_force, enumerate_triangles, TriangleCounts,
};
use degentri_graph::{CsrGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

/// Strategy: a random simple graph with up to `max_n` vertices and up to
/// `max_m` attempted edges (duplicates/self-loops are dropped).
fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..=max_n)
        .prop_flat_map(move |n| {
            let edge = (0..n, 0..n);
            (Just(n), proptest::collection::vec(edge, 0..=max_m))
        })
        .prop_map(|(n, pairs)| {
            let mut b = GraphBuilder::with_vertices(n as usize);
            for (a, c) in pairs {
                if a != c {
                    b.add_edge_raw(a, c);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_invariants(g in arb_graph(40, 160)) {
        // Adjacency lists sorted, symmetric, no self-loops, degree sums to 2m.
        let mut degree_sum = 0usize;
        for v in g.vertices() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!ns.contains(&v));
            for &w in ns {
                prop_assert!(g.neighbors(w).contains(&v));
            }
            degree_sum += g.degree(v);
        }
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // Edge list is sorted, unique, normalized.
        let edges = g.edges();
        prop_assert!(edges.windows(2).all(|w| w[0] < w[1]));
        for e in edges {
            prop_assert!(e.u() < e.v());
            prop_assert!(g.has_edge(e.u(), e.v()));
        }
    }

    #[test]
    fn degeneracy_matches_reference_and_bounds(g in arb_graph(24, 80)) {
        let d = CoreDecomposition::compute(&g);
        prop_assert_eq!(d.degeneracy, degeneracy_reference(&g));
        // κ is at most the max degree and at most sqrt(2m) + 1.
        prop_assert!(d.degeneracy <= g.max_degree());
        let m = g.num_edges() as f64;
        prop_assert!((d.degeneracy as f64) <= (2.0 * m).sqrt() + 1.0);
        // The peeling order certifies κ.
        prop_assert!(d.verify(&g));
        // Core numbers are bounded by degree and by κ.
        for v in g.vertices() {
            prop_assert!(d.core_numbers[v.index()] <= g.degree(v));
            prop_assert!(d.core_numbers[v.index()] <= d.degeneracy);
        }
    }

    #[test]
    fn exact_triangle_counters_agree(g in arb_graph(20, 70)) {
        let forward = count_triangles(&g);
        let brute = count_triangles_brute_force(&g);
        let edge_iter = TriangleCounts::compute(&g);
        prop_assert_eq!(forward, brute);
        prop_assert_eq!(edge_iter.total, brute);
        prop_assert_eq!(edge_iter.triangles.len() as u64, brute);
        // Per-edge counts sum to 3T; per-vertex counts sum to 3T.
        prop_assert_eq!(edge_iter.per_edge_sum(), 3 * brute);
        prop_assert_eq!(edge_iter.per_vertex.iter().sum::<u64>(), 3 * brute);
    }

    #[test]
    fn chiba_nishizeki_bounds(g in arb_graph(30, 120)) {
        let kappa = CoreDecomposition::compute(&g).degeneracy as u64;
        let m = g.num_edges() as u64;
        let d_e = g.edge_degree_sum();
        let t = count_triangles(&g);
        // Lemma 3.1: d_E <= 2 m κ.
        prop_assert!(d_e <= 2 * m * kappa.max(1) || m == 0);
        if kappa > 0 {
            prop_assert!(d_e <= 2 * m * kappa);
        }
        // Corollary 3.2: T <= 2 m κ (in fact T <= d_E / 3 <= 2mκ/3).
        prop_assert!(t <= 2 * m * kappa.max(1));
        prop_assert!(3 * t <= d_e.max(1) || t == 0);
        // Triangles never exceed wedges / something basic: 3T <= W.
        prop_assert!(3 * t <= wedge_count(&g).max(1) || t == 0);
    }

    #[test]
    fn enumerated_triangles_are_real_and_unique(g in arb_graph(18, 60)) {
        let ts = enumerate_triangles(&g);
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), ts.len(), "no triangle listed twice");
        for t in &ts {
            let [a, b, c] = t.vertices();
            prop_assert!(g.is_triangle(a, b, c));
        }
    }

    #[test]
    fn induced_subgraph_degeneracy_never_exceeds_parent(g in arb_graph(20, 70)) {
        // Keep a deterministic half of the vertices.
        let keep: Vec<bool> = (0..g.num_vertices()).map(|v| v % 2 == 0).collect();
        let (sub, _) = g.induced_subgraph(&keep);
        let parent = CoreDecomposition::compute(&g).degeneracy;
        let child = CoreDecomposition::compute(&sub).degeneracy;
        prop_assert!(child <= parent);
    }

    #[test]
    fn edge_degree_is_min_endpoint_degree(g in arb_graph(25, 90)) {
        for &e in g.edges() {
            let expect = g.degree(e.u()).min(g.degree(e.v()));
            prop_assert_eq!(g.edge_degree(e), expect);
            let lo = g.lower_degree_endpoint(e);
            prop_assert_eq!(g.degree(lo), expect);
            prop_assert!(e.contains(lo));
        }
    }

    #[test]
    fn edge_key_roundtrip_and_order(g in arb_graph(40, 160)) {
        // key() is a bijection whose u64 order matches the edge order, so a
        // sorted edge list maps to a strictly increasing key vector.
        let keys: Vec<u64> = g.edges().iter().map(|e| e.key()).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        for (&e, &k) in g.edges().iter().zip(&keys) {
            prop_assert_eq!(degentri_graph::Edge::from_key(k), e);
        }
    }

    #[test]
    fn io_roundtrip(g in arb_graph(30, 100)) {
        let mut buf = Vec::new();
        degentri_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = degentri_graph::io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g.edges(), g2.edges());
    }
}

#[test]
fn vertex_id_index_roundtrip() {
    for raw in [0u32, 1, 17, 100_000] {
        assert_eq!(VertexId::new(raw).index(), raw as usize);
    }
}
