//! Minimal hand-rolled JSON support for [`RunReport`](crate::RunReport):
//! a string escaper for the writer and a small recursive-descent parser
//! for the round-trip reader. Std-only by design — the report schema is
//! flat and stable enough that a serde dependency would be pure weight.

use std::fmt::Write as _;

/// Escapes `s` into a JSON string literal (including the quotes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Integers that fit `u64` are kept exact (`Int`);
/// anything else numeric falls back to `f64`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonValue {
    Null,
    Bool(bool),
    Int(u64),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            JsonValue::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Field lookup on an object.
    pub(crate) fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// All fields of an object, in source order.
    pub(crate) fn fields(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub(crate) fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", pos)),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (bytes is valid UTF-8 by
                // construction from &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().ok_or("unexpected end of string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    if text.is_empty() {
        return Err(format!("expected number at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(JsonValue::Int(n));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_containers_and_escapes() {
        let doc = r#"{"a": [1, 2.5, -3, true, false, null], "b": {"nested": "x\n\"y\"", "big": 18446744073709551615}}"#;
        let v = parse(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1], JsonValue::Num(2.5));
        assert_eq!(a[2], JsonValue::Num(-3.0));
        assert_eq!(a[3], JsonValue::Bool(true));
        assert_eq!(a[5], JsonValue::Null);
        let b = v.get("b").unwrap();
        assert_eq!(b.get("nested").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(b.get("big").unwrap().as_u64(), Some(u64::MAX));
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "quote \" slash \\ newline \n tab \t ctrl \u{1} unicode ✓";
        let doc = format!("{{{}: {}}}", escape("k"), escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }
}
