//! # degentri-obs — first-party observability for the estimation engine
//!
//! A zero-dependency metrics/tracing layer threaded through every execution
//! tier of the `degentri` workspace. Three pieces:
//!
//! - **[`Recorder`]** — the instrumentation trait. Call sites are generic
//!   over a `R: Recorder` and monomorphize twice: once against
//!   [`NoopRecorder`] (whose `ENABLED = false` and `#[inline(always)]`
//!   empty bodies compile every instrumentation point to nothing — the
//!   disabled path costs zero) and once against [`MetricsRecorder`].
//! - **[`MetricsRecorder`]** — lock-free per-worker buffers of counters,
//!   nanosecond span timers and fixed-bucket [`Log2Histogram`]s. Workers
//!   write with relaxed atomics into their own *lane*; the lanes are merged
//!   into one [`MetricsSnapshot`] at run end.
//! - **[`RunReport`]** — a hierarchical run → cohort → pass → shard
//!   breakdown with self/total times, renderable as an aligned text tree
//!   (`Display`) and as stable-schema JSON (hand-rolled writer *and*
//!   parser, matching the `BENCH_PR*.json` idiom), so a future service
//!   endpoint can serve it without a serde dependency.
//!
//! [`PassTally`] is the one type that lives *inside* the hot loops: the
//! stage-fold accumulators of `degentri-core` / `degentri-dynamic` embed a
//! tally and bump it as they fold (items delivered, probe/sample hits,
//! sketch updates), so the counters ride the existing merge path and cost a
//! handful of integer adds per *chunk*, not per edge.
//!
//! Every instrumentation point is observation-only by construction: nothing
//! in this crate feeds back into sampling, scheduling or aggregation, so
//! results stay bit-identical with recording on, off, or mixed.
//!
//! ## Quickstart
//!
//! ```
//! use degentri_obs::{Counter, Hist, MetricsRecorder, Recorder, Span};
//!
//! let recorder = MetricsRecorder::new(4); // one lane per worker
//! recorder.add(0, Counter::SweepsExecuted, 6);
//! recorder.span(1, Span::FusedSweep, 1_250_000);
//! recorder.observe(2, Hist::ShardNanos, 310_000);
//! let snapshot = recorder.snapshot().unwrap();
//! assert_eq!(snapshot.counter(Counter::SweepsExecuted), 6);
//! assert_eq!(snapshot.span_count(Span::FusedSweep), 1);
//! assert_eq!(snapshot.histogram(Hist::ShardNanos).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
pub mod metrics;
pub mod recorder;
pub mod report;

pub use metrics::{Log2Histogram, MetricsRecorder, MetricsSnapshot};
pub use recorder::{Counter, Hist, NoopRecorder, Recorder, Span};
pub use report::{CohortReport, JobReport, PassReport, PassTally, RunReport, ShardReport};
