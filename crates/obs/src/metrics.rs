//! The enabled recorder: lock-free per-lane buffers merged into a
//! [`MetricsSnapshot`] at run end.
//!
//! Each *lane* owns a flat block of `AtomicU64`s (counters, span sums and
//! counts, histogram buckets). Writers pick a lane by worker/shard/task
//! index and update it with relaxed atomics — different workers touch
//! different cache lines, same-lane contention is rare, and there is no
//! locking, hashing or allocation anywhere on the record path. Relaxed
//! ordering is sufficient because the merge happens after the worker pool
//! has joined (the join is the synchronization point).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::recorder::{Counter, Hist, Recorder, Span};

/// Number of buckets in a [`Log2Histogram`]: bucket 0 holds zeros, bucket
/// `b ≥ 1` holds values in `[2^(b-1), 2^b - 1]`, up to bucket 64 for values
/// with the top bit set.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket base-2 histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Log2Histogram {
    /// The bucket a value falls into: 0 for zero, otherwise
    /// `64 − leading_zeros(v)` (the position of the highest set bit, plus
    /// one).
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive `[low, high]` value range of bucket `b`.
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        match b {
            0 => (0, 0),
            1..=63 => (1u64 << (b - 1), (1u64 << b) - 1),
            _ => (1u64 << 63, u64::MAX),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Log2Histogram::bucket_index(value)] += 1;
    }

    /// Count in bucket `b` (0 for out-of-range `b`).
    pub fn bucket(&self, b: usize) -> u64 {
        self.buckets.get(b).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs, in index order —
    /// the sparse form the JSON writer emits.
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| (b, c))
            .collect()
    }

    /// Rebuilds a histogram from sparse `(bucket_index, count)` pairs;
    /// `None` if any index is out of range.
    pub fn from_nonzero(pairs: &[(usize, u64)]) -> Option<Log2Histogram> {
        let mut h = Log2Histogram::default();
        for &(b, c) in pairs {
            if b >= HIST_BUCKETS {
                return None;
            }
            h.buckets[b] += c;
        }
        Some(h)
    }
}

/// One lane of atomic buffers (one per worker in the usual configuration).
struct Lane {
    counters: [AtomicU64; Counter::COUNT],
    span_nanos: [AtomicU64; Span::COUNT],
    span_count: [AtomicU64; Span::COUNT],
    hist_buckets: Vec<AtomicU64>, // Hist::COUNT × HIST_BUCKETS, flattened
}

impl Lane {
    fn new() -> Lane {
        Lane {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            span_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            span_count: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_buckets: (0..Hist::COUNT * HIST_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }
}

/// The enabled [`Recorder`]: per-lane lock-free buffers.
pub struct MetricsRecorder {
    lanes: Vec<Lane>,
}

impl std::fmt::Debug for MetricsRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRecorder")
            .field("lanes", &self.lanes.len())
            .finish()
    }
}

impl MetricsRecorder {
    /// A recorder with `lanes` independent write buffers (use the worker
    /// count; a zero request still allocates one lane).
    pub fn new(lanes: usize) -> MetricsRecorder {
        MetricsRecorder {
            lanes: (0..lanes.max(1)).map(|_| Lane::new()).collect(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    #[inline]
    fn lane(&self, lane: usize) -> &Lane {
        &self.lanes[lane % self.lanes.len()]
    }
}

impl Recorder for MetricsRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn add(&self, lane: usize, counter: Counter, n: u64) {
        self.lane(lane).counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn span(&self, lane: usize, span: Span, nanos: u64) {
        let l = self.lane(lane);
        l.span_nanos[span.index()].fetch_add(nanos, Ordering::Relaxed);
        l.span_count[span.index()].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn observe(&self, lane: usize, hist: Hist, value: u64) {
        let bucket = Log2Histogram::bucket_index(value);
        self.lane(lane).hist_buckets[hist.index() * HIST_BUCKETS + bucket]
            .fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::default();
        for lane in &self.lanes {
            for c in Counter::ALL {
                snap.counters[c.index()] += lane.counters[c.index()].load(Ordering::Relaxed);
            }
            for s in Span::ALL {
                snap.span_nanos[s.index()] += lane.span_nanos[s.index()].load(Ordering::Relaxed);
                snap.span_counts[s.index()] += lane.span_count[s.index()].load(Ordering::Relaxed);
            }
            for h in Hist::ALL {
                let base = h.index() * HIST_BUCKETS;
                for b in 0..HIST_BUCKETS {
                    let n = lane.hist_buckets[base + b].load(Ordering::Relaxed);
                    if n != 0 {
                        snap.histograms[h.index()].buckets[b] += n;
                    }
                }
            }
        }
        Some(snap)
    }
}

/// All lanes of a [`MetricsRecorder`] merged into plain values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals, indexed by [`Counter::index`].
    pub counters: [u64; Counter::COUNT],
    /// Total nanoseconds per span site, indexed by [`Span::index`].
    pub span_nanos: [u64; Span::COUNT],
    /// Invocation counts per span site, indexed by [`Span::index`].
    pub span_counts: [u64; Span::COUNT],
    /// Value distributions, indexed by [`Hist::index`].
    pub histograms: [Log2Histogram; Hist::COUNT],
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            counters: [0; Counter::COUNT],
            span_nanos: [0; Span::COUNT],
            span_counts: [0; Span::COUNT],
            histograms: std::array::from_fn(|_| Log2Histogram::default()),
        }
    }
}

impl MetricsSnapshot {
    /// Total of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Total nanoseconds recorded against one span site.
    pub fn span_total_nanos(&self, s: Span) -> u64 {
        self.span_nanos[s.index()]
    }

    /// Number of intervals recorded against one span site.
    pub fn span_count(&self, s: Span) -> u64 {
        self.span_counts[s.index()]
    }

    /// One histogram.
    pub fn histogram(&self, h: Hist) -> &Log2Histogram {
        &self.histograms[h.index()]
    }

    /// Adds every value of `other` into `self`.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for i in 0..Counter::COUNT {
            self.counters[i] += other.counters[i];
        }
        for i in 0..Span::COUNT {
            self.span_nanos[i] += other.span_nanos[i];
            self.span_counts[i] += other.span_counts[i];
        }
        for i in 0..Hist::COUNT {
            self.histograms[i].merge(&other.histograms[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Bucket 0 is exactly zero; bucket b ≥ 1 covers [2^(b-1), 2^b - 1].
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        for b in 1..=63usize {
            let (low, high) = Log2Histogram::bucket_bounds(b);
            assert_eq!(low, 1u64 << (b - 1));
            assert_eq!(high, (1u64 << b) - 1);
            assert_eq!(Log2Histogram::bucket_index(low), b, "low edge of {b}");
            assert_eq!(Log2Histogram::bucket_index(high), b, "high edge of {b}");
            if b < 63 {
                assert_eq!(Log2Histogram::bucket_index(high + 1), b + 1);
            }
        }
        assert_eq!(Log2Histogram::bucket_index(1u64 << 63), 64);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_bounds(64), (1u64 << 63, u64::MAX));
        assert_eq!(Log2Histogram::bucket_bounds(0), (0, 0));
    }

    #[test]
    fn histogram_records_merges_and_round_trips_sparse_form() {
        let mut a = Log2Histogram::default();
        for v in [0, 0, 1, 3, 4, 1000, u64::MAX] {
            a.record(v);
        }
        assert_eq!(a.count(), 7);
        assert_eq!(a.bucket(0), 2);
        assert_eq!(a.bucket(1), 1);
        assert_eq!(a.bucket(2), 1);
        assert_eq!(a.bucket(3), 1);
        assert_eq!(a.bucket(10), 1); // 1000 ∈ [512, 1023]
        assert_eq!(a.bucket(64), 1);
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.count(), 14);
        assert_eq!(Log2Histogram::from_nonzero(&a.nonzero()), Some(a));
        assert_eq!(Log2Histogram::from_nonzero(&[(65, 1)]), None);
    }

    #[test]
    fn lanes_merge_into_one_snapshot() {
        let r = MetricsRecorder::new(3);
        assert_eq!(r.lanes(), 3);
        r.add(0, Counter::ItemsFolded, 10);
        r.add(1, Counter::ItemsFolded, 20);
        r.add(5, Counter::ItemsFolded, 30); // wraps to lane 2
        r.span(0, Span::FusedSweep, 100);
        r.span(2, Span::FusedSweep, 200);
        r.observe(0, Hist::PassNanos, 0);
        r.observe(1, Hist::PassNanos, 7);
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.counter(Counter::ItemsFolded), 60);
        assert_eq!(snap.span_total_nanos(Span::FusedSweep), 300);
        assert_eq!(snap.span_count(Span::FusedSweep), 2);
        assert_eq!(snap.histogram(Hist::PassNanos).count(), 2);
        assert_eq!(snap.histogram(Hist::PassNanos).bucket(0), 1);
        assert_eq!(snap.histogram(Hist::PassNanos).bucket(3), 1);
        // Snapshot merge doubles everything.
        let mut doubled = snap.clone();
        doubled.merge(&snap);
        assert_eq!(doubled.counter(Counter::ItemsFolded), 120);
        assert_eq!(doubled.span_count(Span::FusedSweep), 4);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let r = MetricsRecorder::new(4);
        std::thread::scope(|scope| {
            for lane in 0..4 {
                let r = &r;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.add(lane, Counter::ProbeHits, 1);
                        r.observe(lane, Hist::ShardNanos, lane as u64);
                    }
                });
            }
        });
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.counter(Counter::ProbeHits), 4000);
        assert_eq!(snap.histogram(Hist::ShardNanos).count(), 4000);
    }
}
