//! The [`Recorder`] trait and its zero-cost disabled implementation.
//!
//! Instrumented code is generic over `R: Recorder` and branches on the
//! associated `const ENABLED`. With [`NoopRecorder`] the constant is
//! `false`: every `if R::ENABLED { … }` block is dead code after
//! monomorphization and every trait call inlines to an empty body, so the
//! disabled path compiles to exactly the uninstrumented program.
//!
//! Metric identities are closed enums rather than string keys so the
//! enabled recorder can use flat fixed-size arrays (no hashing, no
//! allocation on the hot path) and the JSON schema stays stable.

use crate::metrics::MetricsSnapshot;

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Shared sweeps executed over a snapshot (fused cohorts count one
    /// sweep per pass regardless of copy count).
    SweepsExecuted,
    /// Stream items (edges or updates) delivered into stage folds, summed
    /// over copies — a fused sweep feeding 4 copies counts `4 × m`.
    ItemsFolded,
    /// Probe-structure hits inside stage folds (tracked-endpoint bumps,
    /// neighbor-sample offers, closure-edge matches).
    ProbeHits,
    /// ℓ₀-sketch updates applied by the turnstile estimator's folds.
    SketchUpdates,
    /// Copies executed inside fused cohorts.
    CohortCopies,
    /// Per-copy tasks executed on the copy-parallel tier.
    TasksExecuted,
    /// Jobs completed by the run.
    JobsCompleted,
    /// Jobs that finished with a contained per-job error.
    JobsFailed,
    /// Copies evicted from fused cohorts by containment (a failing job's
    /// copies leave the union; survivors are unperturbed).
    CohortEvictions,
    /// Faults fired by an installed fault-injection plan (always 0 without
    /// the `fault-inject` feature).
    FaultsInjected,
    /// Shared sweeps executed by fused cohorts (one sweep serves every
    /// cohort member; subset of [`Counter::SweepsExecuted`]).
    FusedSweeps,
    /// Sweeps executed by per-copy tasks (including the dynamic stats
    /// pass; `SweepsExecuted - FusedSweeps`).
    PerCopySweeps,
    /// Measured shard-nanoseconds spent inside fused cohort sweeps.
    FusedBusyNanos,
    /// Measured nanoseconds spent inside per-copy task bodies.
    PerCopyBusyNanos,
    /// Retry attempts executed for failed copies (each re-execution of
    /// one copy counts once, successful or not).
    CopiesRetried,
    /// Copies whose failures survived the retry layer and entered the
    /// quorum-governed degraded path.
    CopiesQuarantined,
    /// Jobs that succeeded on a surviving-copy quorum with fewer copies
    /// than configured.
    JobsDegraded,
    /// Wall-clock nanoseconds the retry layer slept in backoff delays.
    RetryBackoffNanos,
}

impl Counter {
    /// Number of counters (size of the flat per-lane array).
    pub const COUNT: usize = 18;
    /// All counters, in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::SweepsExecuted,
        Counter::ItemsFolded,
        Counter::ProbeHits,
        Counter::SketchUpdates,
        Counter::CohortCopies,
        Counter::TasksExecuted,
        Counter::JobsCompleted,
        Counter::JobsFailed,
        Counter::CohortEvictions,
        Counter::FaultsInjected,
        Counter::FusedSweeps,
        Counter::PerCopySweeps,
        Counter::FusedBusyNanos,
        Counter::PerCopyBusyNanos,
        Counter::CopiesRetried,
        Counter::CopiesQuarantined,
        Counter::JobsDegraded,
        Counter::RetryBackoffNanos,
    ];

    /// Flat array index of this counter.
    #[inline(always)]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::SweepsExecuted => "sweeps_executed",
            Counter::ItemsFolded => "items_folded",
            Counter::ProbeHits => "probe_hits",
            Counter::SketchUpdates => "sketch_updates",
            Counter::CohortCopies => "cohort_copies",
            Counter::TasksExecuted => "tasks_executed",
            Counter::JobsCompleted => "jobs_completed",
            Counter::JobsFailed => "jobs_failed",
            Counter::CohortEvictions => "cohort_evictions",
            Counter::FaultsInjected => "faults_injected",
            Counter::FusedSweeps => "fused_sweeps",
            Counter::PerCopySweeps => "per_copy_sweeps",
            Counter::FusedBusyNanos => "fused_busy_nanos",
            Counter::PerCopyBusyNanos => "per_copy_busy_nanos",
            Counter::CopiesRetried => "copies_retried",
            Counter::CopiesQuarantined => "copies_quarantined",
            Counter::JobsDegraded => "jobs_degraded",
            Counter::RetryBackoffNanos => "retry_backoff_nanos",
        }
    }

    /// Inverse of [`Counter::name`].
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Span timers: total nanoseconds and invocation count per site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// Building a cohort's staged copies before the first sweep.
    CohortFormation,
    /// Building the per-pass union probe structures (cohort plan).
    PlanBuild,
    /// One shared sweep of a fused cohort (all copies, all shards).
    FusedSweep,
    /// One task on the per-copy tier, queue-claim to completion.
    PerCopyTask,
    /// The shared pre-pass computing stream statistics for oracle jobs.
    StatsPass,
}

impl Span {
    /// Number of spans (size of the flat per-lane arrays).
    pub const COUNT: usize = 5;
    /// All spans, in index order.
    pub const ALL: [Span; Span::COUNT] = [
        Span::CohortFormation,
        Span::PlanBuild,
        Span::FusedSweep,
        Span::PerCopyTask,
        Span::StatsPass,
    ];

    /// Flat array index of this span.
    #[inline(always)]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Span::CohortFormation => "cohort_formation",
            Span::PlanBuild => "plan_build",
            Span::FusedSweep => "fused_sweep",
            Span::PerCopyTask => "per_copy_task",
            Span::StatsPass => "stats_pass",
        }
    }

    /// Inverse of [`Span::name`].
    pub fn from_name(name: &str) -> Option<Span> {
        Span::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Log2-bucketed value distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hist {
    /// Wall nanoseconds of one shared pass/sweep.
    PassNanos,
    /// Busy nanoseconds of one shard's fold within a sharded pass.
    ShardNanos,
    /// Busy nanoseconds of one per-copy task.
    TaskNanos,
    /// Per-job latency from submission to run completion.
    JobLatencyNanos,
}

impl Hist {
    /// Number of histograms (size of the flat per-lane array).
    pub const COUNT: usize = 4;
    /// All histograms, in index order.
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::PassNanos,
        Hist::ShardNanos,
        Hist::TaskNanos,
        Hist::JobLatencyNanos,
    ];

    /// Flat array index of this histogram.
    #[inline(always)]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Hist::PassNanos => "pass_nanos",
            Hist::ShardNanos => "shard_nanos",
            Hist::TaskNanos => "task_nanos",
            Hist::JobLatencyNanos => "job_latency_nanos",
        }
    }

    /// Inverse of [`Hist::name`].
    pub fn from_name(name: &str) -> Option<Hist> {
        Hist::ALL.into_iter().find(|h| h.name() == name)
    }
}

/// An instrumentation sink. `lane` is a worker/shard/task index used by the
/// enabled recorder to spread concurrent writers over independent cache
/// lines; any value is accepted (lanes wrap modulo the buffer count), so
/// call sites never bounds-check.
pub trait Recorder: Sync {
    /// `false` only for [`NoopRecorder`]; instrumented code gates any
    /// non-trivial argument computation on this constant so the disabled
    /// path performs no extra work at all.
    const ENABLED: bool;

    /// Adds `n` to a counter.
    fn add(&self, lane: usize, counter: Counter, n: u64);

    /// Records one timed interval against a span site.
    fn span(&self, lane: usize, span: Span, nanos: u64);

    /// Records one observation into a histogram.
    fn observe(&self, lane: usize, hist: Hist, value: u64);

    /// Merged view of everything recorded so far; `None` when the recorder
    /// keeps no state (the no-op).
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// The disabled recorder: keeps nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&self, _lane: usize, _counter: Counter, _n: u64) {}

    #[inline(always)]
    fn span(&self, _lane: usize, _span: Span, _nanos: u64) {}

    #[inline(always)]
    fn observe(&self, _lane: usize, _hist: Hist, _value: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_names_round_trip() {
        for (i, c) in Counter::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        for (i, s) in Span::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Span::from_name(s.name()), Some(s));
        }
        for (i, h) in Hist::ALL.into_iter().enumerate() {
            assert_eq!(h.index(), i);
            assert_eq!(Hist::from_name(h.name()), Some(h));
        }
        assert_eq!(Counter::from_name("nope"), None);
    }

    #[test]
    fn noop_recorder_is_disabled_and_stateless() {
        const { assert!(!NoopRecorder::ENABLED) };
        let r = NoopRecorder;
        r.add(0, Counter::ItemsFolded, 10);
        r.span(1, Span::FusedSweep, 10);
        r.observe(2, Hist::PassNanos, 10);
        assert!(r.snapshot().is_none());
    }
}
