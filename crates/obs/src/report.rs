//! Hierarchical run reports: run → cohort → pass → shard, with self/total
//! times, an aligned text tree (`Display`) and stable-schema JSON in both
//! directions.
//!
//! The report is assembled by the engine *after* a run from the pass traces
//! of the fused driver, the per-job accounting of the scheduler and the
//! merged [`MetricsSnapshot`] — nothing here is consulted during execution,
//! so building (or not building) a report cannot perturb results.
//!
//! The JSON schema is hand-rolled and versioned
//! (`"schema": "degentri.run_report.v1"`), matching the `BENCH_PR*.json`
//! idiom: flat objects, snake_case keys, integers only. `from_json` parses
//! exactly what `to_json` writes so snapshots can be archived and reloaded
//! without a serde dependency.

use std::fmt;

use crate::json::{escape, parse, JsonValue};
use crate::metrics::{Log2Histogram, MetricsSnapshot};
use crate::recorder::{Counter, Hist, Span};

/// Fold-loop counters carried inside a stage accumulator and merged along
/// the existing shard-merge path: one bump per delivered chunk plus a few
/// on rare hit paths, so tallying is cheap enough to leave on always.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassTally {
    /// Stream items (edges or updates) delivered to this accumulator.
    pub items: u64,
    /// Probe-structure hits: tracked-endpoint bumps, neighbor-sample
    /// offers, closure-edge matches, gathered samples.
    pub hits: u64,
    /// Structure updates applied: ℓ₀-sketch updates in the turnstile
    /// folds, occurrence-counter increments in the assignment passes.
    pub updates: u64,
    /// Full `LANES`-wide blocks the fold processed through the lane-batched
    /// kernels. `kernel_batches × LANES` of `items` went through the
    /// SIMD-width path; the remainder is the scalar tail, so the report can
    /// show lane utilization per pass/shard. Zero for passes with no lane
    /// kernel (order-sensitive folds).
    pub kernel_batches: u64,
}

impl PassTally {
    /// Adds `other` into `self` (the shard/copy merge).
    pub fn merge(&mut self, other: PassTally) {
        self.items += other.items;
        self.hits += other.hits;
        self.updates += other.updates;
        self.kernel_batches += other.kernel_batches;
    }
}

/// One shard of one pass: how much stream it folded and for how long.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Items in the shard's slice.
    pub items: u64,
    /// Busy nanoseconds of the shard's fold.
    pub nanos: u64,
}

/// One shared pass of a fused cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct PassReport {
    /// Stable pass name (e.g. `p4_closure`).
    pub name: String,
    /// Self time: building the union probe structures (the cohort plan).
    pub plan_nanos: u64,
    /// Wall time of the shared sweep over the snapshot.
    pub sweep_nanos: u64,
    /// Items in the snapshot (each copy of the cohort saw all of them).
    pub items: u64,
    /// Fold-loop tallies summed over the cohort's copies.
    pub tally: PassTally,
    /// Per-shard breakdown (empty when the pass ran unsharded).
    pub shards: Vec<ShardReport>,
}

impl PassReport {
    /// Total wall nanoseconds attributed to the pass (plan + sweep).
    pub fn total_nanos(&self) -> u64 {
        self.plan_nanos + self.sweep_nanos
    }
}

/// One fused cohort: `copies` staged copies driven by shared sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortReport {
    /// What the cohort ran (e.g. `six-pass` or `turnstile`).
    pub label: String,
    /// Copies fused into the cohort.
    pub copies: usize,
    /// Workers the cohort's sweeps ran on.
    pub workers: usize,
    /// Shards each sweep was split into.
    pub shards: usize,
    /// Self time: constructing the staged copies before the first sweep.
    pub formation_nanos: u64,
    /// The cohort's passes, in execution order.
    pub passes: Vec<PassReport>,
}

impl CohortReport {
    /// Total wall nanoseconds attributed to the cohort
    /// (formation + every pass).
    pub fn total_nanos(&self) -> u64 {
        self.formation_nanos + self.passes.iter().map(PassReport::total_nanos).sum::<u64>()
    }
}

/// One submitted job, from queue to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The job's label.
    pub label: String,
    /// Tasks (copies, or 1 for a baseline) the job expanded into.
    pub tasks: usize,
    /// CPU-busy nanoseconds the job's tasks consumed across all workers.
    pub busy_nanos: u64,
    /// Nanoseconds from [`Engine::submit`](crate) to run completion
    /// (queueing + execution + aggregation).
    pub latency_nanos: u64,
}

/// The full hierarchical breakdown of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Wall nanoseconds of the whole run.
    pub wall_nanos: u64,
    /// Workers the run was scheduled on.
    pub workers: usize,
    /// Fused cohorts, in formation order.
    pub cohorts: Vec<CohortReport>,
    /// Per-job accounting, in submission order.
    pub jobs: Vec<JobReport>,
    /// Merged counters/spans/histograms from the run's recorder.
    pub metrics: MetricsSnapshot,
}

fn ms(nanos: u64) -> String {
    format!("{:.3}ms", nanos as f64 / 1e6)
}

impl fmt::Display for RunReport {
    /// Aligned text tree: run → cohort → pass → shard, then jobs, then a
    /// metrics summary. Self time is the level's own work (cohort
    /// formation, pass planning); total includes the children.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run · {} workers · wall {}",
            self.workers,
            ms(self.wall_nanos)
        )?;
        for cohort in &self.cohorts {
            writeln!(
                f,
                "├─ cohort {} · {} copies · {} workers × {} shards · total {} · self {} (formation)",
                cohort.label,
                cohort.copies,
                cohort.workers,
                cohort.shards,
                ms(cohort.total_nanos()),
                ms(cohort.formation_nanos),
            )?;
            let name_width = cohort
                .passes
                .iter()
                .map(|p| p.name.len())
                .max()
                .unwrap_or(0);
            for (pi, pass) in cohort.passes.iter().enumerate() {
                let last_pass = pi + 1 == cohort.passes.len();
                let tee = if last_pass { "└─" } else { "├─" };
                writeln!(
                    f,
                    "│  {tee} {:<name_width$} · total {} · self {} (plan) · items {} · hits {} · updates {} · batches {}",
                    pass.name,
                    ms(pass.total_nanos()),
                    ms(pass.plan_nanos),
                    pass.tally.items,
                    pass.tally.hits,
                    pass.tally.updates,
                    pass.tally.kernel_batches,
                )?;
                let bar = if last_pass { "   " } else { "│  " };
                for (si, shard) in pass.shards.iter().enumerate() {
                    let stee = if si + 1 == pass.shards.len() {
                        "└─"
                    } else {
                        "├─"
                    };
                    writeln!(
                        f,
                        "│  {bar}{stee} shard {si:>2} · items {:>8} · busy {}",
                        shard.items,
                        ms(shard.nanos),
                    )?;
                }
            }
        }
        let label_width = self.jobs.iter().map(|j| j.label.len()).max().unwrap_or(0);
        for job in &self.jobs {
            writeln!(
                f,
                "├─ job {:<label_width$} · {} tasks · busy {} · queue→done {}",
                job.label,
                job.tasks,
                ms(job.busy_nanos),
                ms(job.latency_nanos),
            )?;
        }
        writeln!(f, "└─ metrics")?;
        write!(f, "   ├─ counters")?;
        for c in Counter::ALL {
            write!(f, " · {} {}", c.name(), self.metrics.counter(c))?;
        }
        writeln!(f)?;
        write!(f, "   ├─ spans")?;
        for s in Span::ALL {
            write!(
                f,
                " · {} {}× {}",
                s.name(),
                self.metrics.span_count(s),
                ms(self.metrics.span_total_nanos(s))
            )?;
        }
        writeln!(f)?;
        write!(f, "   └─ histograms")?;
        for h in Hist::ALL {
            write!(f, " · {} n={}", h.name(), self.metrics.histogram(h).count())?;
        }
        writeln!(f)
    }
}

impl RunReport {
    /// Serializes the report as pretty-printed, stable-schema JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"degentri.run_report.v1\",\n");
        out.push_str(&format!("  \"wall_nanos\": {},\n", self.wall_nanos));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str("  \"cohorts\": [");
        for (i, cohort) in self.cohorts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"label\": {},\n", escape(&cohort.label)));
            out.push_str(&format!("      \"copies\": {},\n", cohort.copies));
            out.push_str(&format!("      \"workers\": {},\n", cohort.workers));
            out.push_str(&format!("      \"shards\": {},\n", cohort.shards));
            out.push_str(&format!(
                "      \"formation_nanos\": {},\n",
                cohort.formation_nanos
            ));
            out.push_str(&format!(
                "      \"total_nanos\": {},\n",
                cohort.total_nanos()
            ));
            out.push_str("      \"passes\": [");
            for (j, pass) in cohort.passes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        {");
                out.push_str(&format!("\"name\": {}, ", escape(&pass.name)));
                out.push_str(&format!("\"plan_nanos\": {}, ", pass.plan_nanos));
                out.push_str(&format!("\"sweep_nanos\": {}, ", pass.sweep_nanos));
                out.push_str(&format!("\"items\": {}, ", pass.items));
                out.push_str(&format!(
                    "\"tally\": {{\"items\": {}, \"hits\": {}, \"updates\": {}, \"kernel_batches\": {}}}, ",
                    pass.tally.items, pass.tally.hits, pass.tally.updates, pass.tally.kernel_batches
                ));
                out.push_str("\"shards\": [");
                for (k, shard) in pass.shards.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "{{\"items\": {}, \"nanos\": {}}}",
                        shard.items, shard.nanos
                    ));
                }
                out.push_str("]}");
            }
            if !cohort.passes.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.cohorts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"jobs\": [");
        for (i, job) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"label\": {}, ", escape(&job.label)));
            out.push_str(&format!("\"tasks\": {}, ", job.tasks));
            out.push_str(&format!("\"busy_nanos\": {}, ", job.busy_nanos));
            out.push_str(&format!("\"latency_nanos\": {}}}", job.latency_nanos));
        }
        if !self.jobs.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"metrics\": {\n");
        out.push_str("    \"counters\": {");
        for (i, c) in Counter::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{}: {}",
                escape(c.name()),
                self.metrics.counter(c)
            ));
        }
        out.push_str("},\n");
        out.push_str("    \"spans\": {");
        for (i, s) in Span::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{}: {{\"count\": {}, \"total_nanos\": {}}}",
                escape(s.name()),
                self.metrics.span_count(s),
                self.metrics.span_total_nanos(s)
            ));
        }
        out.push_str("},\n");
        out.push_str("    \"histograms\": {");
        for (i, h) in Hist::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: [", escape(h.name())));
            for (j, (bucket, count)) in self.metrics.histogram(h).nonzero().into_iter().enumerate()
            {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{bucket}, {count}]"));
            }
            out.push(']');
        }
        out.push_str("}\n");
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// Parses a report previously written by [`RunReport::to_json`].
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let doc = parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing schema field")?;
        if schema != "degentri.run_report.v1" {
            return Err(format!("unsupported schema '{schema}'"));
        }
        let field_u64 = |v: &JsonValue, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        };
        let mut report = RunReport {
            wall_nanos: field_u64(&doc, "wall_nanos")?,
            workers: field_u64(&doc, "workers")? as usize,
            cohorts: Vec::new(),
            jobs: Vec::new(),
            metrics: MetricsSnapshot::default(),
        };
        for cohort in doc
            .get("cohorts")
            .and_then(JsonValue::as_arr)
            .ok_or("missing cohorts array")?
        {
            let mut passes = Vec::new();
            for pass in pass_array(cohort)? {
                let tally = pass.get("tally").ok_or("missing tally")?;
                let mut shards = Vec::new();
                for shard in pass
                    .get("shards")
                    .and_then(JsonValue::as_arr)
                    .ok_or("missing shards array")?
                {
                    shards.push(ShardReport {
                        items: field_u64(shard, "items")?,
                        nanos: field_u64(shard, "nanos")?,
                    });
                }
                passes.push(PassReport {
                    name: pass
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or("missing pass name")?
                        .to_string(),
                    plan_nanos: field_u64(pass, "plan_nanos")?,
                    sweep_nanos: field_u64(pass, "sweep_nanos")?,
                    items: field_u64(pass, "items")?,
                    tally: PassTally {
                        items: field_u64(tally, "items")?,
                        hits: field_u64(tally, "hits")?,
                        updates: field_u64(tally, "updates")?,
                        // Absent in pre-lane reports; default keeps older
                        // artifacts parseable.
                        kernel_batches: tally
                            .get("kernel_batches")
                            .and_then(JsonValue::as_u64)
                            .unwrap_or(0),
                    },
                    shards,
                });
            }
            report.cohorts.push(CohortReport {
                label: cohort
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .ok_or("missing cohort label")?
                    .to_string(),
                copies: field_u64(cohort, "copies")? as usize,
                workers: field_u64(cohort, "workers")? as usize,
                shards: field_u64(cohort, "shards")? as usize,
                formation_nanos: field_u64(cohort, "formation_nanos")?,
                passes,
            });
        }
        for job in doc
            .get("jobs")
            .and_then(JsonValue::as_arr)
            .ok_or("missing jobs array")?
        {
            report.jobs.push(JobReport {
                label: job
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .ok_or("missing job label")?
                    .to_string(),
                tasks: field_u64(job, "tasks")? as usize,
                busy_nanos: field_u64(job, "busy_nanos")?,
                latency_nanos: field_u64(job, "latency_nanos")?,
            });
        }
        let metrics = doc.get("metrics").ok_or("missing metrics object")?;
        for (name, value) in metrics
            .get("counters")
            .and_then(JsonValue::fields)
            .ok_or("missing counters")?
        {
            // Unknown names are skipped so older readers survive new
            // counters.
            if let Some(c) = Counter::from_name(name) {
                report.metrics.counters[c.index()] = value.as_u64().ok_or("non-integer counter")?;
            }
        }
        for (name, value) in metrics
            .get("spans")
            .and_then(JsonValue::fields)
            .ok_or("missing spans")?
        {
            if let Some(s) = Span::from_name(name) {
                report.metrics.span_counts[s.index()] = field_u64(value, "count")?;
                report.metrics.span_nanos[s.index()] = field_u64(value, "total_nanos")?;
            }
        }
        for (name, value) in metrics
            .get("histograms")
            .and_then(JsonValue::fields)
            .ok_or("missing histograms")?
        {
            if let Some(h) = Hist::from_name(name) {
                let mut pairs = Vec::new();
                for pair in value.as_arr().ok_or("histogram is not an array")? {
                    let pair = pair.as_arr().ok_or("histogram entry is not a pair")?;
                    if pair.len() != 2 {
                        return Err("histogram entry is not a pair".into());
                    }
                    pairs.push((
                        pair[0].as_u64().ok_or("bad bucket index")? as usize,
                        pair[1].as_u64().ok_or("bad bucket count")?,
                    ));
                }
                report.metrics.histograms[h.index()] =
                    Log2Histogram::from_nonzero(&pairs).ok_or("bucket index out of range")?;
            }
        }
        Ok(report)
    }
}

fn pass_array(cohort: &JsonValue) -> Result<&[JsonValue], String> {
    cohort
        .get("passes")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "missing passes array".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRecorder;
    use crate::recorder::Recorder;

    fn sample_report() -> RunReport {
        let recorder = MetricsRecorder::new(2);
        recorder.add(0, Counter::SweepsExecuted, 6);
        recorder.add(1, Counter::ItemsFolded, 4 * 1000);
        recorder.span(0, Span::FusedSweep, 1_000_000);
        recorder.span(0, Span::PlanBuild, 10_000);
        recorder.observe(0, Hist::ShardNanos, 250_000);
        recorder.observe(1, Hist::ShardNanos, 260_000);
        RunReport {
            wall_nanos: 2_000_000,
            workers: 2,
            cohorts: vec![CohortReport {
                label: "six-pass".into(),
                copies: 4,
                workers: 2,
                shards: 2,
                formation_nanos: 5_000,
                passes: vec![PassReport {
                    name: "p1_uniform_sample".into(),
                    plan_nanos: 10_000,
                    sweep_nanos: 1_000_000,
                    items: 1000,
                    tally: PassTally {
                        items: 4000,
                        hits: 12,
                        updates: 0,
                        kernel_batches: 62,
                    },
                    shards: vec![
                        ShardReport {
                            items: 500,
                            nanos: 250_000,
                        },
                        ShardReport {
                            items: 500,
                            nanos: 260_000,
                        },
                    ],
                }],
            }],
            jobs: vec![JobReport {
                label: "six-pass \"quoted\"".into(),
                tasks: 4,
                busy_nanos: 1_900_000,
                latency_nanos: 2_100_000,
            }],
            metrics: recorder.snapshot().unwrap(),
        }
    }

    #[test]
    fn totals_compose_from_children() {
        let report = sample_report();
        assert_eq!(report.cohorts[0].passes[0].total_nanos(), 1_010_000);
        assert_eq!(report.cohorts[0].total_nanos(), 1_015_000);
    }

    #[test]
    fn display_renders_the_full_tree() {
        let text = sample_report().to_string();
        for needle in [
            "run · 2 workers",
            "├─ cohort six-pass · 4 copies",
            "p1_uniform_sample",
            "shard  0",
            "shard  1",
            "├─ job six-pass",
            "queue→done",
            "└─ metrics",
            "sweeps_executed 6",
            "fused_sweep 1×",
            "shard_nanos n=2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn every_metric_name_appears_in_display_and_json() {
        // The schema assertion for the metrics tail: adding a counter,
        // span, or histogram without extending `ALL`/`name()` (or a JSON
        // writer that drops one) fails here, not in a downstream consumer.
        let report = sample_report();
        let text = report.to_string();
        let json = report.to_json();
        for c in Counter::ALL {
            assert!(text.contains(c.name()), "Display missing {}", c.name());
            assert!(
                json.contains(&format!("\"{}\"", c.name())),
                "JSON missing {}",
                c.name()
            );
        }
        for s in Span::ALL {
            assert!(text.contains(s.name()), "Display missing {}", s.name());
            assert!(json.contains(&format!("\"{}\"", s.name())));
        }
        for h in Hist::ALL {
            assert!(text.contains(h.name()), "Display missing {}", h.name());
            assert!(json.contains(&format!("\"{}\"", h.name())));
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"degentri.run_report.v1\""));
        let parsed = RunReport::from_json(&json).expect("parse own output");
        assert_eq!(parsed, report);
        // And the round trip is a fixed point of serialization.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn empty_report_round_trips_too() {
        let report = RunReport {
            wall_nanos: 0,
            workers: 1,
            cohorts: Vec::new(),
            jobs: Vec::new(),
            metrics: MetricsSnapshot::default(),
        };
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn from_json_rejects_other_schemas_and_garbage() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("not json").is_err());
        let wrong = sample_report()
            .to_json()
            .replace("run_report.v1", "run_report.v999");
        assert!(RunReport::from_json(&wrong).is_err());
    }
}
