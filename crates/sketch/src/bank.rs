//! Lane-batched execution of a bank of ℓ0 samplers.
//!
//! The turnstile estimator's hot loop feeds every update to a bank of
//! dozens to hundreds of [`L0Sampler`]s that share one fingerprint base.
//! Executed sampler-by-sampler, each touch re-reduces the key, re-walks a
//! small forest of `KWiseHash` heap allocations, and — worst of all —
//! computes every bucket index with a hardware 64-bit division
//! (`hash % cells`). [`L0Bank`] flattens the bank into a
//! structure-of-arrays so one update runs as **one batched kernel**:
//!
//! * **Shared reduced key** — the update carries `index mod p` once
//!   ([`SketchUpdate::reduced`]); every level and bucket hash of every
//!   sampler evaluates at that same point.
//! * **Strip-mined Horner chains** — the `k = 2` level hashes of all
//!   samplers are one contiguous loop over flat coefficient lanes
//!   (`hash::horner2_strip`), as are the level-0 bucket hashes each row;
//!   independent lanes keep the multiplier busy instead of serializing on
//!   pointer chases.
//! * **Mask buckets** — `cells_per_level` is a power of two in every
//!   configuration used here, so `hash % cells` becomes `hash & (cells−1)`
//!   (identical value), eliminating the division.
//! * **Batched `z^index` terms** — a [`FingerprintPow`] table replaces the
//!   square-and-multiply ladder of [`fingerprint_term`] with one
//!   multiplication per set exponent bit (`FingerprintPow::term`).
//! * **Per-key touch-list memoization** — turnstile streams revisit keys
//!   (an edge's delete carries the same index as its insert; oscillating
//!   churn revisits edges repeatedly), and *which* cells an update touches
//!   is a pure function of its reduced key once the bank's coefficients
//!   are fixed. A bounded direct-mapped cache remembers the flat cell
//!   indices the last update with each (hashed) key touched; a hit skips
//!   every level/bucket hash and replays the list column-by-column. Cell
//!   aggregates are linear, so touching the same cells with the same
//!   update values is bit-identical however they were enumerated.
//!
//! Cells live at `(at · cells + bucket) · samplers + sampler`, so the
//! level-0 rows every update touches are one compact region shared by the
//! whole bank, rather than a cache line per sampler.
//!
//! **Bit-identity.** A bank update touches each cell at most once (rows
//! are distinct `at` indices), and a cell's three aggregates are linear in
//! the updates it absorbs — so reordering the sampler/level loops of one
//! update never changes any cell, and every hash is evaluated by the same
//! field arithmetic as its `KWiseHash` owner would have used. The batched
//! kernel therefore produces exactly the state the sampler-by-sampler
//! reference ([`L0Bank::apply_batch_scalar`]) produces, which the sketch
//! and dynamic-estimator test suites assert bit for bit.

use crate::hash::{horner2, horner2_strip, KWiseHash, MERSENNE_PRIME};
use crate::l0::L0Sampler;
use crate::onesparse::{FingerprintPow, OneSparseRecovery, RecoveryOutcome, SketchUpdate};

/// A bank of identically-dimensioned [`L0Sampler`]s sharing one
/// fingerprint base, flattened column-wise for lane-batched updates.
///
/// Built by [`L0Bank::from_samplers`] from samplers constructed the usual
/// way (so the per-sampler randomness is drawn in exactly the historical
/// order), then updated through [`apply`](L0Bank::apply) /
/// [`apply_batch`](L0Bank::apply_batch). Sampling and space accounting
/// reproduce the per-sampler structures exactly.
#[derive(Debug, Clone)]
pub struct L0Bank {
    samplers: usize,
    max_level: usize,
    cells_per_level: usize,
    rows_per_level: usize,
    rows_total: usize,
    /// `cells_per_level − 1` when it is a power of two (bucket via AND),
    /// zero otherwise (bucket via division).
    bucket_mask: u64,
    shared_base: u64,
    pow: FingerprintPow,
    /// Level-hash coefficients, one lane per sampler.
    level_c0: Vec<u64>,
    level_c1: Vec<u64>,
    /// Bucket-hash coefficients at `at · samplers + s`.
    bucket_c0: Vec<u64>,
    bucket_c1: Vec<u64>,
    /// Selection hashes stay whole — only [`sample`](L0Bank::sample)
    /// evaluates them, far off the hot path.
    selection: Vec<KWiseHash>,
    /// Cell aggregates at `(at · cells + b) · samplers + s`.
    weight: Vec<i128>,
    index_sum: Vec<i128>,
    fingerprint: Vec<u64>,
    updates_seen: Vec<u64>,
    /// Per-update hash strip (reused across updates; not part of state).
    scratch_hash: Vec<u64>,
    /// Per-update item levels (ditto).
    scratch_level: Vec<u32>,
    /// Touch-list cache, direct-mapped: `(reduced key, arena offset, len)`
    /// per slot (`u64::MAX` = empty). Lazily sized on the first
    /// [`apply`](L0Bank::apply) so banks driven only through
    /// [`apply_one`](L0Bank::apply_one) pay nothing.
    cache_entries: Vec<(u64, u32, u32)>,
    /// One shared arena holding every cached touch list back to back — a
    /// hit reads one 16-byte entry and then streams a contiguous slice,
    /// with no per-slot heap indirection. Evicted lists leave dead ranges
    /// behind; the arena is wiped (entries too) if it ever outgrows
    /// [`TOUCH_ARENA_CAP`].
    cache_arena: Vec<u32>,
    /// Touch-cache hits since construction (diagnostic; not sketch state).
    cache_hits: u64,
}

/// log2 of the touch-cache slot count: 16384 direct-mapped slots. Sized so
/// a stream's working set of revisited keys stays resident without the
/// cache itself growing with the stream — it is scratch, not sketch state,
/// and is excluded from [`L0Bank::retained_words`] like the hash strips.
const TOUCH_CACHE_BITS: u32 = 15;

/// Arena high-water mark (`u32` words). A pass over a stream with `U`
/// distinct keys appends at most `U` lists; the cap only trips under
/// sustained eviction churn, wiping the cache back to cold rather than
/// letting dead ranges grow without bound.
const TOUCH_ARENA_CAP: usize = 1 << 22;

impl L0Bank {
    /// Flattens `samplers` into a bank. All samplers must share one
    /// fingerprint base and have identical dimensions (the dynamic
    /// estimator's banks do by construction); their accumulated state —
    /// typically empty templates — carries over exactly.
    ///
    /// # Panics
    ///
    /// Panics if a sampler lacks a shared fingerprint base, or if
    /// dimensions or bases differ across the bank.
    pub fn from_samplers(samplers: Vec<L0Sampler>) -> Self {
        let n = samplers.len();
        if n == 0 {
            return L0Bank {
                samplers: 0,
                max_level: 0,
                cells_per_level: 0,
                rows_per_level: 0,
                rows_total: 0,
                bucket_mask: 0,
                shared_base: 2,
                pow: FingerprintPow::new(2),
                level_c0: Vec::new(),
                level_c1: Vec::new(),
                bucket_c0: Vec::new(),
                bucket_c1: Vec::new(),
                selection: Vec::new(),
                weight: Vec::new(),
                index_sum: Vec::new(),
                fingerprint: Vec::new(),
                updates_seen: Vec::new(),
                scratch_hash: Vec::new(),
                scratch_level: Vec::new(),
                cache_entries: Vec::new(),
                cache_arena: Vec::new(),
                cache_hits: 0,
            };
        }
        let (max_level, cells, rows) = samplers[0].dims();
        let rows_total = (max_level + 1) * rows;
        let z = samplers[0]
            .shared_fingerprint_base()
            .expect("a bank requires a shared fingerprint base");
        let coeff_pair = |h: &KWiseHash| -> (u64, u64) {
            let c = h.coefficients();
            assert_eq!(c.len(), 2, "bank hashes are pairwise independent");
            (c[0], c[1])
        };
        let mut bank = L0Bank {
            samplers: n,
            max_level,
            cells_per_level: cells,
            rows_per_level: rows,
            rows_total,
            bucket_mask: if cells.is_power_of_two() {
                cells as u64 - 1
            } else {
                0
            },
            shared_base: z,
            pow: FingerprintPow::new(z),
            level_c0: vec![0; n],
            level_c1: vec![0; n],
            bucket_c0: vec![0; rows_total * n],
            bucket_c1: vec![0; rows_total * n],
            selection: Vec::with_capacity(n),
            weight: vec![0; rows_total * cells * n],
            index_sum: vec![0; rows_total * cells * n],
            fingerprint: vec![0; rows_total * cells * n],
            updates_seen: vec![0; n],
            scratch_hash: vec![0; rows.max(1) * n],
            scratch_level: vec![0; n],
            cache_entries: Vec::new(),
            cache_arena: Vec::new(),
            cache_hits: 0,
        };
        assert!(
            u32::try_from(rows_total * cells * n).is_ok(),
            "bank cell space must fit the u32 touch-list indices"
        );
        for (s, sampler) in samplers.iter().enumerate() {
            assert_eq!(sampler.dims(), (max_level, cells, rows), "uniform bank");
            assert_eq!(sampler.shared_fingerprint_base(), Some(z), "uniform base");
            let (c0, c1) = coeff_pair(sampler.level_hash());
            bank.level_c0[s] = c0;
            bank.level_c1[s] = c1;
            for (at, hash) in sampler.bucket_hashes().iter().enumerate() {
                let (c0, c1) = coeff_pair(hash);
                bank.bucket_c0[at * n + s] = c0;
                bank.bucket_c1[at * n + s] = c1;
            }
            for (flat, cell) in sampler.cells().iter().enumerate() {
                let (at, b) = (flat / cells, flat % cells);
                let (w, i, f) = cell.parts();
                let dst = bank.cell_index(at, b, s);
                bank.weight[dst] = w;
                bank.index_sum[dst] = i;
                bank.fingerprint[dst] = f;
            }
            bank.updates_seen[s] = sampler.updates_seen();
            bank.selection.push(sampler.selection_hash().clone());
        }
        bank
    }

    /// Number of samplers in the bank.
    pub fn samplers(&self) -> usize {
        self.samplers
    }

    /// Prepares `(index, delta)` for this bank — [`SketchUpdate::prepare`]
    /// with the ladder exponentiation replaced by the bank's
    /// [`FingerprintPow`] table (bit-identical term).
    #[inline]
    pub fn prepare(&self, index: u64, delta: i64) -> SketchUpdate {
        SketchUpdate::with_term(index, delta, self.pow.term(index))
    }

    /// Bucket of an evaluated bucket hash: an AND when the cell count is a
    /// power of two, the original division otherwise — same value either
    /// way.
    #[inline]
    fn bucket_of(&self, hash: u64) -> usize {
        if self.bucket_mask != 0 {
            (hash & self.bucket_mask) as usize
        } else {
            (hash % self.cells_per_level as u64) as usize
        }
    }

    /// Flat index of cell `(at, b)` of sampler `s`.
    ///
    /// Level-0 rows — which every update touches for every sampler — are
    /// stored row-major (`(at·cells + b)·n + s`), so one update's level-0
    /// writes land in one compact region shared by the whole bank. Deeper
    /// rows are stored **sampler-major**: each sampler's deep cells form
    /// one contiguous block, so the geometrically-rarer deep touches of one
    /// update (consecutive `at`s of the same sampler) stay within a few
    /// cache lines instead of striding across the whole level block. The
    /// mapping is a bijection onto the same arrays — cell values are
    /// identical under any layout, so this is purely a locality choice.
    #[inline]
    fn cell_index(&self, at: usize, b: usize, s: usize) -> usize {
        let rows = self.rows_per_level;
        let cells = self.cells_per_level;
        if at < rows {
            (at * cells + b) * self.samplers + s
        } else {
            let deep_base = rows * cells * self.samplers;
            deep_base + (s * (self.rows_total - rows) + (at - rows)) * cells + b
        }
    }

    /// Adds one prepared update into the cell at flat index `cell` — the
    /// three additions of [`OneSparseRecovery::apply`], on the columnar
    /// arrays.
    #[inline]
    fn touch(&mut self, cell: usize, update: &SketchUpdate) {
        self.weight[cell] += update.delta as i128;
        self.index_sum[cell] += update.index_delta;
        let sum = self.fingerprint[cell] + update.contribution;
        self.fingerprint[cell] = if sum >= MERSENNE_PRIME {
            sum - MERSENNE_PRIME
        } else {
            sum
        };
    }

    /// Applies one prepared update to **every** sampler of the bank as one
    /// batched kernel: the flat list of cells the key touches is looked up
    /// in (or computed into) the touch cache, then replayed column by
    /// column. A cache hit skips every level and bucket hash of the
    /// update — on turnstile streams that revisit keys (deletes, churn)
    /// that is the majority of the modular arithmetic.
    pub fn apply(&mut self, update: &SketchUpdate) {
        if update.delta == 0 || self.samplers == 0 {
            return;
        }
        let x = update.reduced;
        if self.cache_entries.is_empty() {
            self.cache_entries = vec![(u64::MAX, 0, 0); 1 << TOUCH_CACHE_BITS];
        }
        let slot = Self::cache_slot(x);
        for seen in self.updates_seen.iter_mut() {
            *seen += 1;
        }
        let (key, off, len) = self.cache_entries[slot];
        let arena = std::mem::take(&mut self.cache_arena);
        let (arena, off, len) = if key == x {
            self.cache_hits += 1;
            (arena, off as usize, len as usize)
        } else {
            let mut arena = arena;
            if arena.len() >= TOUCH_ARENA_CAP {
                arena.clear();
                self.cache_entries.fill((u64::MAX, 0, 0));
            }
            let off = arena.len();
            self.enumerate_touches(x, &mut arena);
            let len = arena.len() - off;
            self.cache_entries[slot] = (x, off as u32, len as u32);
            (arena, off, len)
        };
        self.replay(&arena[off..off + len], update);
        self.cache_arena = arena;
    }

    /// Touch-cache hits since construction (diagnostic).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Direct-mapped touch-cache slot of a reduced key (multiplicative
    /// hash — reduced keys inherit the stream's key structure).
    #[inline]
    fn cache_slot(x: u64) -> usize {
        (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - TOUCH_CACHE_BITS)) as usize
    }

    /// Computes the flat cell indices one update with reduced key `x`
    /// touches, in the canonical level-strip → level-0-rows → deep-levels
    /// order: a level-hash strip, one contiguous bucket-hash strip across
    /// *all* level-0 rows, then the geometrically-rarer deeper levels
    /// sampler by sampler.
    fn enumerate_touches(&mut self, x: u64, list: &mut Vec<u32>) {
        let n = self.samplers;
        let cells = self.cells_per_level;
        let rows = self.rows_per_level;
        horner2_strip(
            &self.level_c1,
            &self.level_c0,
            x,
            &mut self.scratch_hash[..n],
        );
        let mut deepest = 0u32;
        for s in 0..n {
            let level = KWiseHash::level_of_hash(self.scratch_hash[s], self.max_level) as u32;
            self.scratch_level[s] = level;
            deepest = deepest.max(level);
        }
        let rn = rows * n;
        horner2_strip(
            &self.bucket_c1[..rn],
            &self.bucket_c0[..rn],
            x,
            &mut self.scratch_hash[..rn],
        );
        for at in 0..rows {
            for s in 0..n {
                let b = self.bucket_of(self.scratch_hash[at * n + s]);
                list.push(((at * cells + b) * n + s) as u32);
            }
        }
        if deepest > 0 {
            for s in 0..n {
                for level in 1..=self.scratch_level[s] as usize {
                    for row in 0..rows {
                        let at = level * rows + row;
                        let h = horner2(self.bucket_c1[at * n + s], self.bucket_c0[at * n + s], x);
                        let b = self.bucket_of(h);
                        list.push(self.cell_index(at, b, s) as u32);
                    }
                }
            }
        }
    }

    /// Adds one prepared update into every cell on `list` — the three
    /// additions of [`touch`](L0Bank::touch), split into one pass per
    /// column so each loop streams over a single aggregate array. Cells on
    /// a list are distinct and the aggregates are linear, so the split is
    /// bit-identical to the interleaved form.
    fn replay(&mut self, list: &[u32], update: &SketchUpdate) {
        let weight: &mut [i128] = &mut self.weight;
        let index_sum: &mut [i128] = &mut self.index_sum;
        let fingerprint: &mut [u64] = &mut self.fingerprint;
        let delta = update.delta as i128;
        for &cell in list {
            weight[cell as usize] += delta;
        }
        for &cell in list {
            index_sum[cell as usize] += update.index_delta;
        }
        for &cell in list {
            let f = &mut fingerprint[cell as usize];
            let sum = *f + update.contribution;
            *f = if sum >= MERSENNE_PRIME {
                sum - MERSENNE_PRIME
            } else {
                sum
            };
        }
    }

    /// Applies a batch of prepared updates through the batched kernel,
    /// warming the next update's touch-cache slot (key word, list header
    /// and first data word) while the current update replays — the slot
    /// lookup is a short dependent-load chain that would otherwise stall
    /// the front of every update.
    #[inline]
    pub fn apply_batch(&mut self, updates: &[SketchUpdate]) {
        for (i, update) in updates.iter().enumerate() {
            if let Some(next) = updates.get(i + 1) {
                if !self.cache_entries.is_empty() {
                    let slot = Self::cache_slot(next.reduced);
                    let (_, off, _) = std::hint::black_box(self.cache_entries[slot]);
                    std::hint::black_box(self.cache_arena.get(off as usize));
                }
            }
            self.apply(update);
        }
    }

    /// Applies one prepared update to the single sampler `s` — the exact
    /// per-sampler loop of [`L0Sampler::apply`], on the flattened arrays.
    /// The neighbor bank's fold uses it to fan an update out to the
    /// instances listed for one base vertex.
    pub fn apply_one(&mut self, s: usize, update: &SketchUpdate) {
        if update.delta == 0 {
            return;
        }
        self.updates_seen[s] += 1;
        let n = self.samplers;
        let x = update.reduced;
        let level_hash = horner2(self.level_c1[s], self.level_c0[s], x);
        let item_level = KWiseHash::level_of_hash(level_hash, self.max_level);
        for level in 0..=item_level {
            for row in 0..self.rows_per_level {
                let at = level * self.rows_per_level + row;
                let h = horner2(self.bucket_c1[at * n + s], self.bucket_c0[at * n + s], x);
                let b = self.bucket_of(h);
                self.touch(self.cell_index(at, b, s), update);
            }
        }
    }

    /// The sampler-outermost scalar reference: each sampler processes the
    /// whole batch through [`apply_one`](L0Bank::apply_one), exactly as
    /// the pre-bank `Vec<L0Sampler>` fold did. Kept as the baseline the
    /// bit-identity tests and the bench's kernel-attribution gate compare
    /// the batched kernel against.
    pub fn apply_batch_scalar(&mut self, updates: &[SketchUpdate]) {
        for s in 0..self.samplers {
            for update in updates {
                self.apply_one(s, update);
            }
        }
    }

    /// Merges a bank that is a clone of the same configured bank: cells
    /// are linear in their updates, so the merged bank equals one bank
    /// that saw both update sequences — the per-shard merge of the sharded
    /// folds.
    pub fn merge(&mut self, other: &L0Bank) {
        debug_assert_eq!(self.samplers, other.samplers);
        debug_assert_eq!(self.rows_total, other.rows_total);
        debug_assert_eq!(self.cells_per_level, other.cells_per_level);
        debug_assert_eq!(self.shared_base, other.shared_base);
        for (w, o) in self.weight.iter_mut().zip(&other.weight) {
            *w += o;
        }
        for (i, o) in self.index_sum.iter_mut().zip(&other.index_sum) {
            *i += o;
        }
        for (f, &o) in self.fingerprint.iter_mut().zip(&other.fingerprint) {
            *f = ((*f as u128 + o as u128) % MERSENNE_PRIME as u128) as u64;
        }
        for (u, o) in self.updates_seen.iter_mut().zip(&other.updates_seen) {
            *u += o;
        }
    }

    /// Draws from sampler `s` — cell iteration order, recovery and
    /// selection-hash tie-breaking all match [`L0Sampler::sample`].
    pub fn sample(&self, s: usize) -> Option<(u64, i64)> {
        let mut best: Option<(u64, i64, u64)> = None;
        for at in 0..self.rows_total {
            for b in 0..self.cells_per_level {
                let cell = self.cell_index(at, b, s);
                let recovered = OneSparseRecovery::from_parts(
                    self.shared_base,
                    self.weight[cell],
                    self.index_sum[cell],
                    self.fingerprint[cell],
                )
                .recover();
                if let RecoveryOutcome::OneSparse { index, count } = recovered {
                    let key = self.selection[s].hash(index);
                    match best {
                        Some((_, _, best_key)) if best_key <= key => {}
                        _ => best = Some((index, count, key)),
                    }
                }
            }
        }
        best.map(|(index, count, _)| (index, count))
    }

    /// Updates applied to sampler `s` (diagnostic).
    pub fn updates_seen(&self, s: usize) -> u64 {
        self.updates_seen[s]
    }

    /// Machine words retained by the bank — exactly the sum of
    /// [`L0Sampler::retained_words`] over the samplers it flattened, so
    /// the space experiments account the same either way.
    pub fn retained_words(&self) -> u64 {
        let per_sampler =
            (self.rows_total * self.cells_per_level * 4 + self.rows_total * 2 + 5) as u64;
        per_sampler * self.samplers as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onesparse::fingerprint_term;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build_bank(samplers: usize, z: u64, seed: u64) -> (Vec<L0Sampler>, L0Bank) {
        let mut rng = StdRng::seed_from_u64(seed);
        let templates: Vec<L0Sampler> = (0..samplers)
            .map(|_| L0Sampler::with_fingerprint_base(12, 8, 2, z, &mut rng))
            .collect();
        let bank = L0Bank::from_samplers(templates.clone());
        (templates, bank)
    }

    fn random_updates(count: usize, universe: u64, seed: u64) -> Vec<(u64, i64)> {
        let mut data = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                (
                    data.gen_range(0..universe),
                    if data.gen_range(0..3) == 0 { -1 } else { 1 },
                )
            })
            .collect()
    }

    #[test]
    fn pow_table_matches_the_ladder() {
        for z in [2u64, 3, 123_456_789, MERSENNE_PRIME - 1] {
            let pow = FingerprintPow::new(z);
            for index in [0u64, 1, 2, 7, 1023, 1 << 40, u64::MAX] {
                assert_eq!(pow.term(index), fingerprint_term(z, index), "z {z}");
            }
        }
    }

    #[test]
    fn batched_kernel_matches_the_samplers_bit_for_bit() {
        let z = 987_654_321u64;
        let (mut samplers, mut bank) = build_bank(7, z, 41);
        let updates = random_updates(400, 4096, 42);
        let prepared: Vec<SketchUpdate> =
            updates.iter().map(|&(i, d)| bank.prepare(i, d)).collect();
        for sampler in samplers.iter_mut() {
            sampler.apply_batch(&prepared);
        }
        bank.apply_batch(&prepared);
        for (s, sampler) in samplers.iter().enumerate() {
            assert_eq!(bank.sample(s), sampler.sample(), "sampler {s}");
            assert_eq!(bank.updates_seen(s), sampler.updates_seen());
        }
    }

    #[test]
    fn batched_and_scalar_paths_agree() {
        let z = 55_555u64;
        let (_, mut batched) = build_bank(5, z, 61);
        let mut scalar = batched.clone();
        let updates = random_updates(300, 10_000, 62);
        let prepared: Vec<SketchUpdate> = updates
            .iter()
            .map(|&(i, d)| batched.prepare(i, d))
            .collect();
        batched.apply_batch(&prepared);
        scalar.apply_batch_scalar(&prepared);
        for s in 0..5 {
            assert_eq!(batched.sample(s), scalar.sample(s), "sampler {s}");
            assert_eq!(batched.updates_seen(s), scalar.updates_seen(s));
        }
    }

    #[test]
    fn touch_cache_hits_match_scalar_on_oscillating_churn() {
        // Every key repeats many times (insert/delete churn), so most
        // applies replay a cached touch list; a small key set also forces
        // slot collisions and evictions. The cached path must stay bit
        // identical to the sampler-outermost scalar reference.
        let z = 31_337u64;
        let (_, mut batched) = build_bank(6, z, 101);
        let mut scalar = batched.clone();
        let mut updates = Vec::new();
        for round in 0..6 {
            for key in 0..200u64 {
                let delta = if round % 2 == 0 { 1 } else { -1 };
                updates.push(batched.prepare(key * 7919, delta));
            }
        }
        batched.apply_batch(&updates);
        scalar.apply_batch_scalar(&updates);
        for s in 0..6 {
            assert_eq!(batched.sample(s), scalar.sample(s), "sampler {s}");
            assert_eq!(batched.updates_seen(s), scalar.updates_seen(s));
        }
    }

    #[test]
    fn sharded_banks_merge_to_the_sequential_bank() {
        let z = 424_242u64;
        let (_, template) = build_bank(4, z, 71);
        let updates = random_updates(240, 2048, 72);
        let prepared: Vec<SketchUpdate> = updates
            .iter()
            .map(|&(i, d)| template.prepare(i, d))
            .collect();
        let mut sequential = template.clone();
        sequential.apply_batch(&prepared);
        for shards in [2usize, 3, 5] {
            let per_shard = prepared.len().div_ceil(shards);
            let mut merged: Option<L0Bank> = None;
            for chunk in prepared.chunks(per_shard) {
                let mut shard = template.clone();
                shard.apply_batch(chunk);
                match merged.as_mut() {
                    Some(m) => m.merge(&shard),
                    None => merged = Some(shard),
                }
            }
            let merged = merged.unwrap();
            for s in 0..4 {
                assert_eq!(merged.sample(s), sequential.sample(s), "shards {shards}");
                assert_eq!(merged.updates_seen(s), sequential.updates_seen(s));
            }
        }
    }

    #[test]
    fn retained_words_match_the_flattened_samplers() {
        let (samplers, bank) = build_bank(6, 13_579, 81);
        let expected: u64 = samplers.iter().map(L0Sampler::retained_words).sum();
        assert_eq!(bank.retained_words(), expected);
    }

    #[test]
    fn non_template_state_carries_over_in_flattening() {
        let z = 999_331u64;
        let mut rng = StdRng::seed_from_u64(91);
        let mut sampler = L0Sampler::with_fingerprint_base(10, 8, 2, z, &mut rng);
        for &(i, d) in &random_updates(50, 512, 92) {
            sampler.apply(&SketchUpdate::prepare(z, i, d));
        }
        let bank = L0Bank::from_samplers(vec![sampler.clone()]);
        assert_eq!(bank.sample(0), sampler.sample());
        assert_eq!(bank.updates_seen(0), sampler.updates_seen());
    }

    #[test]
    fn empty_bank_is_inert() {
        let mut bank = L0Bank::from_samplers(Vec::new());
        assert_eq!(bank.samplers(), 0);
        assert_eq!(bank.retained_words(), 0);
        let update = bank.prepare(7, 1);
        bank.apply(&update);
        bank.apply_batch(&[update]);
        let other = bank.clone();
        bank.merge(&other);
    }

    #[test]
    fn zero_deltas_are_skipped_like_the_samplers_skip_them() {
        let (_, mut bank) = build_bank(3, 777, 93);
        let before = bank.updates_seen(0);
        let update = bank.prepare(123, 0);
        bank.apply(&update);
        assert_eq!(bank.updates_seen(0), before);
    }
}
