//! Count-Min sketch (Cormode–Muthukrishnan).
//!
//! Frequency over-estimates for insert-only streams: `d` rows of `w`
//! counters, each row indexed by an independent pairwise hash. A point query
//! returns the minimum counter over the rows, which is always an
//! over-estimate and exceeds the true frequency by more than `ε‖f‖₁` with
//! probability at most `δ` when `w = ⌈e/ε⌉` and `d = ⌈ln(1/δ)⌉`.
//!
//! The dynamic-stream estimator uses Count-Min for cheap degree
//! over-estimates; the turnstile-safe sibling is [`crate::CountSketch`].

use rand::Rng;

use crate::hash::KWiseHash;

/// A Count-Min sketch over `u64` keys with `u64` counts.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    rows: Vec<Vec<u64>>,
    hashes: Vec<KWiseHash>,
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch with `depth` rows of `width` counters.
    pub fn new<R: Rng + ?Sized>(width: usize, depth: usize, rng: &mut R) -> Self {
        let width = width.max(1);
        let depth = depth.max(1);
        CountMinSketch {
            width,
            rows: vec![vec![0u64; width]; depth],
            hashes: (0..depth).map(|_| KWiseHash::new(2, rng)).collect(),
            total: 0,
        }
    }

    /// Creates a sketch sized for additive error `ε‖f‖₁` with failure
    /// probability `δ`.
    pub fn with_error<R: Rng + ?Sized>(epsilon: f64, delta: f64, rng: &mut R) -> Self {
        let width = (std::f64::consts::E / epsilon.clamp(1e-9, 1.0)).ceil() as usize;
        let depth = (1.0 / delta.clamp(1e-9, 0.5)).ln().ceil() as usize;
        CountMinSketch::new(width, depth.max(1), rng)
    }

    /// Adds `count` occurrences of `key`.
    pub fn add(&mut self, key: u64, count: u64) {
        for (row, hash) in self.rows.iter_mut().zip(self.hashes.iter()) {
            let b = hash.bucket(key, self.width);
            row[b] += count;
        }
        self.total += count;
    }

    /// Point query: an over-estimate of the number of occurrences of `key`.
    pub fn estimate(&self, key: u64) -> u64 {
        self.rows
            .iter()
            .zip(self.hashes.iter())
            .map(|(row, hash)| row[hash.bucket(key, self.width)])
            .min()
            .unwrap_or(0)
    }

    /// Total number of occurrences added (`‖f‖₁`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Number of counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Machine words retained by the sketch.
    pub fn retained_words(&self) -> u64 {
        (self.rows.len() * self.width) as u64
            + self
                .hashes
                .iter()
                .map(KWiseHash::retained_words)
                .sum::<u64>()
            + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimates_never_underestimate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cm = CountMinSketch::new(64, 4, &mut rng);
        let mut truth = std::collections::HashMap::new();
        let mut data_rng = StdRng::seed_from_u64(2);
        for _ in 0..5000 {
            let key = data_rng.gen_range(0..500u64);
            let c = data_rng.gen_range(1..4u64);
            cm.add(key, c);
            *truth.entry(key).or_insert(0u64) += c;
        }
        for (&key, &count) in &truth {
            assert!(cm.estimate(key) >= count, "key {key} underestimated");
        }
    }

    #[test]
    fn error_is_bounded_by_epsilon_times_l1() {
        let mut rng = StdRng::seed_from_u64(3);
        let epsilon = 0.02;
        let mut cm = CountMinSketch::with_error(epsilon, 0.01, &mut rng);
        let mut truth = std::collections::HashMap::new();
        let mut data_rng = StdRng::seed_from_u64(4);
        for _ in 0..20_000 {
            let key = data_rng.gen_range(0..2_000u64);
            cm.add(key, 1);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        let l1 = cm.total() as f64;
        let mut violations = 0usize;
        for (&key, &count) in &truth {
            if (cm.estimate(key) - count) as f64 > epsilon * l1 {
                violations += 1;
            }
        }
        // The guarantee is per-query with probability δ; allow a small number
        // of violations across the 2000 queried keys.
        assert!(violations <= 40, "too many violations: {violations}");
    }

    #[test]
    fn unseen_keys_have_small_estimates() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cm = CountMinSketch::new(512, 5, &mut rng);
        for key in 0..1000u64 {
            cm.add(key, 1);
        }
        let estimate = cm.estimate(1_000_000);
        assert!(estimate <= 20, "phantom frequency too large: {estimate}");
    }

    #[test]
    fn dimensions_and_space() {
        let mut rng = StdRng::seed_from_u64(6);
        let cm = CountMinSketch::new(100, 3, &mut rng);
        assert_eq!(cm.width(), 100);
        assert_eq!(cm.depth(), 3);
        assert_eq!(cm.retained_words(), 300 + 6 + 1);
        let sized = CountMinSketch::with_error(0.01, 0.001, &mut rng);
        assert!(sized.width() >= 271);
        assert!(sized.depth() >= 6);
    }
}
