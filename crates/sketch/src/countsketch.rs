//! CountSketch (Charikar–Chen–Farach-Colton) and the AMS second moment.
//!
//! Unlike Count-Min, CountSketch tolerates deletions: each key is hashed to
//! one bucket per row and added with a ±1 sign, a point query takes the
//! median of the signed buckets, and the squared row norms give the
//! Alon–Matias–Szegedy estimate of the second frequency moment `F₂ = ‖f‖₂²`.
//! Both guarantees hold for arbitrary turnstile updates, which is what the
//! dynamic-stream triangle estimator needs for degree queries under edge
//! deletions.

use rand::Rng;

use crate::hash::KWiseHash;

/// A CountSketch over `u64` keys with `i64` turnstile counts.
#[derive(Debug, Clone)]
pub struct CountSketch {
    width: usize,
    rows: Vec<Vec<i64>>,
    bucket_hashes: Vec<KWiseHash>,
    sign_hashes: Vec<KWiseHash>,
}

impl CountSketch {
    /// Creates a sketch with `depth` rows of `width` signed counters.
    pub fn new<R: Rng + ?Sized>(width: usize, depth: usize, rng: &mut R) -> Self {
        let width = width.max(1);
        let depth = depth.max(1);
        CountSketch {
            width,
            rows: vec![vec![0i64; width]; depth],
            bucket_hashes: (0..depth).map(|_| KWiseHash::new(2, rng)).collect(),
            // 4-wise independence is what the AMS variance analysis needs.
            sign_hashes: (0..depth).map(|_| KWiseHash::new(4, rng)).collect(),
        }
    }

    /// Applies a turnstile update: `key` changes by `delta` (may be negative).
    pub fn update(&mut self, key: u64, delta: i64) {
        for ((row, bucket_hash), sign_hash) in self
            .rows
            .iter_mut()
            .zip(self.bucket_hashes.iter())
            .zip(self.sign_hashes.iter())
        {
            let b = bucket_hash.bucket(key, self.width);
            row[b] += sign_hash.sign(key) * delta;
        }
    }

    /// Point query: the median over rows of the signed bucket contents.
    pub fn estimate(&self, key: u64) -> i64 {
        let mut values: Vec<i64> = self
            .rows
            .iter()
            .zip(self.bucket_hashes.iter())
            .zip(self.sign_hashes.iter())
            .map(|((row, bucket_hash), sign_hash)| {
                sign_hash.sign(key) * row[bucket_hash.bucket(key, self.width)]
            })
            .collect();
        values.sort_unstable();
        let k = values.len();
        if k % 2 == 1 {
            values[k / 2]
        } else {
            // Round the average of the two central values towards zero.
            (values[k / 2 - 1] + values[k / 2]) / 2
        }
    }

    /// The AMS estimate of the second frequency moment `F₂ = Σ_x f(x)²`:
    /// the median over rows of the squared row norm.
    pub fn second_moment(&self) -> f64 {
        let mut norms: Vec<f64> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|&c| (c as f64) * (c as f64)).sum())
            .collect();
        norms.sort_by(|a, b| a.partial_cmp(b).expect("norms are finite"));
        let k = norms.len();
        if k % 2 == 1 {
            norms[k / 2]
        } else {
            (norms[k / 2 - 1] + norms[k / 2]) / 2.0
        }
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Number of counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Machine words retained by the sketch.
    pub fn retained_words(&self) -> u64 {
        (self.rows.len() * self.width) as u64
            + self
                .bucket_hashes
                .iter()
                .chain(self.sign_hashes.iter())
                .map(KWiseHash::retained_words)
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn truth_and_sketch(seed: u64, width: usize, depth: usize) -> (HashMap<u64, i64>, CountSketch) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cs = CountSketch::new(width, depth, &mut rng);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut data_rng = StdRng::seed_from_u64(seed.wrapping_add(100));
        for _ in 0..10_000 {
            let key = data_rng.gen_range(0..400u64);
            let delta = if data_rng.gen_bool(0.3) { -1 } else { 1 };
            cs.update(key, delta);
            *truth.entry(key).or_insert(0) += delta;
        }
        (truth, cs)
    }

    #[test]
    fn point_queries_track_turnstile_frequencies() {
        let (truth, cs) = truth_and_sketch(1, 1024, 7);
        let f2: f64 = truth.values().map(|&v| (v * v) as f64).sum();
        let tolerance = (3.0 * f2 / 1024.0).sqrt() + 2.0;
        let mut violations = 0usize;
        for (&key, &count) in &truth {
            if ((cs.estimate(key) - count).abs() as f64) > tolerance {
                violations += 1;
            }
        }
        assert!(
            violations <= truth.len() / 20,
            "too many bad point queries: {violations}/{}",
            truth.len()
        );
    }

    #[test]
    fn deletions_cancel_insertions_exactly_in_expectation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cs = CountSketch::new(256, 5, &mut rng);
        for key in 0..100u64 {
            cs.update(key, 5);
        }
        for key in 0..100u64 {
            cs.update(key, -5);
        }
        // The sketch is now identically zero, so every estimate is exact.
        for key in 0..200u64 {
            assert_eq!(cs.estimate(key), 0);
        }
        assert_eq!(cs.second_moment(), 0.0);
    }

    #[test]
    fn second_moment_is_close_to_the_truth() {
        let (truth, cs) = truth_and_sketch(5, 2048, 9);
        let f2: f64 = truth.values().map(|&v| (v * v) as f64).sum();
        let estimate = cs.second_moment();
        assert!(
            (estimate - f2).abs() <= 0.35 * f2,
            "F2 estimate {estimate} too far from {f2}"
        );
    }

    #[test]
    fn heavy_hitter_stands_out() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut cs = CountSketch::new(512, 7, &mut rng);
        for key in 0..300u64 {
            cs.update(key, 1);
        }
        cs.update(999, 500);
        let heavy = cs.estimate(999);
        assert!((heavy - 500).abs() <= 50, "heavy hitter estimate {heavy}");
    }

    #[test]
    fn dimensions_and_space() {
        let mut rng = StdRng::seed_from_u64(9);
        let cs = CountSketch::new(128, 3, &mut rng);
        assert_eq!(cs.width(), 128);
        assert_eq!(cs.depth(), 3);
        assert_eq!(cs.retained_words(), 128 * 3 + 3 * 2 + 3 * 4);
    }
}
