//! k-wise independent hash functions.
//!
//! The standard construction: a degree-`(k−1)` polynomial with random
//! coefficients over the Mersenne prime field `GF(2^61 − 1)`. Evaluating the
//! polynomial at the key gives a value that is uniform and k-wise independent
//! across keys, which is exactly the guarantee CountSketch, AMS and ℓ0
//! sampling analyses require (pairwise for the buckets, 4-wise for the AMS
//! variance bound).

use rand::Rng;

/// The Mersenne prime `2^61 − 1`, used as the field modulus.
pub const MERSENNE_PRIME: u64 = (1u64 << 61) - 1;

/// A k-wise independent hash function `h : u64 → [0, 2^61 − 1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    /// Polynomial coefficients, lowest degree first; `coefficients.len()` is
    /// the independence parameter `k`.
    coefficients: Vec<u64>,
}

/// Multiplies two field elements modulo `2^61 − 1` without overflow.
///
/// The Horner hot paths now fold the product and the following addition in
/// one deferred [`reduce128`] (see [`horner2`]), so this canonical form
/// survives as the reference the reduction tests check against.
#[cfg(test)]
fn mul_mod(a: u64, b: u64) -> u64 {
    let product = (a as u128) * (b as u128);
    reduce128(product)
}

/// Reduces a 128-bit value modulo the Mersenne prime `2^61 − 1` using the
/// identity `2^61 ≡ 1 (mod p)`.
#[inline]
pub(crate) fn reduce128(x: u128) -> u64 {
    let low = (x & ((1u128 << 61) - 1)) as u64;
    let high = (x >> 61) as u64;
    let mut r = low + high;
    // `high` can still exceed the prime once; fold again.
    r = (r & MERSENNE_PRIME) + (r >> 61);
    if r >= MERSENNE_PRIME {
        r -= MERSENNE_PRIME;
    }
    r
}

/// One pairwise-independent Horner step: `(c1·x + c0) mod p`. This is
/// exactly [`KWiseHash::hash_reduced`] for `k = 2` with the two
/// coefficients passed by value — the form the lane-batched
/// [`crate::L0Bank`] kernels use once the coefficient vectors are
/// flattened out of their `KWiseHash` owners.
#[inline]
pub(crate) fn horner2(c1: u64, c0: u64, x: u64) -> u64 {
    // One deferred reduction instead of reducing the product and then the
    // sum: `c1·x + c0 < 2^122 + 2^61` stays well inside `reduce128`'s
    // domain, and the canonical residue mod `2^61 − 1` is unique, so the
    // result is bit-identical to `reduce128(mul_mod(c1, x) + c0)` at
    // roughly half the folding work.
    reduce128((c1 as u128) * (x as u128) + c0 as u128)
}

/// Strip-mined [`horner2`]: evaluates one `k = 2` hash per coefficient
/// lane at the shared reduced key `x`, writing the results into `out`.
/// The three slices must have equal length. One straight-line loop over
/// contiguous coefficient arrays — no per-hash pointer chase, so the
/// multiply chains of independent lanes overlap in the pipeline.
#[inline]
pub(crate) fn horner2_strip(c1: &[u64], c0: &[u64], x: u64, out: &mut [u64]) {
    debug_assert_eq!(c1.len(), c0.len());
    debug_assert_eq!(c1.len(), out.len());
    for ((o, &a1), &a0) in out.iter_mut().zip(c1).zip(c0) {
        *o = horner2(a1, a0, x);
    }
}

impl KWiseHash {
    /// The polynomial coefficients, lowest degree first — read by
    /// [`crate::L0Bank`] when flattening a sampler bank's hash functions
    /// into contiguous per-lane coefficient arrays.
    pub(crate) fn coefficients(&self) -> &[u64] {
        &self.coefficients
    }

    /// Draws a fresh k-wise independent hash function from `rng`.
    ///
    /// `k` must be at least 1; `k = 2` gives pairwise independence, `k = 4`
    /// the 4-wise independence the AMS analysis needs.
    pub fn new<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Self {
        let k = k.max(1);
        let mut coefficients = Vec::with_capacity(k);
        for i in 0..k {
            let mut c = rng.gen_range(0..MERSENNE_PRIME);
            // The leading coefficient must be non-zero so the polynomial has
            // true degree k − 1.
            if i == k - 1 && c == 0 {
                c = 1;
            }
            coefficients.push(c);
        }
        KWiseHash { coefficients }
    }

    /// The independence parameter `k`.
    pub fn independence(&self) -> usize {
        self.coefficients.len()
    }

    /// Maps a key into the field — the `x` that
    /// [`hash_reduced`](KWiseHash::hash_reduced) evaluates at. Hot loops
    /// that evaluate several hash functions at one key (the ℓ0 sampler's
    /// level hash plus a bucket hash per touched row) reduce the key once
    /// and reuse it.
    #[inline]
    pub fn reduce_key(key: u64) -> u64 {
        key % MERSENNE_PRIME
    }

    /// Evaluates the hash at `key`, returning a value in `[0, 2^61 − 1)`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        // Map the key into the field first (the prime is close enough to
        // 2^64 that the fold is harmless for independence purposes).
        self.hash_reduced(Self::reduce_key(key))
    }

    /// [`hash`](KWiseHash::hash) with the key already reduced into the
    /// field (`x` must equal [`reduce_key`](KWiseHash::reduce_key)`(key)`).
    ///
    /// Horner evaluation seeded with the leading coefficient directly —
    /// one field multiplication per remaining coefficient, so the
    /// pairwise-independent (`k = 2`) hashes of the sketch hot paths cost
    /// a single `mul_mod`.
    #[inline]
    pub fn hash_reduced(&self, x: u64) -> u64 {
        let mut rev = self.coefficients.iter().rev();
        // Coefficients are drawn below the prime, so the seed is already
        // reduced and the result equals the all-zero-seeded Horner loop.
        let mut acc = *rev.next().expect("k is at least 1");
        for &c in rev {
            // Same deferred single reduction as [`horner2`] — the canonical
            // residue is unique, so folding `acc·x + c` once is
            // bit-identical to reducing the product and sum separately.
            acc = reduce128((acc as u128) * (x as u128) + c as u128);
        }
        acc
    }

    /// Hash mapped to a bucket index in `[0, buckets)`.
    #[inline]
    pub fn bucket(&self, key: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        (self.hash(key) % buckets as u64) as usize
    }

    /// [`bucket`](KWiseHash::bucket) with the key already reduced into the
    /// field (see [`reduce_key`](KWiseHash::reduce_key)).
    #[inline]
    pub fn bucket_reduced(&self, x: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        (self.hash_reduced(x) % buckets as u64) as usize
    }

    /// Hash mapped to a ±1 sign.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.hash(key) & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Hash mapped to the unit interval `[0, 1)`.
    #[inline]
    pub fn unit(&self, key: u64) -> f64 {
        self.hash(key) as f64 / MERSENNE_PRIME as f64
    }

    /// Hash mapped to a geometric "level": the number of leading zeros of
    /// the hash value when viewed as a fraction, i.e. level `j` is hit with
    /// probability `2^{−(j+1)}`. Used by the ℓ0 sampler's subsampling.
    ///
    /// Computed in pure integer arithmetic: level `j` ⟺ `hash ∈
    /// [2^(60−j), 2^(61−j))`, i.e. `leading_zeros(hash) − 3` — the exact
    /// value of `⌊−log₂(hash / p)⌋` in real arithmetic, with none of the
    /// floating-point division/logarithm the hot sketch-update path used
    /// to pay per call. (The old float computation could land on the other
    /// side of a power-of-two boundary in ~2⁻⁴⁷-probability rounding
    /// windows; the integer rule is the mathematically exact one, so those
    /// vanishingly rare hashes may level differently than in earlier
    /// releases.)
    #[inline]
    pub fn level(&self, key: u64, max_level: usize) -> usize {
        Self::level_of_hash(self.hash(key), max_level)
    }

    /// [`level`](KWiseHash::level) of an already-evaluated hash value.
    #[inline]
    pub fn level_of_hash(hash: u64, max_level: usize) -> usize {
        if hash == 0 {
            return max_level;
        }
        (hash.leading_zeros() as usize - 3).min(max_level)
    }

    /// Number of machine words retained by this hash function.
    pub fn retained_words(&self) -> u64 {
        self.coefficients.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn field_arithmetic_reduces_correctly() {
        assert_eq!(reduce128((MERSENNE_PRIME as u128) + 5), 5);
        assert_eq!(mul_mod(MERSENNE_PRIME - 1, 1), MERSENNE_PRIME - 1);
        assert_eq!(mul_mod(0, 12345), 0);
        // (p − 1)² mod p = 1
        assert_eq!(mul_mod(MERSENNE_PRIME - 1, MERSENNE_PRIME - 1), 1);
    }

    #[test]
    fn hash_is_deterministic_and_seed_sensitive() {
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let mut rng_c = StdRng::seed_from_u64(2);
        let a = KWiseHash::new(4, &mut rng_a);
        let b = KWiseHash::new(4, &mut rng_b);
        let c = KWiseHash::new(4, &mut rng_c);
        assert_eq!(a, b);
        for key in [0u64, 1, 17, 123_456_789, u64::MAX] {
            assert_eq!(a.hash(key), b.hash(key));
        }
        assert!((0..100u64).any(|k| a.hash(k) != c.hash(k)));
    }

    #[test]
    fn buckets_are_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(7);
        let h = KWiseHash::new(2, &mut rng);
        let buckets = 16usize;
        let mut counts = vec![0usize; buckets];
        let n = 16_000u64;
        for key in 0..n {
            counts[h.bucket(key, buckets)] += 1;
        }
        let expected = n as f64 / buckets as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < 0.25 * expected,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn signs_are_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(9);
        let h = KWiseHash::new(4, &mut rng);
        let sum: i64 = (0..20_000u64).map(|k| h.sign(k)).sum();
        assert!(sum.abs() < 1_000, "sign bias too large: {sum}");
    }

    #[test]
    fn levels_follow_a_geometric_distribution() {
        let mut rng = StdRng::seed_from_u64(11);
        let h = KWiseHash::new(2, &mut rng);
        let max_level = 20;
        let n = 40_000u64;
        let mut counts = vec![0usize; max_level + 1];
        for key in 0..n {
            counts[h.level(key, max_level)] += 1;
        }
        // Level 0 should get about half the keys, level 1 about a quarter.
        assert!((counts[0] as f64 - n as f64 / 2.0).abs() < 0.1 * n as f64);
        assert!((counts[1] as f64 - n as f64 / 4.0).abs() < 0.1 * n as f64);
        assert!(counts[5] < counts[0]);
    }

    #[test]
    fn unit_values_lie_in_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        let h = KWiseHash::new(2, &mut rng);
        for key in 0..1000u64 {
            let u = h.unit(key);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn independence_parameter_and_space() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = KWiseHash::new(6, &mut rng);
        assert_eq!(h.independence(), 6);
        assert_eq!(h.retained_words(), 6);
        let h1 = KWiseHash::new(0, &mut rng);
        assert_eq!(h1.independence(), 1);
    }
}
