//! ℓ0 sampling: drawing a (near-)uniform element of the support of a
//! turnstile vector.
//!
//! The construction is the standard one (Frahling–Indyk–Sohler /
//! Jowhari–Sağlam–Tardos, simplified): geometric *subsampling levels* — level
//! `j` keeps each index with probability `2^{−j}` — and, per level, a small
//! hash table of [`OneSparseRecovery`] cells. After all updates, some level
//! has only a few surviving indices, each likely isolated in its own cell,
//! so it can be recovered exactly. Among everything recovered, the index
//! with the smallest value of an independent *selection hash* is returned,
//! which makes the draw (approximately) uniform over the support and, for
//! supports small enough to be fully recovered, exactly uniform.
//!
//! The dynamic-stream triangle estimator uses one ℓ0 sampler per "uniform
//! random edge" and per "uniform random neighbor" the insert-only algorithm
//! would have drawn with reservoir sampling.

use rand::Rng;

use crate::hash::KWiseHash;
use crate::onesparse::{OneSparseRecovery, RecoveryOutcome, SketchUpdate};

/// An ℓ0 (support) sampler for turnstile streams over `u64` indices.
///
/// Storage is **flat**: all `(max_level + 1) × rows_per_level` bucket
/// hashes live in one vector and all recovery cells in another, indexed by
/// `(level · rows + row) · cells_per_level + bucket`. The previous
/// `Vec<Vec<Vec<_>>>` nesting cost two extra dependent pointer loads (and
/// their cache misses) on every cell touch — on a bank of samplers that
/// indirection, not the sketch arithmetic, dominated the per-update cost.
/// The flat layout holds exactly the same hashes and cells (construction
/// consumes the RNG in the same order), so results are bit-identical.
#[derive(Debug, Clone)]
pub struct L0Sampler {
    max_level: usize,
    cells_per_level: usize,
    rows_per_level: usize,
    level_hash: KWiseHash,
    selection_hash: KWiseHash,
    /// Bucket hash of `(level, row)` at index `level · rows + row`.
    bucket_hashes: Vec<KWiseHash>,
    /// Recovery cell `(level, row, b)` at `(level · rows + row) · cells + b`.
    cells: Vec<OneSparseRecovery>,
    /// `Some(z)` when every cell shares the fingerprint base `z` (see
    /// [`L0Sampler::with_fingerprint_base`]); required by
    /// [`L0Sampler::update_with_term`].
    shared_base: Option<u64>,
    updates_seen: u64,
}

impl L0Sampler {
    /// Creates a sampler with explicit dimensions.
    ///
    /// `max_level` should be about `log₂` of the index universe;
    /// `cells_per_level` and `rows_per_level` trade space for recovery
    /// probability (8 × 2 is plenty for the graph workloads here).
    pub fn new<R: Rng + ?Sized>(
        max_level: usize,
        cells_per_level: usize,
        rows_per_level: usize,
        rng: &mut R,
    ) -> Self {
        Self::build(max_level, cells_per_level, rows_per_level, None, rng)
    }

    /// [`L0Sampler::new`] with one fingerprint base `z` shared by every
    /// recovery cell. Recovery correctness per cell is unchanged (`z` only
    /// needs to be independent of the data); the payoff is that the
    /// expensive `z^index (mod p)` term of an update can be computed **once
    /// per update** — even once for a whole bank of samplers sharing `z` —
    /// and fanned out with [`L0Sampler::update_with_term`].
    pub fn with_fingerprint_base<R: Rng + ?Sized>(
        max_level: usize,
        cells_per_level: usize,
        rows_per_level: usize,
        z: u64,
        rng: &mut R,
    ) -> Self {
        Self::build(max_level, cells_per_level, rows_per_level, Some(z), rng)
    }

    fn build<R: Rng + ?Sized>(
        max_level: usize,
        cells_per_level: usize,
        rows_per_level: usize,
        shared_base: Option<u64>,
        rng: &mut R,
    ) -> Self {
        let max_level = max_level.max(1);
        let cells_per_level = cells_per_level.max(2);
        let rows_per_level = rows_per_level.max(1);
        let rows_total = (max_level + 1) * rows_per_level;
        let mut bucket_hashes = Vec::with_capacity(rows_total);
        let mut cells = Vec::with_capacity(rows_total * cells_per_level);
        // The same RNG consumption order as the previous nested layout:
        // per (level, row) one bucket hash, then that row's cells.
        for _ in 0..rows_total {
            bucket_hashes.push(KWiseHash::new(2, rng));
            for _ in 0..cells_per_level {
                cells.push(match shared_base {
                    Some(z) => OneSparseRecovery::with_fingerprint_base(z),
                    None => OneSparseRecovery::new(rng),
                });
            }
        }
        L0Sampler {
            max_level,
            cells_per_level,
            rows_per_level,
            level_hash: KWiseHash::new(2, rng),
            selection_hash: KWiseHash::new(2, rng),
            bucket_hashes,
            cells,
            shared_base,
            updates_seen: 0,
        }
    }

    /// Creates a sampler sized for an index universe of `universe` values.
    pub fn for_universe<R: Rng + ?Sized>(universe: u64, rng: &mut R) -> Self {
        let levels = Self::levels_for_universe(universe);
        L0Sampler::new(levels, 8, 2, rng)
    }

    /// [`L0Sampler::for_universe`] with a shared fingerprint base (see
    /// [`L0Sampler::with_fingerprint_base`]).
    pub fn for_universe_with_base<R: Rng + ?Sized>(universe: u64, z: u64, rng: &mut R) -> Self {
        let levels = Self::levels_for_universe(universe);
        L0Sampler::with_fingerprint_base(levels, 8, 2, z, rng)
    }

    fn levels_for_universe(universe: u64) -> usize {
        (64 - universe.max(2).leading_zeros()) as usize + 1
    }

    /// The fingerprint base shared by every cell, when one was requested.
    pub fn shared_fingerprint_base(&self) -> Option<u64> {
        self.shared_base
    }

    /// `(max_level, cells_per_level, rows_per_level)` — the dimensions
    /// [`crate::L0Bank`] checks for uniformity when flattening a bank.
    pub(crate) fn dims(&self) -> (usize, usize, usize) {
        (self.max_level, self.cells_per_level, self.rows_per_level)
    }

    /// The level hash (bank flattening).
    pub(crate) fn level_hash(&self) -> &KWiseHash {
        &self.level_hash
    }

    /// The selection hash (bank flattening).
    pub(crate) fn selection_hash(&self) -> &KWiseHash {
        &self.selection_hash
    }

    /// The flat bucket-hash table (bank flattening).
    pub(crate) fn bucket_hashes(&self) -> &[KWiseHash] {
        &self.bucket_hashes
    }

    /// The flat recovery-cell table (bank flattening).
    pub(crate) fn cells(&self) -> &[OneSparseRecovery] {
        &self.cells
    }

    /// Applies the turnstile update `(index, delta)`.
    pub fn update(&mut self, index: u64, delta: i64) {
        if delta == 0 {
            return;
        }
        self.updates_seen += 1;
        let item_level = self.level_hash.level(index, self.max_level);
        for level in 0..=item_level {
            for row in 0..self.rows_per_level {
                let at = level * self.rows_per_level + row;
                let b = self.bucket_hashes[at].bucket(index, self.cells_per_level);
                self.cells[at * self.cells_per_level + b].update(index, delta);
            }
        }
    }

    /// [`update`](L0Sampler::update) with the fingerprint term
    /// `z^index (mod p)` supplied by the caller. Only valid on samplers
    /// built with a shared fingerprint base; `term` must equal
    /// [`fingerprint_term`]`(z, index)` for that base. A bank of samplers
    /// sharing one base computes the term once per update and feeds it to
    /// every sampler, removing the modular exponentiation from the
    /// per-sampler hot path.
    #[inline]
    pub fn update_with_term(&mut self, index: u64, delta: i64, term: u64) {
        debug_assert!(
            self.shared_base.is_some(),
            "update_with_term requires a shared fingerprint base"
        );
        if delta == 0 {
            return;
        }
        self.updates_seen += 1;
        let item_level = self.level_hash.level(index, self.max_level);
        for level in 0..=item_level {
            for row in 0..self.rows_per_level {
                let at = level * self.rows_per_level + row;
                let b = self.bucket_hashes[at].bucket(index, self.cells_per_level);
                self.cells[at * self.cells_per_level + b].update_with_term(index, delta, term);
            }
        }
    }

    /// Applies one prepared update (see [`SketchUpdate`]): the
    /// cell-independent aggregates were computed once by the caller, so
    /// every touched cell costs three additions. Only valid on samplers
    /// whose shared fingerprint base matches the one the update was
    /// prepared for. Bit-identical to
    /// [`update_with_term`](L0Sampler::update_with_term).
    #[inline]
    pub fn apply(&mut self, update: &SketchUpdate) {
        debug_assert!(
            self.shared_base.is_some(),
            "apply requires a shared fingerprint base"
        );
        if update.delta == 0 {
            return;
        }
        self.updates_seen += 1;
        // Reduce the index into the hash field once; the level hash and
        // every touched row's bucket hash evaluate at the same point.
        let x = KWiseHash::reduce_key(update.index);
        let item_level = KWiseHash::level_of_hash(self.level_hash.hash_reduced(x), self.max_level);
        for level in 0..=item_level {
            for row in 0..self.rows_per_level {
                let at = level * self.rows_per_level + row;
                let b = self.bucket_hashes[at].bucket_reduced(x, self.cells_per_level);
                self.cells[at * self.cells_per_level + b].apply(update);
            }
        }
    }

    /// Applies a batch of prepared updates. A bank of samplers folding a
    /// chunked stream should call this **sampler-outermost** — each
    /// sampler's tables then stay cache-resident across the whole chunk,
    /// where the update-outermost order walks every sampler's tables once
    /// per update. The result is bit-identical either way (every cell is a
    /// linear function of the update multiset).
    #[inline]
    pub fn apply_batch(&mut self, updates: &[SketchUpdate]) {
        for update in updates {
            self.apply(update);
        }
    }

    /// Merges another sampler that is a clone of the same configured
    /// sampler (identical dimensions, hash functions and fingerprint
    /// bases): every cell is a linear function of the updates it saw, so
    /// the merged sampler equals one sampler that saw both update
    /// sequences — in any order, exactly. A sharded pass clones one
    /// template sampler per shard, folds each shard's updates, and merges
    /// the clones bit-identically.
    pub fn merge(&mut self, other: &L0Sampler) {
        debug_assert_eq!(self.max_level, other.max_level);
        debug_assert_eq!(self.cells_per_level, other.cells_per_level);
        debug_assert_eq!(self.rows_per_level, other.rows_per_level);
        debug_assert_eq!(self.level_hash, other.level_hash);
        self.updates_seen += other.updates_seen;
        for (cell, other_cell) in self.cells.iter_mut().zip(&other.cells) {
            cell.merge(other_cell);
        }
    }

    /// Attempts to draw an element of the support, together with its net
    /// count. Returns `None` if the support is empty or recovery failed at
    /// every level (which, for the dimensions used here, happens with small
    /// probability only when the support is huge).
    pub fn sample(&self) -> Option<(u64, i64)> {
        let mut best: Option<(u64, i64, u64)> = None;
        // Flat iteration order equals the previous (level, row, bucket)
        // nesting, so ties resolve identically.
        for cell in &self.cells {
            if let RecoveryOutcome::OneSparse { index, count } = cell.recover() {
                let key = self.selection_hash.hash(index);
                match best {
                    Some((_, _, best_key)) if best_key <= key => {}
                    _ => best = Some((index, count, key)),
                }
            }
        }
        best.map(|(index, count, _)| (index, count))
    }

    /// Number of updates applied (diagnostic).
    pub fn updates_seen(&self) -> u64 {
        self.updates_seen
    }

    /// Machine words retained by the sampler.
    pub fn retained_words(&self) -> u64 {
        let cell_words: u64 = self
            .cells
            .iter()
            .map(OneSparseRecovery::retained_words)
            .sum();
        let hash_words: u64 = self
            .bucket_hashes
            .iter()
            .map(KWiseHash::retained_words)
            .sum::<u64>()
            + self.level_hash.retained_words()
            + self.selection_hash.retained_words();
        cell_words + hash_words + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onesparse::fingerprint_term;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn empty_support_yields_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = L0Sampler::for_universe(1000, &mut rng);
        assert_eq!(s.sample(), None);
        s.update(5, 3);
        s.update(5, -3);
        assert_eq!(s.sample(), None);
    }

    #[test]
    fn sample_is_a_member_of_the_support_with_correct_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = L0Sampler::for_universe(10_000, &mut rng);
        let mut truth: HashMap<u64, i64> = HashMap::new();
        let mut data = StdRng::seed_from_u64(3);
        for _ in 0..400 {
            let idx = data.gen_range(0..10_000u64);
            let delta = data.gen_range(1..5i64);
            s.update(idx, delta);
            *truth.entry(idx).or_insert(0) += delta;
        }
        let (idx, count) = s.sample().expect("non-empty support");
        assert_eq!(truth.get(&idx).copied(), Some(count));
    }

    #[test]
    fn deleted_items_are_never_sampled() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = L0Sampler::for_universe(1000, &mut rng);
        // Insert 0..50, delete the even ones.
        for idx in 0..50u64 {
            s.update(idx, 1);
        }
        for idx in (0..50u64).step_by(2) {
            s.update(idx, -1);
        }
        for trial in 0..10 {
            let (idx, count) = s.sample().expect("odd indices survive");
            assert_eq!(idx % 2, 1, "trial {trial} returned deleted index {idx}");
            assert_eq!(count, 1);
        }
    }

    #[test]
    fn small_supports_are_sampled_near_uniformly() {
        // With 6 surviving items and independent samplers, every item should
        // be returned at least once across many repetitions and no item
        // should dominate.
        let support: Vec<u64> = vec![11, 222, 3333, 44_444, 555_555, 6_666_666];
        let mut counts: HashMap<u64, usize> = HashMap::new();
        let trials = 300;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = L0Sampler::for_universe(10_000_000, &mut rng);
            for &idx in &support {
                s.update(idx, 1);
            }
            let (idx, _) = s.sample().expect("support is non-empty");
            assert!(support.contains(&idx));
            *counts.entry(idx).or_insert(0) += 1;
        }
        for &idx in &support {
            let c = counts.get(&idx).copied().unwrap_or(0);
            assert!(c > 0, "index {idx} never sampled");
            assert!(
                c < trials as usize / 2,
                "index {idx} sampled {c}/{trials} times, far from uniform"
            );
        }
    }

    #[test]
    fn large_supports_still_recover_something() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = L0Sampler::for_universe(1 << 20, &mut rng);
        let mut data = StdRng::seed_from_u64(8);
        let mut inserted = Vec::new();
        for _ in 0..20_000 {
            let idx = data.gen_range(0..(1u64 << 20));
            s.update(idx, 1);
            inserted.push(idx);
        }
        let (idx, _) = s.sample().expect("a level should isolate something");
        assert!(inserted.contains(&idx));
    }

    #[test]
    fn shared_base_terms_match_plain_updates() {
        let z = 987_654_321u64;
        let mut rng = StdRng::seed_from_u64(21);
        let plain_template = L0Sampler::with_fingerprint_base(12, 8, 2, z, &mut rng);
        let mut plain = plain_template.clone();
        let mut termed = plain_template;
        assert_eq!(plain.shared_fingerprint_base(), Some(z));
        let mut data = StdRng::seed_from_u64(22);
        for _ in 0..300 {
            let idx = data.gen_range(0..4096u64);
            let delta = if data.gen_range(0..3) == 0 { -1 } else { 1 };
            plain.update(idx, delta);
            termed.update_with_term(idx, delta, fingerprint_term(z, idx));
        }
        assert_eq!(plain.sample(), termed.sample());
        assert_eq!(plain.updates_seen(), termed.updates_seen());
    }

    #[test]
    fn merged_shards_equal_one_sequential_sampler() {
        let mut rng = StdRng::seed_from_u64(31);
        let template = L0Sampler::for_universe(100_000, &mut rng);
        let mut data = StdRng::seed_from_u64(32);
        let updates: Vec<(u64, i64)> = (0..500)
            .map(|_| {
                (
                    data.gen_range(0..100_000u64),
                    if data.gen_range(0..4) == 0 { -1 } else { 1 },
                )
            })
            .collect();
        let mut sequential = template.clone();
        for &(i, d) in &updates {
            sequential.update(i, d);
        }
        for shards in [1usize, 2, 3, 5, 8] {
            let per_shard = updates.len().div_ceil(shards);
            let mut merged: Option<L0Sampler> = None;
            // Merge the shard clones in reverse order: linearity makes the
            // merge order irrelevant.
            for chunk in updates.chunks(per_shard).rev() {
                let mut shard = template.clone();
                for &(i, d) in chunk {
                    shard.update(i, d);
                }
                match merged.as_mut() {
                    Some(m) => m.merge(&shard),
                    None => merged = Some(shard),
                }
            }
            let merged = merged.unwrap();
            assert_eq!(merged.sample(), sequential.sample(), "shards {shards}");
            assert_eq!(merged.updates_seen(), sequential.updates_seen());
        }
    }

    #[test]
    fn prepared_updates_match_termed_updates_bit_for_bit() {
        let z = 55_555_555u64;
        let mut rng = StdRng::seed_from_u64(41);
        let template = L0Sampler::with_fingerprint_base(14, 8, 2, z, &mut rng);
        let mut termed = template.clone();
        let mut applied = template.clone();
        let mut batched = template;
        let mut data = StdRng::seed_from_u64(42);
        let updates: Vec<(u64, i64)> = (0..400)
            .map(|_| {
                (
                    data.gen_range(0..16_384u64),
                    if data.gen_range(0..3) == 0 { -1 } else { 1 },
                )
            })
            .collect();
        let prepared: Vec<SketchUpdate> = updates
            .iter()
            .map(|&(i, d)| SketchUpdate::prepare(z, i, d))
            .collect();
        for (&(i, d), p) in updates.iter().zip(&prepared) {
            termed.update_with_term(i, d, fingerprint_term(z, i));
            applied.apply(p);
        }
        batched.apply_batch(&prepared);
        assert_eq!(termed.sample(), applied.sample());
        assert_eq!(termed.sample(), batched.sample());
        assert_eq!(termed.updates_seen(), batched.updates_seen());
        // Zero deltas are skipped exactly like update() skips them.
        let before = batched.updates_seen();
        batched.apply(&SketchUpdate::prepare(z, 7, 0));
        assert_eq!(batched.updates_seen(), before);
    }

    #[test]
    fn space_scales_with_levels_and_cells() {
        let mut rng = StdRng::seed_from_u64(9);
        let small = L0Sampler::new(4, 4, 1, &mut rng);
        let large = L0Sampler::new(16, 8, 2, &mut rng);
        assert!(large.retained_words() > small.retained_words());
        assert_eq!(small.updates_seen(), 0);
    }
}
