//! # degentri-sketch — linear sketches for dynamic graph streams
//!
//! The paper's algorithm is stated for insert-only streams, but Table 1 also
//! cites dynamic-stream (insert/delete) results, and the natural way to port
//! degree-proportional edge sampling to dynamic streams is through *linear
//! sketches*. This crate provides the classic sketching toolbox, built from
//! scratch on `rand` and integer arithmetic only:
//!
//! * [`hash::KWiseHash`] — k-wise independent polynomial hash functions over
//!   the Mersenne prime `2^61 − 1`, the randomness primitive every sketch
//!   below consumes.
//! * [`countmin::CountMinSketch`] — insert-only frequency over-estimates
//!   with the usual `ε‖f‖₁` guarantee.
//! * [`countsketch::CountSketch`] — turnstile (insert/delete) frequency
//!   estimates by median-of-signed-buckets, plus the AMS-style second
//!   frequency moment estimate.
//! * [`onesparse::OneSparseRecovery`] — exact recovery of a vector that has
//!   at most one non-zero coordinate, with a fingerprint test that detects
//!   the other cases with high probability.
//! * [`l0::L0Sampler`] — sampling a (near-)uniform element of the *support*
//!   of a turnstile vector, the primitive that lets the dynamic-stream
//!   triangle estimator of `degentri-dynamic` draw uniform surviving edges
//!   and uniform surviving neighbors even in the presence of deletions.
//! * [`bank::L0Bank`] — a bank of identically-shaped ℓ0 samplers flattened
//!   into structure-of-arrays form, so one turnstile update touches the
//!   whole bank as a single strip-mined kernel (shared reduced key,
//!   contiguous Horner coefficient lanes, mask buckets, tabulated
//!   `z^index` powers) — bit-identical to updating the samplers one by
//!   one, several times faster.
//!
//! All structures are deterministic given their seed, are `Clone`, and
//! expose `retained_words()` so the space experiments can account for them
//! with the same machine-word convention as the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod countmin;
pub mod countsketch;
pub mod hash;
pub mod l0;
pub mod onesparse;

pub use bank::L0Bank;
pub use countmin::CountMinSketch;
pub use countsketch::CountSketch;
pub use hash::KWiseHash;
pub use l0::L0Sampler;
pub use onesparse::{
    fingerprint_term, FingerprintPow, OneSparseRecovery, RecoveryOutcome, SketchUpdate,
};
