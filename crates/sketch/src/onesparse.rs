//! Exact recovery of one-sparse turnstile vectors.
//!
//! A vector built from turnstile updates `(index, ±delta)` is *one-sparse*
//! if, after all cancellations, exactly one index has a non-zero count. The
//! classic recovery structure keeps three aggregates — the total weight
//! `W = Σ_i f(i)`, the weighted index sum `S = Σ_i i·f(i)`, and a random
//! fingerprint `P = Σ_i f(i)·z^i (mod p)` — and recovers the surviving index
//! as `S/W`, using the fingerprint to reject vectors that are not actually
//! one-sparse. This is the leaf structure of the [`crate::L0Sampler`].

use rand::Rng;

use crate::hash::MERSENNE_PRIME;

/// Outcome of a recovery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The vector is identically zero.
    Zero,
    /// Exactly one index survives with the given net count.
    OneSparse {
        /// The surviving index.
        index: u64,
        /// Its net count.
        count: i64,
    },
    /// More than one index survives (or the fingerprint test failed).
    NotOneSparse,
}

/// One-sparse recovery sketch.
#[derive(Debug, Clone)]
pub struct OneSparseRecovery {
    weight: i128,
    index_sum: i128,
    fingerprint: u64,
    z: u64,
}

/// Modular exponentiation over the Mersenne prime field.
fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    base %= MERSENNE_PRIME;
    let mut result = 1u128;
    let mut b = base as u128;
    while exp > 0 {
        if exp & 1 == 1 {
            result = (result * b) % MERSENNE_PRIME as u128;
        }
        b = (b * b) % MERSENNE_PRIME as u128;
        exp >>= 1;
    }
    result as u64
}

/// The fingerprint term `z^index (mod p)` of one update. Callers batching
/// many sketches over one *shared* fingerprint base `z` (see
/// [`OneSparseRecovery::with_fingerprint_base`]) compute this once per
/// update and fan it out with [`OneSparseRecovery::update_with_term`] —
/// the modular exponentiation is by far the most expensive part of an
/// update, so sharing it across a bank of sketches is a large constant-
/// factor win.
#[inline]
pub fn fingerprint_term(base: u64, index: u64) -> u64 {
    pow_mod(base, index)
}

/// One turnstile update with every cell-independent aggregate precomputed:
/// the fingerprint *contribution* `z^index · delta (mod p)` and the
/// weighted index term `index · delta` are the same for **every** recovery
/// cell sharing the fingerprint base `z`, so a bank of sketches computes
/// them once per update ([`SketchUpdate::prepare`]) and every cell touch
/// degenerates to three additions and one conditional subtraction
/// ([`OneSparseRecovery::apply`]) — no multiplication, no 128-bit modulo.
///
/// Bit-identical to routing the raw `(index, delta)` through
/// [`OneSparseRecovery::update_with_term`]: the aggregates are computed by
/// the same arithmetic, just hoisted out of the per-cell loop.
#[derive(Debug, Clone, Copy)]
pub struct SketchUpdate {
    /// The updated index.
    pub index: u64,
    /// The signed count delta.
    pub delta: i64,
    /// `index · delta`, the index-sum increment.
    pub index_delta: i128,
    /// `z^index · delta (mod p)` for the shared fingerprint base `z`.
    pub contribution: u64,
    /// `index mod p` — the key reduced into the hash field
    /// ([`KWiseHash::reduce_key`](crate::KWiseHash::reduce_key)), hoisted
    /// here so every sampler bank the update fans out to evaluates its
    /// level and bucket hashes at the shared precomputed point instead of
    /// re-reducing the key per sampler.
    pub reduced: u64,
}

impl SketchUpdate {
    /// Prepares the update `(index, delta)` for a bank sharing the
    /// fingerprint base `z` (one modular exponentiation, then reused by
    /// every cell of every sketch in the bank).
    #[inline]
    pub fn prepare(z: u64, index: u64, delta: i64) -> Self {
        Self::with_term(index, delta, fingerprint_term(z, index))
    }

    /// [`SketchUpdate::prepare`] with the fingerprint term `z^index (mod
    /// p)` already known (`term` must equal [`fingerprint_term`]`(z,
    /// index)` for the bank's shared base).
    #[inline]
    pub fn with_term(index: u64, delta: i64, term: u64) -> Self {
        let delta_mod = if delta >= 0 {
            (delta as u64) % MERSENNE_PRIME
        } else {
            MERSENNE_PRIME - ((-(delta as i128)) as u64 % MERSENNE_PRIME)
        };
        SketchUpdate {
            index,
            delta,
            index_delta: index as i128 * delta as i128,
            contribution: ((term as u128) * (delta_mod as u128) % MERSENNE_PRIME as u128) as u64,
            reduced: index % MERSENNE_PRIME,
        }
    }
}

/// Precomputed powers `z^(2^i) (mod p)` of a shared fingerprint base.
///
/// [`fingerprint_term`] pays the full square-and-multiply ladder — one
/// squaring *and* up to one multiplication per exponent bit — on every
/// update. A bank of sketches sharing one base squares the same values
/// over and over, so this table stores the 64 repeated squares once and
/// [`term`](FingerprintPow::term) keeps only the data-dependent half of
/// the ladder: one multiplication per **set** bit of the index (about half
/// the bits), and no squarings at all.
///
/// Bit-identical to [`fingerprint_term`]: the accumulator multiplies by
/// exactly the same square values in the same (ascending-bit) order, so
/// every intermediate residue matches the ladder's.
#[derive(Debug, Clone)]
pub struct FingerprintPow {
    pows: [u64; 64],
}

impl FingerprintPow {
    /// Tabulates the repeated squares of `base` (reduced into the field).
    pub fn new(base: u64) -> Self {
        let mut pows = [0u64; 64];
        let mut b = (base % MERSENNE_PRIME) as u128;
        for p in pows.iter_mut() {
            *p = b as u64;
            b = b * b % MERSENNE_PRIME as u128;
        }
        FingerprintPow { pows }
    }

    /// The fingerprint term `base^index (mod p)` — equals
    /// [`fingerprint_term`]`(base, index)` bit for bit.
    #[inline]
    pub fn term(&self, mut index: u64) -> u64 {
        let mut result = 1u128;
        let mut bit = 0usize;
        while index > 0 {
            if index & 1 == 1 {
                result = result * self.pows[bit] as u128 % MERSENNE_PRIME as u128;
            }
            index >>= 1;
            bit += 1;
        }
        result as u64
    }
}

impl OneSparseRecovery {
    /// Creates an empty recovery structure with fresh randomness.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        OneSparseRecovery::with_fingerprint_base(rng.gen_range(2..MERSENNE_PRIME))
    }

    /// Creates an empty recovery structure with an explicit fingerprint
    /// base `z ∈ [2, p)`. The per-cell false-positive guarantee of the
    /// fingerprint test only needs `z` to be independent of the data, so
    /// many cells may share one base — failures become correlated across
    /// cells, but each cell's rejection probability is unchanged, and
    /// sharing lets callers compute `z^index` once per update for a whole
    /// bank of sketches.
    pub fn with_fingerprint_base(z: u64) -> Self {
        debug_assert!((2..MERSENNE_PRIME).contains(&z));
        OneSparseRecovery {
            weight: 0,
            index_sum: 0,
            fingerprint: 0,
            z,
        }
    }

    /// The fingerprint base `z` this structure tests with.
    pub fn fingerprint_base(&self) -> u64 {
        self.z
    }

    /// The three linear aggregates `(weight, index_sum, fingerprint)` —
    /// read by [`crate::L0Bank`] when flattening cells into its
    /// structure-of-arrays layout.
    pub(crate) fn parts(&self) -> (i128, i128, u64) {
        (self.weight, self.index_sum, self.fingerprint)
    }

    /// Rebuilds a cell from its aggregates (the inverse of
    /// [`parts`](OneSparseRecovery::parts)), so [`crate::L0Bank`] can run
    /// the standard [`recover`](OneSparseRecovery::recover) on cells it
    /// stores column-wise.
    pub(crate) fn from_parts(z: u64, weight: i128, index_sum: i128, fingerprint: u64) -> Self {
        OneSparseRecovery {
            weight,
            index_sum,
            fingerprint,
            z,
        }
    }

    /// Applies the turnstile update `(index, delta)`.
    pub fn update(&mut self, index: u64, delta: i64) {
        self.update_with_term(index, delta, pow_mod(self.z, index));
    }

    /// [`update`](OneSparseRecovery::update) with the fingerprint term
    /// `z^index (mod p)` supplied by the caller (see [`fingerprint_term`]);
    /// `term` must be computed for this structure's own base — recomputing
    /// it here (even under `debug_assertions`) would defeat the point of
    /// sharing it, so the contract is the caller's to uphold.
    #[inline]
    pub fn update_with_term(&mut self, index: u64, delta: i64, term: u64) {
        self.weight += delta as i128;
        self.index_sum += index as i128 * delta as i128;
        let delta_mod = if delta >= 0 {
            (delta as u64) % MERSENNE_PRIME
        } else {
            MERSENNE_PRIME - ((-(delta as i128)) as u64 % MERSENNE_PRIME)
        };
        let contribution = ((term as u128) * (delta_mod as u128) % MERSENNE_PRIME as u128) as u64;
        self.fingerprint =
            ((self.fingerprint as u128 + contribution as u128) % MERSENNE_PRIME as u128) as u64;
    }

    /// Applies a prepared update (see [`SketchUpdate`]). Bit-identical to
    /// [`update_with_term`](OneSparseRecovery::update_with_term) with the
    /// same raw update: both operands of the fingerprint addition lie below
    /// the prime, so the sum fits in a `u64` minus one conditional
    /// subtraction — the same residue the 128-bit modulo produced.
    #[inline]
    pub fn apply(&mut self, update: &SketchUpdate) {
        self.weight += update.delta as i128;
        self.index_sum += update.index_delta;
        let sum = self.fingerprint + update.contribution;
        self.fingerprint = if sum >= MERSENNE_PRIME {
            sum - MERSENNE_PRIME
        } else {
            sum
        };
    }

    /// Merges another recovery structure built with the **same** base `z`:
    /// the three aggregates are linear in the update stream, so the merge
    /// equals having applied both structures' updates to one sketch — in
    /// any order, exactly. This is what lets a sharded pass fold one sketch
    /// per shard and combine them bit-identically.
    pub fn merge(&mut self, other: &OneSparseRecovery) {
        debug_assert_eq!(self.z, other.z, "merging sketches with different bases");
        self.weight += other.weight;
        self.index_sum += other.index_sum;
        self.fingerprint = ((self.fingerprint as u128 + other.fingerprint as u128)
            % MERSENNE_PRIME as u128) as u64;
    }

    /// Whether no update has survived (all weights cancelled).
    pub fn is_zero(&self) -> bool {
        self.weight == 0 && self.index_sum == 0 && self.fingerprint == 0
    }

    /// Attempts to recover the vector.
    pub fn recover(&self) -> RecoveryOutcome {
        if self.is_zero() {
            return RecoveryOutcome::Zero;
        }
        if self.weight == 0 {
            return RecoveryOutcome::NotOneSparse;
        }
        if self.index_sum % self.weight != 0 {
            return RecoveryOutcome::NotOneSparse;
        }
        let index = self.index_sum / self.weight;
        if index < 0 || index > u64::MAX as i128 {
            return RecoveryOutcome::NotOneSparse;
        }
        let index = index as u64;
        let count = self.weight;
        if count > i64::MAX as i128 || count < i64::MIN as i128 {
            return RecoveryOutcome::NotOneSparse;
        }
        // Fingerprint check: a truly one-sparse vector has
        // P = count · z^index (mod p).
        let count_mod = if count >= 0 {
            (count as u64) % MERSENNE_PRIME
        } else {
            MERSENNE_PRIME - ((-count) as u64 % MERSENNE_PRIME)
        };
        let expected = ((pow_mod(self.z, index) as u128) * (count_mod as u128)
            % MERSENNE_PRIME as u128) as u64;
        if expected != self.fingerprint {
            return RecoveryOutcome::NotOneSparse;
        }
        RecoveryOutcome::OneSparse {
            index,
            count: count as i64,
        }
    }

    /// Machine words retained by the structure.
    pub fn retained_words(&self) -> u64 {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fresh(seed: u64) -> OneSparseRecovery {
        let mut rng = StdRng::seed_from_u64(seed);
        OneSparseRecovery::new(&mut rng)
    }

    #[test]
    fn zero_vector_is_recognized() {
        let mut s = fresh(1);
        assert_eq!(s.recover(), RecoveryOutcome::Zero);
        s.update(42, 3);
        s.update(42, -3);
        assert_eq!(s.recover(), RecoveryOutcome::Zero);
    }

    #[test]
    fn single_survivor_is_recovered_exactly() {
        let mut s = fresh(2);
        s.update(1234, 7);
        assert_eq!(
            s.recover(),
            RecoveryOutcome::OneSparse {
                index: 1234,
                count: 7
            }
        );
        // Add noise that later cancels: recovery still works.
        s.update(999, 5);
        s.update(999, -5);
        assert_eq!(
            s.recover(),
            RecoveryOutcome::OneSparse {
                index: 1234,
                count: 7
            }
        );
    }

    #[test]
    fn deletions_can_reduce_to_one_survivor() {
        let mut s = fresh(3);
        s.update(10, 2);
        s.update(20, 4);
        s.update(10, -2);
        assert_eq!(
            s.recover(),
            RecoveryOutcome::OneSparse {
                index: 20,
                count: 4
            }
        );
    }

    #[test]
    fn multi_sparse_vectors_are_rejected() {
        for seed in 0..20u64 {
            let mut s = fresh(seed);
            s.update(3, 1);
            s.update(8, 1);
            assert_eq!(s.recover(), RecoveryOutcome::NotOneSparse, "seed {seed}");
            s.update(100, 5);
            assert_eq!(s.recover(), RecoveryOutcome::NotOneSparse, "seed {seed}");
        }
    }

    #[test]
    fn adversarial_cancellation_patterns_are_caught() {
        // Two surviving indices arranged so that S/W happens to be integral:
        // the fingerprint must catch it.
        for seed in 0..20u64 {
            let mut s = fresh(seed);
            s.update(10, 1);
            s.update(30, 1); // S = 40, W = 2, S/W = 20 which is a phantom index
            assert_eq!(s.recover(), RecoveryOutcome::NotOneSparse, "seed {seed}");
        }
    }

    #[test]
    fn negative_counts_are_supported() {
        let mut s = fresh(9);
        s.update(77, -4);
        assert_eq!(
            s.recover(),
            RecoveryOutcome::OneSparse {
                index: 77,
                count: -4
            }
        );
    }

    #[test]
    fn pow_mod_matches_naive_exponentiation() {
        for (base, exp) in [(2u64, 10u64), (3, 0), (7, 13), (MERSENNE_PRIME - 1, 2)] {
            let mut naive = 1u128;
            for _ in 0..exp {
                naive = naive * base as u128 % MERSENNE_PRIME as u128;
            }
            assert_eq!(pow_mod(base, exp), naive as u64);
        }
    }

    #[test]
    fn space_is_constant() {
        let s = fresh(11);
        assert_eq!(s.retained_words(), 4);
    }

    #[test]
    fn shared_base_and_precomputed_terms_match_plain_updates() {
        let z = 123_456_789u64;
        let mut plain = OneSparseRecovery::with_fingerprint_base(z);
        let mut termed = OneSparseRecovery::with_fingerprint_base(z);
        assert_eq!(plain.fingerprint_base(), z);
        for (index, delta) in [(5u64, 3i64), (9, -1), (5, -3), (7, 2)] {
            plain.update(index, delta);
            termed.update_with_term(index, delta, fingerprint_term(z, index));
        }
        assert_eq!(plain.recover(), termed.recover());
    }

    #[test]
    fn apply_matches_update_with_term_bit_for_bit() {
        let z = 777_777u64;
        let mut termed = OneSparseRecovery::with_fingerprint_base(z);
        let mut applied = OneSparseRecovery::with_fingerprint_base(z);
        for (index, delta) in [(5u64, 3i64), (9, -1), (5, -3), (7, 2), (9, -4)] {
            termed.update_with_term(index, delta, fingerprint_term(z, index));
            applied.apply(&SketchUpdate::prepare(z, index, delta));
        }
        assert_eq!(termed.recover(), applied.recover());
        assert_eq!(termed.is_zero(), applied.is_zero());
    }

    #[test]
    fn merge_equals_interleaved_updates_in_any_split() {
        let z = 42u64;
        let updates = [(10u64, 2i64), (20, 4), (10, -2), (30, 1), (30, -1)];
        let mut sequential = OneSparseRecovery::with_fingerprint_base(z);
        for &(i, d) in &updates {
            sequential.update(i, d);
        }
        for split in 0..=updates.len() {
            let (left, right) = updates.split_at(split);
            let mut a = OneSparseRecovery::with_fingerprint_base(z);
            let mut b = OneSparseRecovery::with_fingerprint_base(z);
            for &(i, d) in left {
                a.update(i, d);
            }
            for &(i, d) in right {
                b.update(i, d);
            }
            a.merge(&b);
            assert_eq!(a.recover(), sequential.recover(), "split {split}");
            assert_eq!(a.is_zero(), sequential.is_zero());
        }
    }
}
