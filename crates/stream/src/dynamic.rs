//! Dynamic (insert/delete) edge streams.
//!
//! The paper's algorithm is stated for insert-only streams, but the
//! literature it compares against (Table 1) includes dynamic-stream results,
//! and the natural robustness question — "what if edges can also be
//! deleted?" — is answered in `degentri-dynamic` by replacing every
//! reservoir-sampling step with an ℓ0 sampler. This module provides the
//! substrate those algorithms run on:
//!
//! * [`EdgeUpdate`] — one stream item: an edge plus an insert/delete sign.
//! * [`DynamicEdgeStream`] — the replayable multi-pass trait, mirroring
//!   [`crate::EdgeStream`].
//! * [`DynamicMemoryStream`] — the in-memory simulation, with constructors
//!   that turn a static graph into insert-only, insert-then-delete, and
//!   churn (temporary edges inserted and later removed) workloads.
//!
//! The *surviving* graph of a dynamic stream — the edges whose net count is
//! positive after all updates — is what the estimators are estimating; the
//! [`DynamicMemoryStream::surviving_graph`] helper materializes it so tests
//! and experiments can compare against exact counts.

use degentri_graph::{CsrGraph, Edge, GraphBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::hashing::FxHashMap;

/// The sign of a dynamic stream item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// The edge is inserted.
    Insert,
    /// The edge is deleted.
    Delete,
}

/// One item of a dynamic edge stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeUpdate {
    /// The (normalized, undirected) edge being updated.
    pub edge: Edge,
    /// Whether this update inserts or deletes the edge.
    pub kind: UpdateKind,
}

impl EdgeUpdate {
    /// An insertion of `edge`.
    pub fn insert(edge: Edge) -> Self {
        EdgeUpdate {
            edge,
            kind: UpdateKind::Insert,
        }
    }

    /// A deletion of `edge`.
    pub fn delete(edge: Edge) -> Self {
        EdgeUpdate {
            edge,
            kind: UpdateKind::Delete,
        }
    }

    /// `+1` for insertions, `−1` for deletions.
    pub fn delta(&self) -> i64 {
        match self.kind {
            UpdateKind::Insert => 1,
            UpdateKind::Delete => -1,
        }
    }
}

/// A replayable, fixed-order stream of edge insertions and deletions.
pub trait DynamicEdgeStream {
    /// Number of vertices `n` (vertex ids are `< n`).
    fn num_vertices(&self) -> usize;

    /// Number of updates (insertions plus deletions) in one pass.
    fn num_updates(&self) -> usize;

    /// Starts a new pass over the update stream. Every pass yields the same
    /// updates in the same order.
    fn pass(&self) -> Box<dyn Iterator<Item = EdgeUpdate> + '_>;

    /// Makes one pass over the update stream in chunks of up to
    /// `batch_size` updates — the turnstile analogue of
    /// [`EdgeStream::pass_batched`](crate::EdgeStream::pass_batched). The
    /// default implementation buffers the boxed [`pass`] iterator into one
    /// reused allocation; in-memory streams override it to hand out
    /// zero-copy slices of their backing storage.
    ///
    /// [`pass`]: DynamicEdgeStream::pass
    fn pass_batched(&self, batch_size: usize, visit: &mut dyn FnMut(&[EdgeUpdate])) {
        let batch = batch_size.max(1);
        // One buffer for the whole pass, sized by what a chunk can actually
        // hold: a batch size far beyond the stream length must not reserve
        // memory the pass can never fill (the same over-reserve cap as the
        // insert-only default).
        let mut buf: Vec<EdgeUpdate> = Vec::with_capacity(batch.min(self.num_updates().max(1)));
        for u in self.pass() {
            buf.push(u);
            if buf.len() == batch {
                visit(&buf);
                buf.clear();
            }
        }
        if !buf.is_empty() {
            visit(&buf);
        }
    }

    /// The stream's backing update slice in stream order, when it has one.
    ///
    /// In-memory snapshots return their storage so schedulers can build
    /// zero-copy [`ShardedDynamicStream`](crate::ShardedDynamicStream)
    /// views over it — the turnstile analogue of
    /// [`EdgeStream::as_edge_slice`](crate::EdgeStream::as_edge_slice);
    /// lazily generated or metered streams return `None`, and callers must
    /// fall back to the pass APIs.
    fn as_update_slice(&self) -> Option<&[EdgeUpdate]> {
        None
    }
}

impl<S: DynamicEdgeStream + ?Sized> DynamicEdgeStream for &S {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn num_updates(&self) -> usize {
        (**self).num_updates()
    }

    fn pass(&self) -> Box<dyn Iterator<Item = EdgeUpdate> + '_> {
        (**self).pass()
    }

    fn pass_batched(&self, batch_size: usize, visit: &mut dyn FnMut(&[EdgeUpdate])) {
        (**self).pass_batched(batch_size, visit)
    }

    fn as_update_slice(&self) -> Option<&[EdgeUpdate]> {
        (**self).as_update_slice()
    }
}

/// An in-memory dynamic edge stream.
#[derive(Debug, Clone)]
pub struct DynamicMemoryStream {
    updates: Vec<EdgeUpdate>,
    num_vertices: usize,
}

impl DynamicMemoryStream {
    /// Creates a stream from an explicit update sequence.
    pub fn from_updates(num_vertices: usize, updates: Vec<EdgeUpdate>) -> Self {
        DynamicMemoryStream {
            updates,
            num_vertices,
        }
    }

    /// An insert-only stream over the edges of `g`, in a seeded uniform
    /// random order. Its surviving graph is `g` itself.
    pub fn insert_only(g: &CsrGraph, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut updates: Vec<EdgeUpdate> =
            g.edges().iter().map(|&e| EdgeUpdate::insert(e)).collect();
        updates.shuffle(&mut rng);
        DynamicMemoryStream {
            updates,
            num_vertices: g.num_vertices(),
        }
    }

    /// A churn stream: every edge of `g` is inserted, and additionally a
    /// `churn_fraction` of the edges are inserted early and deleted later,
    /// so the deletions never change the surviving graph (it is always `g`)
    /// but any algorithm that ignores deletions over-counts.
    ///
    /// `churn_fraction` is clamped to `[0, 1]`; with `0.5` the stream has
    /// roughly `2m` updates.
    pub fn with_churn(g: &CsrGraph, churn_fraction: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let churn_fraction = churn_fraction.clamp(0.0, 1.0);
        let edges = g.edges();
        let mut keep: Vec<EdgeUpdate> = edges.iter().map(|&e| EdgeUpdate::insert(e)).collect();
        keep.shuffle(&mut rng);

        // Pick the churn set: edges inserted a second time and deleted later.
        let mut churn: Vec<Edge> = edges.to_vec();
        churn.shuffle(&mut rng);
        churn.truncate((churn_fraction * edges.len() as f64).round() as usize);

        // First half: all "keep" insertions interleaved with churn insertions.
        let mut updates = Vec::with_capacity(keep.len() + 2 * churn.len());
        updates.extend(keep);
        for &e in &churn {
            updates.push(EdgeUpdate::insert(e));
        }
        updates.shuffle(&mut rng);
        // Second half: delete the churned copies (restoring multiplicity 1).
        let mut deletions: Vec<EdgeUpdate> = churn.iter().map(|&e| EdgeUpdate::delete(e)).collect();
        deletions.shuffle(&mut rng);
        updates.extend(deletions);

        DynamicMemoryStream {
            updates,
            num_vertices: g.num_vertices(),
        }
    }

    /// A stream that first inserts all of `g`'s edges and then deletes the
    /// edges *not* in the subgraph selected by `keep`: the surviving graph
    /// is exactly the selected subgraph. Useful for "the graph that remains
    /// after deletions" experiments.
    pub fn insert_then_delete(g: &CsrGraph, keep: impl Fn(Edge) -> bool, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut updates: Vec<EdgeUpdate> =
            g.edges().iter().map(|&e| EdgeUpdate::insert(e)).collect();
        updates.shuffle(&mut rng);
        let mut deletions: Vec<EdgeUpdate> = g
            .edges()
            .iter()
            .filter(|&&e| !keep(e))
            .map(|&e| EdgeUpdate::delete(e))
            .collect();
        deletions.shuffle(&mut rng);
        updates.extend(deletions);
        DynamicMemoryStream {
            updates,
            num_vertices: g.num_vertices(),
        }
    }

    /// The updates in stream order.
    pub fn updates(&self) -> &[EdgeUpdate] {
        &self.updates
    }

    /// Net multiplicity of every edge after the whole stream (only non-zero
    /// entries are returned).
    pub fn net_multiplicities(&self) -> FxHashMap<Edge, i64> {
        let mut net: FxHashMap<Edge, i64> = FxHashMap::default();
        for u in &self.updates {
            *net.entry(u.edge).or_insert(0) += u.delta();
        }
        net.retain(|_, &mut c| c != 0);
        net
    }

    /// Materializes the surviving graph (edges with positive net count).
    pub fn surviving_graph(&self) -> CsrGraph {
        let net = self.net_multiplicities();
        let mut b = GraphBuilder::with_vertices(self.num_vertices);
        for (e, c) in net {
            if c > 0 {
                b.add_edge(e.u(), e.v());
            }
        }
        b.build()
    }

    /// Number of deletions in the stream.
    pub fn num_deletions(&self) -> usize {
        self.updates
            .iter()
            .filter(|u| u.kind == UpdateKind::Delete)
            .count()
    }
}

impl DynamicEdgeStream for DynamicMemoryStream {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_updates(&self) -> usize {
        self.updates.len()
    }

    fn pass(&self) -> Box<dyn Iterator<Item = EdgeUpdate> + '_> {
        Box::new(self.updates.iter().copied())
    }

    fn pass_batched(&self, batch_size: usize, visit: &mut dyn FnMut(&[EdgeUpdate])) {
        // Zero-copy: chunks borrow the stream's own update storage.
        for chunk in self.updates.chunks(batch_size.max(1)) {
            visit(chunk);
        }
    }

    fn as_update_slice(&self) -> Option<&[EdgeUpdate]> {
        Some(&self.updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::CsrGraph;

    fn graph() -> CsrGraph {
        CsrGraph::from_raw_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn insert_only_stream_survives_to_the_original_graph() {
        let g = graph();
        let s = DynamicMemoryStream::insert_only(&g, 3);
        assert_eq!(s.num_updates(), g.num_edges());
        assert_eq!(s.num_deletions(), 0);
        let survived = s.surviving_graph();
        assert_eq!(survived.num_edges(), g.num_edges());
        let mut a = survived.edges().to_vec();
        let mut b = g.edges().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn churn_stream_has_deletions_but_the_same_surviving_graph() {
        let g = graph();
        let s = DynamicMemoryStream::with_churn(&g, 0.6, 7);
        assert!(s.num_deletions() > 0);
        assert_eq!(s.num_updates(), g.num_edges() + 2 * s.num_deletions());
        let survived = s.surviving_graph();
        assert_eq!(survived.num_edges(), g.num_edges());
        // Net multiplicities are all exactly one.
        assert!(s.net_multiplicities().values().all(|&c| c == 1));
    }

    #[test]
    fn insert_then_delete_keeps_only_the_selected_subgraph() {
        let g = graph();
        // Keep only edges incident to vertex 3.
        let s = DynamicMemoryStream::insert_then_delete(
            &g,
            |e| e.u().index() == 3 || e.v().index() == 3,
            5,
        );
        let survived = s.surviving_graph();
        assert_eq!(survived.num_edges(), 3);
        assert!(s.num_deletions() > 0);
    }

    #[test]
    fn passes_are_replayable_and_identical() {
        let g = graph();
        let s = DynamicMemoryStream::with_churn(&g, 0.5, 11);
        let p1: Vec<EdgeUpdate> = s.pass().collect();
        let p2: Vec<EdgeUpdate> = s.pass().collect();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), s.num_updates());
    }

    #[test]
    fn batched_passes_match_plain_passes() {
        let g = graph();
        let s = DynamicMemoryStream::with_churn(&g, 0.5, 11);
        let sequential: Vec<EdgeUpdate> = s.pass().collect();
        for batch in [1, 3, 7, 1000] {
            let mut batched = Vec::new();
            s.pass_batched(batch, &mut |chunk| {
                assert!(!chunk.is_empty() && chunk.len() <= batch);
                batched.extend_from_slice(chunk);
            });
            assert_eq!(batched, sequential, "batch {batch}");
        }
        // The default (buffering) implementation agrees with the zero-copy
        // override; exercise it through a wrapper without the override.
        struct Unbatched(DynamicMemoryStream);
        impl DynamicEdgeStream for Unbatched {
            fn num_vertices(&self) -> usize {
                self.0.num_vertices()
            }
            fn num_updates(&self) -> usize {
                self.0.num_updates()
            }
            fn pass(&self) -> Box<dyn Iterator<Item = EdgeUpdate> + '_> {
                self.0.pass()
            }
        }
        let fallback = Unbatched(s.clone());
        let mut fell_back = Vec::new();
        fallback.pass_batched(4, &mut |chunk| fell_back.extend_from_slice(chunk));
        assert_eq!(fell_back, sequential);

        // An oversized batch must deliver one chunk of exactly the stream's
        // updates — the default implementation caps its buffer reservation
        // at the update count, not the requested batch size.
        let mut chunks = 0usize;
        let mut updates = 0usize;
        fallback.pass_batched(usize::MAX, &mut |chunk| {
            chunks += 1;
            updates += chunk.len();
            assert!(chunk.len() <= fallback.num_updates());
        });
        assert_eq!(chunks, 1);
        assert_eq!(updates, fallback.num_updates());
    }

    #[test]
    fn update_slices_are_exposed_by_memory_streams_only() {
        let g = graph();
        let s = DynamicMemoryStream::with_churn(&g, 0.5, 11);
        assert_eq!(s.as_update_slice().unwrap(), s.updates());
        let r: &DynamicMemoryStream = &s;
        assert!(DynamicEdgeStream::as_update_slice(&r).is_some());
        struct Lazy(DynamicMemoryStream);
        impl DynamicEdgeStream for Lazy {
            fn num_vertices(&self) -> usize {
                self.0.num_vertices()
            }
            fn num_updates(&self) -> usize {
                self.0.num_updates()
            }
            fn pass(&self) -> Box<dyn Iterator<Item = EdgeUpdate> + '_> {
                self.0.pass()
            }
        }
        assert!(Lazy(s).as_update_slice().is_none());
    }

    #[test]
    fn update_helpers() {
        let e = Edge::from_raw(1, 2);
        assert_eq!(EdgeUpdate::insert(e).delta(), 1);
        assert_eq!(EdgeUpdate::delete(e).delta(), -1);
        let s = DynamicMemoryStream::from_updates(
            3,
            vec![EdgeUpdate::insert(e), EdgeUpdate::delete(e)],
        );
        assert_eq!(s.num_vertices(), 3);
        assert!(s.net_multiplicities().is_empty());
        assert_eq!(s.surviving_graph().num_edges(), 0);
        // Reference delegation of the trait.
        let r: &DynamicMemoryStream = &s;
        assert_eq!(DynamicEdgeStream::num_updates(&r), 2);
    }
}
