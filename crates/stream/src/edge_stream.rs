//! The multi-pass edge stream abstraction.
//!
//! Streaming algorithms receive a `&dyn EdgeStream` (or a generic
//! `&S: EdgeStream`) and may iterate it any number of times; each call to
//! [`EdgeStream::pass`] is one pass over the stream in a fixed order.
//! Algorithms are *not* allowed to look at `n` or `m` unless the model they
//! implement assumes those are known — both are available on the trait
//! because the paper (like most of the streaming triangle literature)
//! assumes `m` is known up to constants and `n` is known for the `log n`
//! factors; the pass/space accounting is unaffected either way.

use degentri_graph::{CsrGraph, Edge};

use crate::ordering::StreamOrder;

/// A replayable, fixed-order stream of undirected edges.
pub trait EdgeStream {
    /// Number of vertices `n` (vertex ids are `< n`).
    fn num_vertices(&self) -> usize;

    /// Number of edges `m` in one pass of the stream.
    fn num_edges(&self) -> usize;

    /// Starts a new pass over the stream. Every pass yields the same edges
    /// in the same order.
    fn pass(&self) -> Box<dyn Iterator<Item = Edge> + '_>;
}

/// An in-memory edge stream with a fixed ordering.
///
/// This is the "simulated" substrate: the paper's algorithms never exploit
/// the fact that the edges are resident in memory — they only use
/// [`EdgeStream::pass`] — so pass counts and retained-state space are
/// measured exactly as they would be over an external stream.
#[derive(Debug, Clone)]
pub struct MemoryStream {
    edges: Vec<Edge>,
    num_vertices: usize,
}

impl MemoryStream {
    /// Creates a stream over the edges of `g` in the given order.
    pub fn from_graph(g: &CsrGraph, order: StreamOrder) -> Self {
        let mut edges = g.edges().to_vec();
        order.apply(&mut edges);
        MemoryStream {
            edges,
            num_vertices: g.num_vertices(),
        }
    }

    /// Creates a stream from an explicit edge list (already deduplicated;
    /// the stream model assumes unrepeated edges).
    pub fn from_edges(num_vertices: usize, mut edges: Vec<Edge>, order: StreamOrder) -> Self {
        order.apply(&mut edges);
        MemoryStream {
            edges,
            num_vertices,
        }
    }

    /// The edges in stream order (used by tests).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }
}

impl EdgeStream for MemoryStream {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn pass(&self) -> Box<dyn Iterator<Item = Edge> + '_> {
        Box::new(self.edges.iter().copied())
    }
}

impl<S: EdgeStream + ?Sized> EdgeStream for &S {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    fn pass(&self) -> Box<dyn Iterator<Item = Edge> + '_> {
        (**self).pass()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::CsrGraph;

    fn graph() -> CsrGraph {
        CsrGraph::from_raw_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
    }

    #[test]
    fn stream_reports_sizes() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        assert_eq!(s.num_vertices(), 5);
        assert_eq!(s.num_edges(), 6);
    }

    #[test]
    fn passes_are_identical() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(3));
        let p1: Vec<Edge> = s.pass().collect();
        let p2: Vec<Edge> = s.pass().collect();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 6);
    }

    #[test]
    fn ordering_changes_sequence_not_content() {
        let g = graph();
        let a = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        let b = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(9));
        let mut ea: Vec<Edge> = a.pass().collect();
        let mut eb: Vec<Edge> = b.pass().collect();
        assert_ne!(ea, eb);
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb);
    }

    #[test]
    fn from_edges_constructor() {
        let edges = vec![Edge::from_raw(0, 1), Edge::from_raw(2, 3)];
        let s = MemoryStream::from_edges(4, edges.clone(), StreamOrder::AsGiven);
        assert_eq!(s.edges(), edges.as_slice());
        assert_eq!(s.num_edges(), 2);
    }

    #[test]
    fn reference_impl_delegates() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        let r: &MemoryStream = &s;
        assert_eq!(EdgeStream::num_edges(&r), 6);
        assert_eq!(r.pass().count(), 6);
    }
}
