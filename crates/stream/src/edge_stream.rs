//! The multi-pass edge stream abstraction.
//!
//! Streaming algorithms receive a `&dyn EdgeStream` (or a generic
//! `&S: EdgeStream`) and may iterate it any number of times; each call to
//! [`EdgeStream::pass`] is one pass over the stream in a fixed order.
//! Algorithms are *not* allowed to look at `n` or `m` unless the model they
//! implement assumes those are known — both are available on the trait
//! because the paper (like most of the streaming triangle literature)
//! assumes `m` is known up to constants and `n` is known for the `log n`
//! factors; the pass/space accounting is unaffected either way.

use degentri_graph::{CsrGraph, Edge};

use crate::ordering::StreamOrder;

/// Default number of edges delivered per chunk by
/// [`EdgeStream::pass_batched`]. Large enough to amortize per-chunk
/// dispatch, small enough to stay cache-resident.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// A replayable, fixed-order stream of undirected edges.
pub trait EdgeStream {
    /// Number of vertices `n` (vertex ids are `< n`).
    fn num_vertices(&self) -> usize;

    /// Number of edges `m` in one pass of the stream.
    fn num_edges(&self) -> usize;

    /// Starts a new pass over the stream. Every pass yields the same edges
    /// in the same order.
    fn pass(&self) -> Box<dyn Iterator<Item = Edge> + '_>;

    /// Makes one pass over the stream in chunks of up to `batch_size`
    /// edges, calling `visit` once per chunk.
    ///
    /// This is one pass — the same edges in the same order as [`pass`] —
    /// but with batched delivery, so hot loops pay the per-pass virtual
    /// dispatch once per chunk instead of once per edge. The default
    /// implementation buffers the boxed [`pass`] iterator; in-memory
    /// streams override it to hand out zero-copy slices of their backing
    /// storage.
    ///
    /// [`pass`]: EdgeStream::pass
    fn pass_batched(&self, batch_size: usize, visit: &mut dyn FnMut(&[Edge])) {
        let batch = batch_size.max(1);
        // One buffer for the whole pass, sized by what a chunk can actually
        // hold: a batch size far beyond the stream length must not reserve
        // memory the pass can never fill.
        let mut buf: Vec<Edge> = Vec::with_capacity(batch.min(self.num_edges().max(1)));
        for e in self.pass() {
            buf.push(e);
            if buf.len() == batch {
                visit(&buf);
                buf.clear();
            }
        }
        if !buf.is_empty() {
            visit(&buf);
        }
    }

    /// The stream's backing edge slice in stream order, when it has one.
    ///
    /// In-memory snapshots return their storage so schedulers can build
    /// zero-copy [`ShardedStream`](crate::ShardedStream) views over it;
    /// streams that meter access (like
    /// [`PassCounter`](crate::PassCounter)) or generate edges lazily return
    /// `None`, and callers must fall back to the pass APIs.
    fn as_edge_slice(&self) -> Option<&[Edge]> {
        None
    }
}

/// An in-memory edge stream with a fixed ordering.
///
/// This is the "simulated" substrate: the paper's algorithms never exploit
/// the fact that the edges are resident in memory — they only use
/// [`EdgeStream::pass`] — so pass counts and retained-state space are
/// measured exactly as they would be over an external stream.
#[derive(Debug, Clone)]
pub struct MemoryStream {
    edges: Vec<Edge>,
    num_vertices: usize,
}

impl MemoryStream {
    /// Creates a stream over the edges of `g` in the given order.
    pub fn from_graph(g: &CsrGraph, order: StreamOrder) -> Self {
        let mut edges = g.edges().to_vec();
        order.apply(&mut edges);
        MemoryStream {
            edges,
            num_vertices: g.num_vertices(),
        }
    }

    /// Creates a stream from an explicit edge list (already deduplicated;
    /// the stream model assumes unrepeated edges).
    pub fn from_edges(num_vertices: usize, mut edges: Vec<Edge>, order: StreamOrder) -> Self {
        order.apply(&mut edges);
        MemoryStream {
            edges,
            num_vertices,
        }
    }

    /// The edges in stream order (used by tests).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }
}

impl EdgeStream for MemoryStream {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn pass(&self) -> Box<dyn Iterator<Item = Edge> + '_> {
        Box::new(self.edges.iter().copied())
    }

    fn pass_batched(&self, batch_size: usize, visit: &mut dyn FnMut(&[Edge])) {
        // Zero-copy: chunks borrow the stream's own edge storage.
        for chunk in self.edges.chunks(batch_size.max(1)) {
            visit(chunk);
        }
    }

    fn as_edge_slice(&self) -> Option<&[Edge]> {
        Some(&self.edges)
    }
}

impl<S: EdgeStream + ?Sized> EdgeStream for &S {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    fn pass(&self) -> Box<dyn Iterator<Item = Edge> + '_> {
        (**self).pass()
    }

    fn pass_batched(&self, batch_size: usize, visit: &mut dyn FnMut(&[Edge])) {
        (**self).pass_batched(batch_size, visit)
    }

    fn as_edge_slice(&self) -> Option<&[Edge]> {
        (**self).as_edge_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::CsrGraph;

    fn graph() -> CsrGraph {
        CsrGraph::from_raw_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
    }

    #[test]
    fn stream_reports_sizes() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        assert_eq!(s.num_vertices(), 5);
        assert_eq!(s.num_edges(), 6);
    }

    #[test]
    fn passes_are_identical() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(3));
        let p1: Vec<Edge> = s.pass().collect();
        let p2: Vec<Edge> = s.pass().collect();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 6);
    }

    #[test]
    fn ordering_changes_sequence_not_content() {
        let g = graph();
        let a = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        let b = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(9));
        let mut ea: Vec<Edge> = a.pass().collect();
        let mut eb: Vec<Edge> = b.pass().collect();
        assert_ne!(ea, eb);
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb);
    }

    #[test]
    fn from_edges_constructor() {
        let edges = vec![Edge::from_raw(0, 1), Edge::from_raw(2, 3)];
        let s = MemoryStream::from_edges(4, edges.clone(), StreamOrder::AsGiven);
        assert_eq!(s.edges(), edges.as_slice());
        assert_eq!(s.num_edges(), 2);
    }

    #[test]
    fn reference_impl_delegates() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        let r: &MemoryStream = &s;
        assert_eq!(EdgeStream::num_edges(&r), 6);
        assert_eq!(r.pass().count(), 6);
    }

    /// A stream without a specialized batched pass, to exercise the default
    /// buffering implementation.
    struct UnbatchedStream(MemoryStream);

    impl EdgeStream for UnbatchedStream {
        fn num_vertices(&self) -> usize {
            self.0.num_vertices()
        }

        fn num_edges(&self) -> usize {
            self.0.num_edges()
        }

        fn pass(&self) -> Box<dyn Iterator<Item = Edge> + '_> {
            self.0.pass()
        }
    }

    #[test]
    fn batched_pass_yields_same_edges_in_order() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(5));
        let sequential: Vec<Edge> = s.pass().collect();
        for batch_size in [1, 2, 4, 5, 6, 7, 100] {
            let mut batched: Vec<Edge> = Vec::new();
            let mut chunks = 0usize;
            s.pass_batched(batch_size, &mut |chunk| {
                assert!(!chunk.is_empty() && chunk.len() <= batch_size);
                batched.extend_from_slice(chunk);
                chunks += 1;
            });
            assert_eq!(batched, sequential, "batch_size {batch_size}");
            assert_eq!(chunks, sequential.len().div_ceil(batch_size));
        }
    }

    #[test]
    fn default_batched_pass_matches_specialized_one() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(2));
        let fallback = UnbatchedStream(s.clone());
        for batch_size in [1, 4, 100] {
            let mut a: Vec<Edge> = Vec::new();
            s.pass_batched(batch_size, &mut |c| a.extend_from_slice(c));
            let mut b: Vec<Edge> = Vec::new();
            fallback.pass_batched(batch_size, &mut |c| b.extend_from_slice(c));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn edge_slice_is_exposed_by_memory_streams_only() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        assert_eq!(s.as_edge_slice().unwrap(), s.edges());
        let r: &MemoryStream = &s;
        assert!(EdgeStream::as_edge_slice(&r).is_some());
        // The default is None: a lazily generated stream has no slice.
        assert!(UnbatchedStream(s.clone()).as_edge_slice().is_none());
    }

    #[test]
    fn oversized_batch_delivers_one_chunk_without_overallocating() {
        let g = graph();
        let fallback = UnbatchedStream(MemoryStream::from_graph(&g, StreamOrder::AsGiven));
        let mut chunks = 0usize;
        let mut edges = 0usize;
        fallback.pass_batched(usize::MAX, &mut |chunk| {
            chunks += 1;
            edges += chunk.len();
        });
        assert_eq!(chunks, 1);
        assert_eq!(edges, 6);
    }

    #[test]
    fn batched_pass_size_zero_is_treated_as_one() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        let mut count = 0usize;
        s.pass_batched(0, &mut |chunk| {
            assert_eq!(chunk.len(), 1);
            count += 1;
        });
        assert_eq!(count, 6);
    }
}
