//! Fast hashing utilities shared by the streaming algorithms.
//!
//! The hot inner loops (assignment memo tables, sampled-neighborhood sets,
//! wedge tables of the baselines) are all hash-table lookups keyed by small
//! integers or integer pairs; per the workspace performance guidance we use
//! the Fx hash family ([`rustc_hash`]) everywhere. This module re-exports
//! the type aliases and adds a couple of deterministic mixing helpers used
//! for hash-based coin flips.

pub use rustc_hash::{FxHashMap, FxHashSet};

use degentri_graph::{Edge, VertexId};

/// A fast, deterministic 64-bit mix of an edge and a salt, used where an
/// algorithm needs a *consistent* pseudo-random value per edge (e.g.
/// hash-based subsampling in the baselines) without storing per-edge state.
#[inline]
pub fn edge_hash(e: Edge, salt: u64) -> u64 {
    splitmix64(e.key() ^ salt.rotate_left(17))
}

/// A fast, deterministic 64-bit mix of a vertex and a salt.
#[inline]
pub fn vertex_hash(v: VertexId, salt: u64) -> u64 {
    splitmix64(v.raw() as u64 ^ salt.rotate_left(31))
}

/// Converts a 64-bit hash into a uniform `f64` in `[0, 1)`.
#[inline]
pub fn hash_to_unit(h: u64) -> f64 {
    // 53 high bits -> uniform double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// SplitMix64 finalizer: a well-mixed bijection on `u64`.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Low bits of consecutive inputs should differ (avalanche sanity).
        let a = splitmix64(100) & 0xFFFF;
        let b = splitmix64(101) & 0xFFFF;
        assert_ne!(a, b);
    }

    #[test]
    fn edge_hash_is_order_invariant_and_salt_sensitive() {
        let e1 = Edge::from_raw(3, 9);
        let e2 = Edge::from_raw(9, 3);
        assert_eq!(edge_hash(e1, 7), edge_hash(e2, 7));
        assert_ne!(edge_hash(e1, 7), edge_hash(e1, 8));
    }

    #[test]
    fn hash_to_unit_is_in_range_and_roughly_uniform() {
        let mut sum = 0.0;
        let n = 10_000u64;
        for i in 0..n {
            let u = hash_to_unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn vertex_hash_differs_across_vertices() {
        assert_ne!(
            vertex_hash(VertexId::new(1), 0),
            vertex_hash(VertexId::new(2), 0)
        );
    }

    #[test]
    fn fx_aliases_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
        let mut s: FxHashSet<Edge> = FxHashSet::default();
        s.insert(Edge::from_raw(0, 1));
        assert!(s.contains(&Edge::from_raw(1, 0)));
    }
}
