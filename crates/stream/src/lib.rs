//! # degentri-stream — streaming substrate
//!
//! The multi-pass, arbitrary-order streaming model of the paper, made
//! concrete:
//!
//! * [`EdgeStream`] — a replayable stream of undirected edges. The concrete
//!   [`MemoryStream`] keeps the edges in memory (we are simulating the model,
//!   not short of RAM), but algorithms only access them through the trait,
//!   one pass at a time.
//! * [`StreamOrder`] — arbitrary-order semantics: as-given, uniformly
//!   permuted, sorted, or adversarially interleaved orderings.
//! * [`PassCounter`] — wraps a stream and counts how many passes an
//!   algorithm actually made, so the "constant pass" claims are checkable.
//! * [`SpaceMeter`] / [`SpaceReport`] — machine-word accounting of the state
//!   an algorithm retains between stream items; every estimator in the
//!   workspace charges its samples, counters and memo tables here, which is
//!   what the space-versus-`mκ/T` experiments measure.
//! * [`ReservoirSampler`] / [`WeightedReservoirSampler`] — uniform and
//!   weight-proportional (A-Chao) reservoir sampling, the two sampling
//!   primitives of Algorithms 1 and 2.
//! * [`StreamStats`] — single-pass computation of `n`, `m` and the degree
//!   vector (the substrate for the Section 4 degree oracle).
//! * [`DynamicEdgeStream`] / [`DynamicMemoryStream`] — insert/delete
//!   (turnstile) edge streams and workload constructors, the substrate for
//!   the dynamic-stream estimators of `degentri-dynamic`.
//! * [`snapshot`] — the unified snapshot layer: [`StreamSnapshot`] exposes
//!   any in-memory snapshot (edges *or* updates) as one zero-copy slice,
//!   [`Partition`]/[`ShardedSnapshot`] provide the shared contiguous,
//!   order-preserving sharding substrate, and [`ShardedStream`] /
//!   [`ShardedDynamicStream`] are its insert-only and turnstile faces —
//!   both with per-shard folds that merge bit-identically at any shard or
//!   worker count.

// One audited exception: `pool::QueueScope::run_shards` widens the
// lifetime of its shard closures to route them through the shared work
// queue (the classic scoped-pool pattern); it blocks until every shard
// has completed, so no borrow escapes. Everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod edge_stream;
pub mod hashing;
pub mod ordering;
pub mod passes;
pub mod pool;
pub mod reservoir;
pub mod sharded;
pub mod snapshot;
pub mod space;
pub mod stats;
pub mod weighted_reservoir;

pub use dynamic::{DynamicEdgeStream, DynamicMemoryStream, EdgeUpdate, UpdateKind};
pub use edge_stream::{EdgeStream, MemoryStream, DEFAULT_BATCH_SIZE};
pub use ordering::StreamOrder;
pub use passes::PassCounter;
pub use pool::{
    run_indexed_pool, run_indexed_pool_caught, run_queued, QueueScope, QueuedJob, TaskResult,
    WorkQueue,
};
pub use reservoir::ReservoirSampler;
pub use sharded::ShardedStream;
pub use snapshot::{Partition, ShardedDynamicStream, ShardedSnapshot, Snapshot, StreamSnapshot};
pub use space::{SpaceMeter, SpaceReport};
pub use stats::StreamStats;
pub use weighted_reservoir::{WeightedReservoirSampler, WeightedSamplerBank};
