//! Stream orderings.
//!
//! The paper's algorithms work for *arbitrary order* streams; the lower
//! bound and several prior algorithms are sensitive to adversarial
//! orderings. [`StreamOrder`] captures the orderings the experiments
//! exercise. Orderings are applied once, when a [`MemoryStream`]
//! (`crate::MemoryStream`) is constructed, so that every pass of a given
//! stream presents the edges in the same order — exactly the model of the
//! paper.

use degentri_graph::Edge;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How the edges of a stream are ordered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StreamOrder {
    /// The order the edges were handed to the stream constructor
    /// (for generator output this is sorted-normalized order).
    #[default]
    AsGiven,
    /// A uniformly random permutation drawn from the given seed.
    UniformRandom(u64),
    /// Sorted by `(u, v)` — clusters all edges of low-id vertices together,
    /// an adversarial pattern for algorithms that implicitly assume
    /// random order.
    SortedLexicographic,
    /// Reverse sorted order.
    ReverseSorted,
    /// Deterministic adversarial interleaving: edges are split into `k`
    /// contiguous chunks of the sorted order and emitted round-robin,
    /// scattering each vertex's edges across the whole stream.
    Interleaved {
        /// Number of chunks to interleave.
        chunks: usize,
    },
}

impl StreamOrder {
    /// Applies the ordering to a list of edges.
    pub fn apply(&self, edges: &mut Vec<Edge>) {
        match *self {
            StreamOrder::AsGiven => {}
            StreamOrder::UniformRandom(seed) => {
                let mut rng = StdRng::seed_from_u64(seed);
                edges.shuffle(&mut rng);
            }
            StreamOrder::SortedLexicographic => edges.sort_unstable(),
            StreamOrder::ReverseSorted => {
                edges.sort_unstable();
                edges.reverse();
            }
            StreamOrder::Interleaved { chunks } => {
                let chunks = chunks.max(1);
                edges.sort_unstable();
                let source = edges.clone();
                let chunk_len = source.len().div_ceil(chunks);
                let mut out = Vec::with_capacity(source.len());
                for offset in 0..chunk_len {
                    for c in 0..chunks {
                        let idx = c * chunk_len + offset;
                        if idx < source.len() {
                            out.push(source[idx]);
                        }
                    }
                }
                *edges = out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Vec<Edge> {
        (0u32..10).map(|i| Edge::from_raw(i, i + 1)).collect()
    }

    fn is_permutation(a: &[Edge], b: &[Edge]) -> bool {
        let mut x = a.to_vec();
        let mut y = b.to_vec();
        x.sort_unstable();
        y.sort_unstable();
        x == y
    }

    #[test]
    fn as_given_is_identity() {
        let original = edges();
        let mut e = edges();
        StreamOrder::AsGiven.apply(&mut e);
        assert_eq!(e, original);
    }

    #[test]
    fn random_is_a_deterministic_permutation() {
        let original = edges();
        let mut a = edges();
        let mut b = edges();
        StreamOrder::UniformRandom(7).apply(&mut a);
        StreamOrder::UniformRandom(7).apply(&mut b);
        assert_eq!(a, b);
        assert!(is_permutation(&a, &original));
        let mut c = edges();
        StreamOrder::UniformRandom(8).apply(&mut c);
        assert!(is_permutation(&c, &original));
        assert_ne!(a, c);
    }

    #[test]
    fn sorted_and_reverse() {
        let mut a = edges();
        StreamOrder::UniformRandom(3).apply(&mut a);
        let mut sorted = a.clone();
        StreamOrder::SortedLexicographic.apply(&mut sorted);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut rev = a.clone();
        StreamOrder::ReverseSorted.apply(&mut rev);
        assert!(rev.windows(2).all(|w| w[0] >= w[1]));
        assert!(is_permutation(&sorted, &a));
    }

    #[test]
    fn interleaved_is_a_permutation() {
        let original = edges();
        for chunks in [1usize, 2, 3, 7, 100] {
            let mut e = edges();
            StreamOrder::Interleaved { chunks }.apply(&mut e);
            assert!(is_permutation(&e, &original), "chunks = {chunks}");
        }
    }

    #[test]
    fn interleaved_scatters_adjacent_edges() {
        let mut e = edges();
        StreamOrder::Interleaved { chunks: 2 }.apply(&mut e);
        // First two elements come from different halves of the sorted order.
        assert_eq!(e[0], Edge::from_raw(0, 1));
        assert_eq!(e[1], Edge::from_raw(5, 6));
    }

    #[test]
    fn default_is_as_given() {
        assert_eq!(StreamOrder::default(), StreamOrder::AsGiven);
    }
}
