//! Pass counting.
//!
//! The paper's headline claim is "constant number of passes" (six for the
//! main algorithm, three for the warm-up). [`PassCounter`] wraps any
//! [`EdgeStream`] and counts how many passes the algorithm under test
//! actually started, so every experiment and integration test can assert the
//! pass budget instead of trusting the implementation.

use std::cell::Cell;

use degentri_graph::Edge;

use crate::edge_stream::EdgeStream;

/// An [`EdgeStream`] adapter that counts started passes.
#[derive(Debug)]
pub struct PassCounter<S> {
    inner: S,
    passes: Cell<u32>,
    limit: Option<u32>,
}

impl<S: EdgeStream> PassCounter<S> {
    /// Wraps a stream with an unlimited pass budget.
    pub fn new(inner: S) -> Self {
        PassCounter {
            inner,
            passes: Cell::new(0),
            limit: None,
        }
    }

    /// Wraps a stream and panics if more than `limit` passes are started.
    /// Used in tests to enforce the constant-pass guarantee.
    pub fn with_limit(inner: S, limit: u32) -> Self {
        PassCounter {
            inner,
            passes: Cell::new(0),
            limit: Some(limit),
        }
    }

    /// Number of passes started so far.
    pub fn passes(&self) -> u32 {
        self.passes.get()
    }

    /// Returns the wrapped stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// A reference to the wrapped stream (does not count as a pass).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn note_pass(&self) {
        let next = self.passes.get() + 1;
        if let Some(limit) = self.limit {
            assert!(
                next <= limit,
                "pass budget exceeded: attempted pass {next} with a limit of {limit}"
            );
        }
        self.passes.set(next);
    }
}

impl<S: EdgeStream> EdgeStream for PassCounter<S> {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.inner.num_edges()
    }

    fn pass(&self) -> Box<dyn Iterator<Item = Edge> + '_> {
        self.note_pass();
        self.inner.pass()
    }

    fn pass_batched(&self, batch_size: usize, visit: &mut dyn FnMut(&[Edge])) {
        // Forward (rather than use the default impl) so the wrapped
        // stream's zero-copy batching is preserved; a batched pass is still
        // exactly one pass.
        self.note_pass();
        self.inner.pass_batched(batch_size, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_stream::MemoryStream;
    use crate::ordering::StreamOrder;
    use degentri_graph::CsrGraph;

    fn stream() -> MemoryStream {
        let g = CsrGraph::from_raw_edges(4, [(0, 1), (1, 2), (2, 3)]);
        MemoryStream::from_graph(&g, StreamOrder::AsGiven)
    }

    #[test]
    fn counts_passes() {
        let s = PassCounter::new(stream());
        assert_eq!(s.passes(), 0);
        let _ = s.pass().count();
        let _ = s.pass().count();
        assert_eq!(s.passes(), 2);
        assert_eq!(s.num_edges(), 3);
        assert_eq!(s.num_vertices(), 4);
    }

    #[test]
    fn limit_allows_up_to_budget() {
        let s = PassCounter::with_limit(stream(), 3);
        for _ in 0..3 {
            let _ = s.pass().count();
        }
        assert_eq!(s.passes(), 3);
    }

    #[test]
    #[should_panic(expected = "pass budget exceeded")]
    fn limit_panics_beyond_budget() {
        let s = PassCounter::with_limit(stream(), 2);
        for _ in 0..3 {
            let _ = s.pass().count();
        }
    }

    #[test]
    fn batched_passes_are_counted_and_budgeted() {
        let s = PassCounter::with_limit(stream(), 2);
        let mut edges = 0usize;
        s.pass_batched(2, &mut |chunk| edges += chunk.len());
        assert_eq!(edges, 3);
        assert_eq!(s.passes(), 1);
        let _ = s.pass().count();
        assert_eq!(s.passes(), 2);
    }

    #[test]
    #[should_panic(expected = "pass budget exceeded")]
    fn batched_pass_beyond_budget_panics() {
        let s = PassCounter::with_limit(stream(), 1);
        s.pass_batched(8, &mut |_| {});
        s.pass_batched(8, &mut |_| {});
    }

    #[test]
    fn inner_access_does_not_count() {
        let s = PassCounter::new(stream());
        assert_eq!(s.inner().num_edges(), 3);
        assert_eq!(s.passes(), 0);
        let inner = s.into_inner();
        assert_eq!(inner.num_edges(), 3);
    }
}
