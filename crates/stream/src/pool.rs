//! A minimal scoped worker pool for indexed tasks.
//!
//! One implementation of the "claim indices from an atomic counter on
//! scoped threads, return outputs in index order" pattern, shared by
//! [`ShardedStream::pass_sharded`](crate::ShardedStream::pass_sharded) and
//! the engine's task scheduler — the concurrency subtleties (clamping,
//! claim loop, order-preserving results) live in exactly one place.
//!
//! ## Panic containment
//!
//! Every task runs under [`std::panic::catch_unwind`], so a panicking task
//! never kills the worker thread that claimed it: the worker discards its
//! (possibly torn) per-worker state, rebuilds it with `init`, and keeps
//! claiming remaining tasks. Results travel back through worker-local
//! vectors handed over at join time — there are no shared `Mutex` result
//! slots, so a second panic can never observe a poisoned lock and escalate
//! into a double-panic abort.
//!
//! [`run_indexed_pool_caught`] exposes the per-task outcomes
//! (`Ok(output)` or `Err(panic payload)`); [`run_indexed_pool`] keeps the
//! historical contract of resuming the first panic on the calling thread,
//! but only after every other task has completed.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Outcome of one pooled task: the task's output, or the payload of the
/// panic it unwound with.
pub type TaskResult<T> = std::thread::Result<T>;

/// Executes `count` indexed tasks on up to `workers` scoped threads and
/// returns each task's outcome in task order, catching per-task panics.
///
/// Workers claim tasks from a shared atomic counter (dynamic load
/// balancing: uneven task costs do not idle workers until the tail), and
/// each worker threads its own mutable state (from `init`) through every
/// task it executes, so per-worker scratch is allocated once per worker
/// rather than once per task. A task that panics yields `Err(payload)` in
/// its slot; the claiming worker drops its state (it may have been
/// mid-mutation when the unwind started), re-`init`s before the next
/// task, and continues. Worker threads therefore never die early: every
/// task index is claimed and executed exactly once regardless of how many
/// tasks panic.
///
/// With one worker (or at most one task) everything runs inline on the
/// calling thread, with the same per-task catching.
pub fn run_indexed_pool_caught<W, T, I, F>(
    workers: usize,
    count: usize,
    init: I,
    task: F,
) -> Vec<TaskResult<T>>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    // `AssertUnwindSafe` is sound here because the only state the closure
    // mutates across the unwind boundary is the worker-local `W`, which is
    // discarded and rebuilt whenever a panic is caught.
    let run_one = |state: &mut Option<W>, i: usize| -> TaskResult<T> {
        let w = state.get_or_insert_with(&init);
        let result = catch_unwind(AssertUnwindSafe(|| task(w, i)));
        if result.is_err() {
            *state = None;
        }
        result
    };
    if workers <= 1 || count <= 1 {
        let mut state = None;
        return (0..count).map(|i| run_one(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<TaskResult<T>>> = Vec::with_capacity(count);
    results.resize_with(count, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = None;
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i, run_one(&mut state, i)));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            let mine = handle.join().expect("pool worker catches every task panic");
            for (i, result) in mine {
                results[i] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every task index was claimed and completed"))
        .collect()
}

/// Executes `count` indexed tasks on up to `workers` scoped threads and
/// returns the outputs in task order.
///
/// See [`run_indexed_pool_caught`] for the claiming and worker-state
/// contract. If any task panics, the panic is resumed on the calling
/// thread — but only after every task has run, so one bad task cannot
/// abandon its batchmates mid-flight, and the resumed unwind never races
/// a second panic into an abort.
pub fn run_indexed_pool<W, T, I, F>(workers: usize, count: usize, init: I, task: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    let mut results = run_indexed_pool_caught(workers, count, init, task);
    if let Some(pos) = results.iter().position(|r| r.is_err()) {
        match results.swap_remove(pos) {
            Err(payload) => resume_unwind(payload),
            Ok(_) => unreachable!("position() found an Err"),
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("checked above: no task panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_in_task_order() {
        for workers in [1, 2, 4, 9] {
            let out = run_indexed_pool(workers, 50, || (), |(), i| i * 3);
            assert_eq!(out, (0..50).map(|i| i * 3).collect::<Vec<_>>());
        }
        assert!(run_indexed_pool(4, 0, || (), |(), i| i).is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed_pool(
            3,
            41,
            || (),
            |(), i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out.len(), 41);
        assert_eq!(counter.load(Ordering::Relaxed), 41);
    }

    #[test]
    fn worker_state_is_reused_across_tasks() {
        // Single worker: one state instance sees every task in order.
        let out = run_indexed_pool(
            1,
            4,
            || 0usize,
            |state, i| {
                *state += 1;
                (*state, i)
            },
        );
        assert_eq!(out, vec![(1, 0), (2, 1), (3, 2), (4, 3)]);
    }

    #[test]
    fn panicking_task_is_contained_and_batchmates_complete() {
        for workers in [1, 2, 4] {
            let executed = AtomicUsize::new(0);
            let results = run_indexed_pool_caught(
                workers,
                20,
                || (),
                |(), i| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    if i == 7 {
                        panic!("task 7 goes down");
                    }
                    i * 2
                },
            );
            // Every task was claimed and executed despite the panic: no
            // worker thread died holding unclaimed indices.
            assert_eq!(executed.load(Ordering::Relaxed), 20);
            assert_eq!(results.len(), 20);
            for (i, r) in results.iter().enumerate() {
                if i == 7 {
                    let payload = r.as_ref().unwrap_err();
                    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
                    assert!(msg.contains("task 7"), "unexpected payload: {msg:?}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2);
                }
            }
        }
    }

    #[test]
    fn worker_state_is_rebuilt_after_a_caught_panic() {
        // One worker, tasks 0..4, task 1 panics mid-mutation: the state it
        // tore is discarded, so task 2 sees a fresh `init` value instead of
        // a half-updated one.
        let results = run_indexed_pool_caught(
            1,
            4,
            || 0usize,
            |state, i| {
                *state += 100;
                if i == 1 {
                    panic!("tear the state");
                }
                (*state, i)
            },
        );
        assert_eq!(*results[0].as_ref().unwrap(), (100, 0));
        assert!(results[1].is_err());
        assert_eq!(*results[2].as_ref().unwrap(), (100, 2));
        // Task 3 reuses the state rebuilt for task 2 (no panic in between).
        assert_eq!(*results[3].as_ref().unwrap(), (200, 3));
    }

    #[test]
    fn uncaught_variant_resumes_the_panic_after_all_tasks_ran() {
        let executed = AtomicUsize::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_indexed_pool(
                2,
                10,
                || (),
                |(), i| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    if i == 3 {
                        panic!("boom");
                    }
                    i
                },
            )
        }));
        assert!(outcome.is_err());
        assert_eq!(executed.load(Ordering::Relaxed), 10);
    }
}
