//! A minimal scoped worker pool for indexed tasks.
//!
//! One implementation of the "claim indices from an atomic counter on
//! scoped threads, return outputs in index order" pattern, shared by
//! [`ShardedStream::pass_sharded`](crate::ShardedStream::pass_sharded) and
//! the engine's task scheduler — the concurrency subtleties (clamping,
//! claim loop, order-preserving result slots) live in exactly one place.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Executes `count` indexed tasks on up to `workers` scoped threads and
/// returns the outputs in task order. Workers claim tasks from a shared
/// atomic counter (dynamic load balancing: uneven task costs do not idle
/// workers until the tail), and each worker threads its own mutable state
/// (from `init`) through every task it executes, so per-worker scratch is
/// allocated once per worker rather than once per task.
///
/// With one worker (or at most one task) everything runs inline on the
/// calling thread.
pub fn run_indexed_pool<W, T, I, F>(workers: usize, count: usize, init: I, task: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    if workers <= 1 || count <= 1 {
        let mut state = init();
        return (0..count).map(|i| task(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let output = task(&mut state, i);
                    *slots[i].lock().expect("result slot poisoned") = Some(output);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_in_task_order() {
        for workers in [1, 2, 4, 9] {
            let out = run_indexed_pool(workers, 50, || (), |(), i| i * 3);
            assert_eq!(out, (0..50).map(|i| i * 3).collect::<Vec<_>>());
        }
        assert!(run_indexed_pool(4, 0, || (), |(), i| i).is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed_pool(
            3,
            41,
            || (),
            |(), i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out.len(), 41);
        assert_eq!(counter.load(Ordering::Relaxed), 41);
    }

    #[test]
    fn worker_state_is_reused_across_tasks() {
        // Single worker: one state instance sees every task in order.
        let out = run_indexed_pool(
            1,
            4,
            || 0usize,
            |state, i| {
                *state += 1;
                (*state, i)
            },
        );
        assert_eq!(out, vec![(1, 0), (2, 1), (3, 2), (4, 3)]);
    }
}
