//! A minimal scoped worker pool for indexed tasks.
//!
//! One implementation of the "claim indices from an atomic counter on
//! scoped threads, return outputs in index order" pattern, shared by
//! [`ShardedStream::pass_sharded`](crate::ShardedStream::pass_sharded) and
//! the engine's task scheduler — the concurrency subtleties (clamping,
//! claim loop, order-preserving results) live in exactly one place.
//!
//! ## Panic containment
//!
//! Every task runs under [`std::panic::catch_unwind`], so a panicking task
//! never kills the worker thread that claimed it: the worker discards its
//! (possibly torn) per-worker state, rebuilds it with `init`, and keeps
//! claiming remaining tasks. Results travel back through worker-local
//! vectors handed over at join time — there are no shared `Mutex` result
//! slots, so a second panic can never observe a poisoned lock and escalate
//! into a double-panic abort.
//!
//! [`run_indexed_pool_caught`] exposes the per-task outcomes
//! (`Ok(output)` or `Err(panic payload)`); [`run_indexed_pool`] keeps the
//! historical contract of resuming the first panic on the calling thread,
//! but only after every other task has completed.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Outcome of one pooled task: the task's output, or the payload of the
/// panic it unwound with.
pub type TaskResult<T> = std::thread::Result<T>;

/// One shard's result slot: its caught outcome plus busy nanoseconds,
/// filled exactly once by the worker that claims the shard.
type ShardSlot<T> = Mutex<Option<(TaskResult<T>, u64)>>;

/// Executes `count` indexed tasks on up to `workers` scoped threads and
/// returns each task's outcome in task order, catching per-task panics.
///
/// Workers claim tasks from a shared atomic counter (dynamic load
/// balancing: uneven task costs do not idle workers until the tail), and
/// each worker threads its own mutable state (from `init`) through every
/// task it executes, so per-worker scratch is allocated once per worker
/// rather than once per task. A task that panics yields `Err(payload)` in
/// its slot; the claiming worker drops its state (it may have been
/// mid-mutation when the unwind started), re-`init`s before the next
/// task, and continues. Worker threads therefore never die early: every
/// task index is claimed and executed exactly once regardless of how many
/// tasks panic.
///
/// With one worker (or at most one task) everything runs inline on the
/// calling thread, with the same per-task catching.
pub fn run_indexed_pool_caught<W, T, I, F>(
    workers: usize,
    count: usize,
    init: I,
    task: F,
) -> Vec<TaskResult<T>>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    // `AssertUnwindSafe` is sound here because the only state the closure
    // mutates across the unwind boundary is the worker-local `W`, which is
    // discarded and rebuilt whenever a panic is caught.
    let run_one = |state: &mut Option<W>, i: usize| -> TaskResult<T> {
        let w = state.get_or_insert_with(&init);
        let result = catch_unwind(AssertUnwindSafe(|| task(w, i)));
        if result.is_err() {
            *state = None;
        }
        result
    };
    if workers <= 1 || count <= 1 {
        let mut state = None;
        return (0..count).map(|i| run_one(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<TaskResult<T>>> = Vec::with_capacity(count);
    results.resize_with(count, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = None;
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i, run_one(&mut state, i)));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            let mine = handle.join().expect("pool worker catches every task panic");
            for (i, result) in mine {
                results[i] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every task index was claimed and completed"))
        .collect()
}

/// Executes `count` indexed tasks on up to `workers` scoped threads and
/// returns the outputs in task order.
///
/// See [`run_indexed_pool_caught`] for the claiming and worker-state
/// contract. If any task panics, the panic is resumed on the calling
/// thread — but only after every task has run, so one bad task cannot
/// abandon its batchmates mid-flight, and the resumed unwind never races
/// a second panic into an abort.
pub fn run_indexed_pool<W, T, I, F>(workers: usize, count: usize, init: I, task: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    let mut results = run_indexed_pool_caught(workers, count, init, task);
    if let Some(pos) = results.iter().position(|r| r.is_err()) {
        match results.swap_remove(pos) {
            Err(payload) => resume_unwind(payload),
            Ok(_) => unreachable!("position() found an Err"),
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("checked above: no task panicked"))
        .collect()
}

/// Locks a mutex, ignoring poisoning: every closure that runs while
/// holding one of the queue's locks is panic-contained, so a poisoned
/// lock only means a *contained* panic happened elsewhere — the guarded
/// data (a job deque, a result slot, a countdown) is still coherent.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A job on the shared queue: runs once on whichever worker claims it,
/// with that worker's long-lived context `W` threaded in.
pub type QueuedJob<'env, W> = Box<dyn FnOnce(&mut W) + Send + 'env>;

struct QueueState<'env, W> {
    jobs: VecDeque<QueuedJob<'env, W>>,
    closed: bool,
}

/// A shared work queue that lets *one pool* execute both coarse tasks and
/// fine-grained sweep shards: coarse jobs go to the back, shard bursts cut
/// to the front (they block a coordinator, so they are latency-critical),
/// and every worker — including the coordinator between its own sweeps —
/// claims from the same deque. This is what lets a fused cohort's sweeps
/// overlap with straggler per-copy tasks instead of running as two
/// serialized phases.
pub struct WorkQueue<'env, W> {
    state: Mutex<QueueState<'env, W>>,
    ready: Condvar,
}

impl<'env, W> WorkQueue<'env, W> {
    fn new() -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push_back(&self, job: QueuedJob<'env, W>) {
        lock_ignore_poison(&self.state).jobs.push_back(job);
        self.ready.notify_one();
    }

    fn push_front(&self, job: QueuedJob<'env, W>) {
        lock_ignore_poison(&self.state).jobs.push_front(job);
        self.ready.notify_one();
    }

    fn try_pop(&self) -> Option<QueuedJob<'env, W>> {
        lock_ignore_poison(&self.state).jobs.pop_front()
    }

    /// Worker loop: next job, blocking while the queue is open but empty.
    /// Returns `None` once the queue is closed *and* drained.
    fn next_blocking(&self) -> Option<QueuedJob<'env, W>> {
        let mut state = lock_ignore_poison(&self.state);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn close(&self) {
        lock_ignore_poison(&self.state).closed = true;
        self.ready.notify_all();
    }
}

/// The coordinator's handle inside [`run_queued`]: submits jobs, runs
/// sharded sweeps that the whole pool helps with, and lends a hand on
/// queued jobs while it waits.
pub struct QueueScope<'q, 'env, W> {
    queue: &'q WorkQueue<'env, W>,
    init: &'q (dyn Fn() -> W + Sync),
    ctx: W,
}

impl<'q, 'env, W> QueueScope<'q, 'env, W> {
    /// Enqueues a job for any pool worker (possibly the coordinator
    /// itself, between sweeps) to execute. Jobs are expected to contain
    /// their own failures; as a last-resort firewall the claiming worker
    /// catches panics and rebuilds its context, so a bad job can neither
    /// kill a worker nor tear the context the next job sees.
    pub fn submit(&self, job: QueuedJob<'env, W>) {
        self.queue.push_back(job);
    }

    /// Claims and runs one queued job on the coordinator thread. Returns
    /// `false` if the queue was empty.
    pub fn help_one(&mut self) -> bool {
        match self.queue.try_pop() {
            Some(job) => {
                if catch_unwind(AssertUnwindSafe(|| job(&mut self.ctx))).is_err() {
                    self.ctx = (self.init)();
                }
                true
            }
            None => false,
        }
    }

    /// Runs `fold(shard)` for every shard in `0..count` with the whole
    /// pool's help and returns `(outcome, elapsed nanos)` per shard in
    /// shard order. Shard jobs cut to the *front* of the queue (the
    /// coordinator blocks on them), and the coordinator executes queued
    /// work — shards first, then whatever coarse jobs are pending — while
    /// it waits, so a sweep never idles the coordinator and pending tasks
    /// never starve a sweep. Panicking shards yield `Err(payload)` in
    /// their slot; the others complete normally.
    pub fn run_shards<T, F>(&mut self, count: usize, fold: F) -> Vec<(TaskResult<T>, u64)>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let slots: Vec<ShardSlot<T>> = (0..count).map(|_| Mutex::new(None)).collect();
        let remaining = Mutex::new(count);
        let done = Condvar::new();
        {
            let fold_ref: &(dyn Fn(usize) -> T + Sync) = &fold;
            let slots_ref = &slots;
            let remaining_ref = &remaining;
            let done_ref = &done;
            for shard in (0..count).rev() {
                let job: QueuedJob<'_, W> = Box::new(move |_ctx: &mut W| {
                    let started = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| fold_ref(shard)));
                    let nanos = started.elapsed().as_nanos() as u64;
                    *lock_ignore_poison(&slots_ref[shard]) = Some((outcome, nanos));
                    let mut left = lock_ignore_poison(remaining_ref);
                    *left -= 1;
                    if *left == 0 {
                        done_ref.notify_all();
                    }
                });
                // SAFETY: the job borrows `fold`, `slots`, `remaining` and
                // `done`, all locals of this call — shorter-lived than the
                // queue's 'env. Widening the lifetime is sound because this
                // function does not return until `remaining` reaches zero,
                // which happens only after every shard job has finished
                // executing (the countdown is decremented after the fold,
                // and the fold is panic-caught, so a panicking shard still
                // counts down). No queued job can outlive its borrows.
                #[allow(unsafe_code)]
                let job: QueuedJob<'env, W> =
                    unsafe { std::mem::transmute::<QueuedJob<'_, W>, QueuedJob<'env, W>>(job) };
                self.queue.push_front(job);
            }
            loop {
                if *lock_ignore_poison(&remaining) == 0 {
                    break;
                }
                if !self.help_one() {
                    // Queue momentarily empty but shards still in flight on
                    // other workers: wait for the countdown instead of
                    // spinning.
                    let left = lock_ignore_poison(&remaining);
                    if *left != 0 {
                        drop(
                            done.wait(left)
                                .unwrap_or_else(|poisoned| poisoned.into_inner()),
                        );
                    }
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                lock_ignore_poison(&slot)
                    .take()
                    .expect("run_shards returns only after every shard completed")
            })
            .collect()
    }
}

/// Runs `root` as the coordinator of a `workers`-wide pool sharing one
/// [`WorkQueue`]: `workers - 1` helper threads block on the queue, and the
/// coordinator both drives its own control flow and helps execute queued
/// jobs (via [`QueueScope::help_one`] / [`QueueScope::run_shards`]).
///
/// Every thread — coordinator included — owns one long-lived context from
/// `init`, threaded through every job it claims, so per-worker scratch is
/// allocated once per worker. After `root` returns, the coordinator drains
/// whatever is still queued, closes the queue, and joins the helpers; all
/// submitted jobs are guaranteed to have executed by the time this
/// returns.
pub fn run_queued<'env, W, R, I, G>(workers: usize, init: I, root: G) -> R
where
    I: Fn() -> W + Sync,
    G: for<'q> FnOnce(&mut QueueScope<'q, 'env, W>) -> R,
{
    let queue: WorkQueue<'env, W> = WorkQueue::new();
    let helpers = workers.max(1) - 1;
    if helpers == 0 {
        let mut scope = QueueScope {
            queue: &queue,
            init: &init,
            ctx: init(),
        };
        let result = root(&mut scope);
        while scope.help_one() {}
        return result;
    }
    std::thread::scope(|s| {
        for _ in 0..helpers {
            s.spawn(|| {
                let mut ctx = init();
                while let Some(job) = queue.next_blocking() {
                    // Same firewall as the coordinator: jobs contain their
                    // own failures, but a stray panic must not kill the
                    // worker or leak torn context into the next job.
                    if catch_unwind(AssertUnwindSafe(|| job(&mut ctx))).is_err() {
                        ctx = init();
                    }
                }
            });
        }
        let mut scope = QueueScope {
            queue: &queue,
            init: &init,
            ctx: init(),
        };
        let result = root(&mut scope);
        while scope.help_one() {}
        queue.close();
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_in_task_order() {
        for workers in [1, 2, 4, 9] {
            let out = run_indexed_pool(workers, 50, || (), |(), i| i * 3);
            assert_eq!(out, (0..50).map(|i| i * 3).collect::<Vec<_>>());
        }
        assert!(run_indexed_pool(4, 0, || (), |(), i| i).is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed_pool(
            3,
            41,
            || (),
            |(), i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out.len(), 41);
        assert_eq!(counter.load(Ordering::Relaxed), 41);
    }

    #[test]
    fn worker_state_is_reused_across_tasks() {
        // Single worker: one state instance sees every task in order.
        let out = run_indexed_pool(
            1,
            4,
            || 0usize,
            |state, i| {
                *state += 1;
                (*state, i)
            },
        );
        assert_eq!(out, vec![(1, 0), (2, 1), (3, 2), (4, 3)]);
    }

    #[test]
    fn panicking_task_is_contained_and_batchmates_complete() {
        for workers in [1, 2, 4] {
            let executed = AtomicUsize::new(0);
            let results = run_indexed_pool_caught(
                workers,
                20,
                || (),
                |(), i| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    if i == 7 {
                        panic!("task 7 goes down");
                    }
                    i * 2
                },
            );
            // Every task was claimed and executed despite the panic: no
            // worker thread died holding unclaimed indices.
            assert_eq!(executed.load(Ordering::Relaxed), 20);
            assert_eq!(results.len(), 20);
            for (i, r) in results.iter().enumerate() {
                if i == 7 {
                    let payload = r.as_ref().unwrap_err();
                    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
                    assert!(msg.contains("task 7"), "unexpected payload: {msg:?}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2);
                }
            }
        }
    }

    #[test]
    fn worker_state_is_rebuilt_after_a_caught_panic() {
        // One worker, tasks 0..4, task 1 panics mid-mutation: the state it
        // tore is discarded, so task 2 sees a fresh `init` value instead of
        // a half-updated one.
        let results = run_indexed_pool_caught(
            1,
            4,
            || 0usize,
            |state, i| {
                *state += 100;
                if i == 1 {
                    panic!("tear the state");
                }
                (*state, i)
            },
        );
        assert_eq!(*results[0].as_ref().unwrap(), (100, 0));
        assert!(results[1].is_err());
        assert_eq!(*results[2].as_ref().unwrap(), (100, 2));
        // Task 3 reuses the state rebuilt for task 2 (no panic in between).
        assert_eq!(*results[3].as_ref().unwrap(), (200, 3));
    }

    #[test]
    fn uncaught_variant_resumes_the_panic_after_all_tasks_ran() {
        let executed = AtomicUsize::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_indexed_pool(
                2,
                10,
                || (),
                |(), i| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    if i == 3 {
                        panic!("boom");
                    }
                    i
                },
            )
        }));
        assert!(outcome.is_err());
        assert_eq!(executed.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn queued_jobs_all_execute_before_run_queued_returns() {
        for workers in [1, 2, 4] {
            let slots: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
            run_queued(
                workers,
                || (),
                |scope| {
                    for (i, slot) in slots.iter().enumerate() {
                        scope.submit(Box::new(move |(): &mut ()| {
                            slot.fetch_add(i + 1, Ordering::Relaxed);
                        }));
                    }
                },
            );
            for (i, slot) in slots.iter().enumerate() {
                assert_eq!(slot.load(Ordering::Relaxed), i + 1, "workers={workers}");
            }
        }
    }

    #[test]
    fn run_shards_returns_ordered_results_and_timings() {
        for workers in [1, 3, 8] {
            let out = run_queued(workers, || (), |scope| scope.run_shards(17, |s| s * s));
            assert_eq!(out.len(), 17);
            for (s, (result, _nanos)) in out.iter().enumerate() {
                assert_eq!(*result.as_ref().unwrap(), s * s);
            }
            assert!(run_queued(workers, || (), |scope| scope.run_shards(0, |s| s)).is_empty());
        }
    }

    #[test]
    fn run_shards_overlaps_with_pending_queued_jobs() {
        // Coarse jobs are already queued when a sweep starts: the sweep's
        // shards cut to the front (so the blocking coordinator is served
        // first), but the coarse jobs still complete before run_queued
        // returns — one pool runs both kinds of work.
        for workers in [1, 2, 4] {
            let coarse_done = AtomicUsize::new(0);
            let shard_sum = run_queued(
                workers,
                || (),
                |scope| {
                    for _ in 0..8 {
                        scope.submit(Box::new(|(): &mut ()| {
                            coarse_done.fetch_add(1, Ordering::Relaxed);
                        }));
                    }
                    let shards = scope.run_shards(12, |s| s + 1);
                    shards.into_iter().map(|(r, _)| r.unwrap()).sum::<usize>()
                },
            );
            assert_eq!(shard_sum, (1..=12).sum::<usize>());
            assert_eq!(coarse_done.load(Ordering::Relaxed), 8, "workers={workers}");
        }
    }

    #[test]
    fn panicking_shard_is_contained_and_batchmates_complete() {
        for workers in [1, 2, 4] {
            let out = run_queued(
                workers,
                || (),
                |scope| {
                    scope.run_shards(9, |s| {
                        if s == 4 {
                            panic!("shard 4 goes down");
                        }
                        s * 10
                    })
                },
            );
            assert_eq!(out.len(), 9);
            for (s, (result, _)) in out.iter().enumerate() {
                if s == 4 {
                    assert!(result.is_err());
                } else {
                    assert_eq!(*result.as_ref().unwrap(), s * 10);
                }
            }
        }
    }

    #[test]
    fn panicking_queued_job_rebuilds_worker_context() {
        // One worker (the coordinator): a panicking job tears its context;
        // the next job must see a fresh `init` value, not the torn one.
        let observed = Mutex::new(Vec::new());
        run_queued(
            1,
            || 0usize,
            |scope| {
                scope.submit(Box::new(|ctx: &mut usize| {
                    *ctx += 100;
                    panic!("tear the context");
                }));
                scope.submit(Box::new(|ctx: &mut usize| {
                    *ctx += 1;
                    lock_ignore_poison(&observed).push(*ctx);
                }));
            },
        );
        assert_eq!(*lock_ignore_poison(&observed), vec![1]);
    }

    #[test]
    fn sequential_run_shards_calls_share_one_pool() {
        for workers in [1, 4] {
            let (first, second) = run_queued(
                workers,
                || (),
                |scope| {
                    let a: usize = scope
                        .run_shards(5, |s| s)
                        .into_iter()
                        .map(|(r, _)| r.unwrap())
                        .sum();
                    let b: usize = scope
                        .run_shards(7, |s| s * 2)
                        .into_iter()
                        .map(|(r, _)| r.unwrap())
                        .sum();
                    (a, b)
                },
            );
            assert_eq!(first, 10);
            assert_eq!(second, 42);
        }
    }
}
