//! Uniform reservoir sampling.
//!
//! Pass 1 of Algorithm 2 samples `r` edges uniformly at random from the
//! stream. [`ReservoirSampler`] implements the classic Algorithm R with
//! *replacement semantics per slot*: each of the `r` slots independently
//! holds a uniform element of the stream prefix, which matches the paper's
//! analysis (the multiset `R` of `r` i.i.d. uniform edges). A
//! without-replacement variant ([`ReservoirSampler::new_distinct`]) is also
//! provided for the baselines that need it.

use rand::Rng;

/// A reservoir holding `k` samples from a stream of unknown length.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    slots: Vec<T>,
    k: usize,
    seen: u64,
    distinct: bool,
}

impl<T: Clone> ReservoirSampler<T> {
    /// Creates a reservoir of `k` i.i.d. uniform samples (sampling *with*
    /// replacement across slots: each slot is an independent uniform draw
    /// from the stream).
    pub fn new_iid(k: usize) -> Self {
        ReservoirSampler {
            slots: Vec::with_capacity(k),
            k,
            seen: 0,
            distinct: false,
        }
    }

    /// Creates a classic Algorithm-R reservoir of `k` distinct positions
    /// (sampling without replacement of stream positions).
    pub fn new_distinct(k: usize) -> Self {
        ReservoirSampler {
            slots: Vec::with_capacity(k),
            k,
            seen: 0,
            distinct: true,
        }
    }

    /// Observes the next stream item.
    pub fn observe<R: Rng>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.distinct {
            if self.slots.len() < self.k {
                self.slots.push(item);
            } else if self.k > 0 {
                let j = rng.gen_range(0..self.seen);
                if (j as usize) < self.k {
                    self.slots[j as usize] = item;
                }
            }
        } else {
            if self.slots.len() < self.k {
                // Fill phase: every slot starts as the first item, then each
                // slot independently replaces with probability 1/seen below.
                while self.slots.len() < self.k {
                    self.slots.push(item.clone());
                }
                if self.seen == 1 {
                    return;
                }
            }
            // Each slot independently keeps a uniform sample of the prefix.
            for slot in self.slots.iter_mut() {
                if rng.gen_range(0..self.seen) == 0 {
                    *slot = item.clone();
                }
            }
        }
    }

    /// Number of items observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current samples (fewer than `k` if the stream was shorter than
    /// `k` in distinct mode, or empty if nothing was observed).
    pub fn samples(&self) -> &[T] {
        &self.slots
    }

    /// Consumes the reservoir and returns the samples.
    pub fn into_samples(self) -> Vec<T> {
        self.slots
    }

    /// The configured reservoir size `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of machine words of retained state (≈ one word per slot),
    /// for space accounting.
    pub fn retained_words(&self) -> u64 {
        self.slots.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn iid_reservoir_fills_all_slots() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = ReservoirSampler::new_iid(5);
        for x in 0..100u32 {
            r.observe(x, &mut rng);
        }
        assert_eq!(r.samples().len(), 5);
        assert_eq!(r.seen(), 100);
        assert!(r.samples().iter().all(|&x| x < 100));
        assert_eq!(r.retained_words(), 5);
    }

    #[test]
    fn distinct_reservoir_short_stream_keeps_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = ReservoirSampler::new_distinct(10);
        for x in 0..4u32 {
            r.observe(x, &mut rng);
        }
        let mut s = r.into_samples();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3]);
    }

    #[test]
    fn iid_marginals_are_uniform() {
        // Each slot should be uniform over the stream; check the mean of a
        // 0..100 stream lands near 49.5 over many runs.
        let mut total = 0.0f64;
        let mut count = 0usize;
        for seed in 0..300u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = ReservoirSampler::new_iid(4);
            for x in 0..100u32 {
                r.observe(x, &mut rng);
            }
            for &x in r.samples() {
                total += x as f64;
                count += 1;
            }
        }
        let mean = total / count as f64;
        assert!((mean - 49.5).abs() < 3.0, "mean = {mean}");
    }

    #[test]
    fn distinct_marginals_are_uniform() {
        let mut hits = vec![0u32; 20];
        for seed in 0..2000u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = ReservoirSampler::new_distinct(1);
            for x in 0..20u32 {
                r.observe(x, &mut rng);
            }
            hits[r.samples()[0] as usize] += 1;
        }
        // Expected 100 hits each; allow generous slack.
        assert!(hits.iter().all(|&h| h > 50 && h < 170), "{hits:?}");
    }

    #[test]
    fn zero_capacity_reservoir_is_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r: ReservoirSampler<u32> = ReservoirSampler::new_distinct(0);
        for x in 0..10 {
            r.observe(x, &mut rng);
        }
        assert!(r.samples().is_empty());
    }
}
