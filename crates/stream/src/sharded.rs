//! Sharded views of an in-memory edge stream.
//!
//! A single pass over a [`MemoryStream`](crate::MemoryStream) is serialized
//! on one iterator. [`ShardedStream`] partitions the snapshot's edge slice
//! into `S` contiguous ranges — *shards* — that preserve the global edge
//! order: shard 0 holds the first `⌈m/S⌉` edges, shard 1 the next block,
//! and so on. Passes that fold the stream into an order-insensitive
//! accumulator (degree counting, membership marking) can then run one
//! accumulator per shard on a worker pool and merge the accumulators in
//! shard order, producing results **bit-identical** to a sequential pass at
//! any shard or worker count.
//!
//! `ShardedStream` also implements [`EdgeStream`] (a plain pass walks the
//! shards in order, i.e. the original stream order), so the RNG-consuming
//! passes of an estimator can run over the same view unchanged; only the
//! shardable passes opt into [`ShardedStream::pass_sharded`].
//!
//! Pass accounting: both the plain passes and a sharded pass count as
//! exactly **one** pass over the stream (every edge is delivered once);
//! [`ShardedStream::passes`] exposes the counter so tests can assert the
//! sharded runner keeps the paper's pass budget.

use std::ops::Range;

use degentri_graph::Edge;

use crate::edge_stream::{EdgeStream, MemoryStream};
use crate::snapshot::{ShardedSnapshot, StreamSnapshot};

/// A contiguous, order-preserving partition of an edge slice into shards —
/// the insert-only face of the unified snapshot layer (the slicing,
/// ordering and worker-pool semantics live in
/// [`ShardedSnapshot`](crate::snapshot::ShardedSnapshot), shared with
/// [`ShardedDynamicStream`](crate::ShardedDynamicStream)).
#[derive(Debug)]
pub struct ShardedStream<'a> {
    inner: ShardedSnapshot<'a, Edge>,
}

impl<'a> ShardedStream<'a> {
    /// Creates a sharded view over `edges` with **up to** `shards`
    /// contiguous shards of `⌈m / shards⌉` edges each. The actual count
    /// ([`ShardedStream::shards`]) can be lower when the ceiling division
    /// does not divide `m` evenly — partitioning 10 edges 6 ways yields 5
    /// shards of 2 — so that no shard is ever empty on a non-empty stream
    /// (an empty stream gets one empty shard).
    pub fn new(num_vertices: usize, edges: &'a [Edge], shards: usize) -> Self {
        ShardedStream {
            inner: ShardedSnapshot::new(num_vertices, edges, shards),
        }
    }

    /// Creates a sharded view of a [`MemoryStream`] snapshot.
    pub fn from_stream(stream: &'a MemoryStream, shards: usize) -> Self {
        ShardedStream {
            inner: ShardedSnapshot::from_snapshot(stream, shards),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards()
    }

    /// The edges of shard `s` (zero-copy slice of the backing storage).
    pub fn shard(&self, s: usize) -> &'a [Edge] {
        self.inner.shard(s)
    }

    /// The global index range shard `s` covers.
    pub fn shard_range(&self, s: usize) -> Range<usize> {
        self.inner.shard_range(s)
    }

    /// The full edge slice in global stream order.
    pub fn edges(&self) -> &'a [Edge] {
        self.inner.items()
    }

    /// Number of passes started over this view (plain and sharded passes
    /// both count as one — every edge is delivered exactly once per pass).
    pub fn passes(&self) -> u32 {
        self.inner.passes()
    }

    /// One pass over the stream, executed shard-parallel: `fold` runs once
    /// per shard (receiving the shard index and its zero-copy edge slice)
    /// on up to `workers` scoped threads, and the per-shard accumulators
    /// are returned **in shard order** so the caller's merge is
    /// deterministic regardless of scheduling.
    ///
    /// `fold` must be order-insensitive across shards (counting, membership
    /// marking, …) for the merged result to equal a sequential pass; within
    /// a shard it sees the edges in global stream order.
    pub fn pass_sharded<T, F>(&self, workers: usize, fold: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &[Edge]) -> T + Sync,
    {
        self.inner.pass_sharded(workers, fold)
    }

    /// One timed pass over the stream (see
    /// [`ShardedSnapshot::pass_sharded_timed`](crate::ShardedSnapshot::pass_sharded_timed)):
    /// each shard accumulator is paired with its fold's wall time in
    /// nanoseconds, with fold results bit-identical to the untimed pass.
    pub fn pass_sharded_timed<T, F>(&self, workers: usize, fold: F) -> Vec<(T, u64)>
    where
        T: Send,
        F: Fn(usize, &[Edge]) -> T + Sync,
    {
        self.inner.pass_sharded_timed(workers, fold)
    }
}

impl StreamSnapshot for ShardedStream<'_> {
    type Item = Edge;

    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn items(&self) -> &[Edge] {
        self.inner.items()
    }
}

impl EdgeStream for ShardedStream<'_> {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.inner.items().len()
    }

    fn pass(&self) -> Box<dyn Iterator<Item = Edge> + '_> {
        self.inner.note_pass();
        Box::new(self.inner.items().iter().copied())
    }

    fn pass_batched(&self, batch_size: usize, visit: &mut dyn FnMut(&[Edge])) {
        // Global stream order; shard boundaries do not affect plain passes.
        self.inner.note_pass();
        for chunk in self.inner.items().chunks(batch_size.max(1)) {
            visit(chunk);
        }
    }

    fn as_edge_slice(&self) -> Option<&[Edge]> {
        Some(self.inner.items())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::StreamOrder;
    use degentri_graph::CsrGraph;

    fn stream() -> MemoryStream {
        let g = CsrGraph::from_raw_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
                (0, 2),
                (1, 3),
            ],
        );
        MemoryStream::from_graph(&g, StreamOrder::UniformRandom(3))
    }

    #[test]
    fn shards_partition_in_global_order() {
        let s = stream();
        for shards in 1..=12 {
            let view = ShardedStream::from_stream(&s, shards);
            assert!(view.shards() >= 1 && view.shards() <= 10);
            let mut rebuilt: Vec<Edge> = Vec::new();
            for i in 0..view.shards() {
                assert_eq!(&s.edges()[view.shard_range(i)], view.shard(i));
                rebuilt.extend_from_slice(view.shard(i));
            }
            assert_eq!(rebuilt, s.edges(), "shards = {shards}");
        }
    }

    #[test]
    fn no_shard_is_ever_empty_on_a_non_empty_stream() {
        // Shard counts that do not divide m evenly must shrink the shard
        // count rather than produce empty trailing shards.
        for m in 1..=12usize {
            let g = CsrGraph::from_raw_edges(
                m + 1,
                (0..m as u32).map(|i| (i, i + 1)).collect::<Vec<_>>(),
            );
            let s = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
            for requested in 1..=(m + 3) {
                let view = ShardedStream::from_stream(&s, requested);
                assert!(view.shards() >= 1 && view.shards() <= requested.min(m));
                for i in 0..view.shards() {
                    assert!(!view.shard(i).is_empty(), "m {m} requested {requested}");
                }
            }
        }
    }

    #[test]
    fn empty_stream_has_one_empty_shard() {
        let view = ShardedStream::new(3, &[], 4);
        assert_eq!(view.shards(), 1);
        assert!(view.shard(0).is_empty());
        assert_eq!(EdgeStream::num_edges(&view), 0);
    }

    #[test]
    fn plain_passes_preserve_stream_order() {
        let s = stream();
        let view = ShardedStream::from_stream(&s, 3);
        let direct: Vec<Edge> = s.pass().collect();
        assert_eq!(view.pass().collect::<Vec<_>>(), direct);
        let mut batched = Vec::new();
        view.pass_batched(4, &mut |chunk| batched.extend_from_slice(chunk));
        assert_eq!(batched, direct);
        assert_eq!(view.as_edge_slice().unwrap(), s.edges());
        assert_eq!(view.passes(), 2);
    }

    #[test]
    fn sharded_pass_merges_in_shard_order_at_any_worker_count() {
        let s = stream();
        let sequential: Vec<Edge> = s.pass().collect();
        for shards in 1..=8 {
            for workers in [1, 2, 4, 9] {
                let view = ShardedStream::from_stream(&s, shards);
                let parts: Vec<Vec<Edge>> = view.pass_sharded(workers, |_, edges| edges.to_vec());
                assert_eq!(parts.len(), view.shards());
                let merged: Vec<Edge> = parts.concat();
                assert_eq!(merged, sequential, "shards {shards} workers {workers}");
                assert_eq!(view.passes(), 1);
            }
        }
    }

    #[test]
    fn sharded_counting_matches_sequential_counting() {
        let s = stream();
        let mut expect = vec![0u64; 8];
        for e in s.pass() {
            expect[e.u().index()] += 1;
            expect[e.v().index()] += 1;
        }
        for shards in 1..=6 {
            let view = ShardedStream::from_stream(&s, shards);
            let per_shard = view.pass_sharded(3, |_, edges| {
                let mut counts = vec![0u64; 8];
                for e in edges {
                    counts[e.u().index()] += 1;
                    counts[e.v().index()] += 1;
                }
                counts
            });
            let mut merged = vec![0u64; 8];
            for counts in per_shard {
                for (total, c) in merged.iter_mut().zip(counts) {
                    *total += c;
                }
            }
            assert_eq!(merged, expect);
        }
    }
}
