//! The unified snapshot layer: one sharding substrate for insert-only
//! **and** turnstile streams.
//!
//! PR 2 introduced [`ShardedStream`](crate::ShardedStream) — a contiguous,
//! order-preserving partition of a [`MemoryStream`](crate::MemoryStream)
//! snapshot whose per-shard accumulators merge bit-identically. The
//! turnstile side ([`DynamicMemoryStream`]) needs exactly the same
//! machinery over `&[EdgeUpdate]` instead of `&[Edge]`, so this module
//! factors the substrate out once:
//!
//! * [`Partition`] — the shared slicing rule: up to `S` contiguous shards
//!   of `⌈len / S⌉` items, never empty on a non-empty snapshot.
//! * [`StreamSnapshot`] — the trait unifying in-memory snapshots: anything
//!   that can expose its items as one zero-copy slice in global stream
//!   order. Implemented by [`MemoryStream`] (items = edges) and
//!   [`DynamicMemoryStream`] (items = updates), and by the sharded views
//!   themselves so views can be re-sharded.
//! * [`ShardedSnapshot`] — the generic sharded view every concrete view
//!   wraps: zero-copy shard slices, global index ranges (the carrier of
//!   position-keyed counter randomness), a pass counter, and
//!   [`pass_sharded`](ShardedSnapshot::pass_sharded) running one fold per
//!   shard on a scoped worker pool with the accumulators returned **in
//!   shard order**.
//! * [`ShardedDynamicStream`] — the turnstile twin of `ShardedStream`: it
//!   implements [`DynamicEdgeStream`] (plain passes walk the shards in
//!   global order), so the dynamic estimator runs over the view unchanged
//!   and only its shardable folds opt into the sharded pass.
//!
//! Pass accounting matches `ShardedStream`: a plain pass and a sharded
//! pass each count as exactly one pass (every item is delivered once).

use std::ops::Range;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use degentri_graph::Edge;

use crate::dynamic::{DynamicEdgeStream, DynamicMemoryStream, EdgeUpdate};
use crate::edge_stream::MemoryStream;
use crate::pool::run_indexed_pool;

/// A contiguous, order-preserving partition of `len` positions into up to
/// `shards` shards of `⌈len / shards⌉` positions each. The actual shard
/// count can be lower when the ceiling division does not divide `len`
/// evenly — partitioning 10 positions 6 ways yields 5 shards of 2 — so
/// that no shard is ever empty on a non-empty snapshot (an empty snapshot
/// gets one empty shard).
#[derive(Debug, Clone)]
pub struct Partition {
    /// `shards + 1` offsets; shard `s` covers `bounds[s]..bounds[s + 1]`.
    bounds: Vec<usize>,
}

impl Partition {
    /// Partitions `len` positions into up to `shards` contiguous shards.
    pub fn new(len: usize, shards: usize) -> Self {
        let per_shard = len.div_ceil(shards.clamp(1, len.max(1))).max(1);
        let mut bounds = Vec::with_capacity(len / per_shard + 2);
        let mut at = 0usize;
        bounds.push(0);
        while at < len {
            at = (at + per_shard).min(len);
            bounds.push(at);
        }
        if bounds.len() == 1 {
            bounds.push(0);
        }
        Partition { bounds }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The global index range shard `s` covers.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Total number of positions partitioned.
    pub fn len(&self) -> usize {
        *self.bounds.last().expect("bounds are non-empty")
    }

    /// Whether the partition covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One in-memory snapshot of either stream flavor, behind one enum — the
/// argument of the engine's unified entry point. An insert-only snapshot
/// carries the edges of one pass in global stream order; a turnstile
/// snapshot carries the signed updates. Both are zero-copy borrows, so a
/// scheduler can serve many jobs (and many sharded views) from one
/// snapshot without re-materializing anything.
#[derive(Debug, Clone, Copy)]
pub enum Snapshot<'a> {
    /// An insert-only edge snapshot.
    Edges {
        /// Number of vertices `n` (vertex ids are `< n`).
        num_vertices: usize,
        /// The edges of one pass, in global stream order.
        edges: &'a [Edge],
    },
    /// A turnstile (insert/delete) update snapshot.
    Updates {
        /// Number of vertices `n`.
        num_vertices: usize,
        /// The signed updates of one pass, in global stream order.
        updates: &'a [EdgeUpdate],
    },
}

impl<'a> Snapshot<'a> {
    /// The edge snapshot of an insert-only stream that exposes its storage
    /// (see [`EdgeStream::as_edge_slice`]); `None` when it does not.
    pub fn of_edges<S: crate::EdgeStream + ?Sized>(stream: &'a S) -> Option<Self> {
        stream.as_edge_slice().map(|edges| Snapshot::Edges {
            num_vertices: crate::EdgeStream::num_vertices(stream),
            edges,
        })
    }

    /// The update snapshot of a turnstile stream that exposes its storage
    /// (see [`DynamicEdgeStream::as_update_slice`]); `None` when it does
    /// not.
    pub fn of_updates<S: DynamicEdgeStream + ?Sized>(stream: &'a S) -> Option<Self> {
        stream.as_update_slice().map(|updates| Snapshot::Updates {
            num_vertices: DynamicEdgeStream::num_vertices(stream),
            updates,
        })
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        match *self {
            Snapshot::Edges { num_vertices, .. } | Snapshot::Updates { num_vertices, .. } => {
                num_vertices
            }
        }
    }

    /// Number of items one pass delivers (edges or updates).
    pub fn len(&self) -> usize {
        match *self {
            Snapshot::Edges { edges, .. } => edges.len(),
            Snapshot::Updates { updates, .. } => updates.len(),
        }
    }

    /// Whether the snapshot holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The edge slice, when this is an insert-only snapshot.
    pub fn edges(&self) -> Option<&'a [Edge]> {
        match *self {
            Snapshot::Edges { edges, .. } => Some(edges),
            Snapshot::Updates { .. } => None,
        }
    }

    /// The update slice, when this is a turnstile snapshot.
    pub fn updates(&self) -> Option<&'a [EdgeUpdate]> {
        match *self {
            Snapshot::Updates { updates, .. } => Some(updates),
            Snapshot::Edges { .. } => None,
        }
    }
}

/// A zero-copy snapshot of a replayable stream: the items of one pass, in
/// global stream order, behind one slice. This is the engine-facing
/// contract that lets a scheduler share a single snapshot across many jobs
/// and build sharded views over it without re-snapshotting — uniformly for
/// insert-only edges and turnstile updates.
pub trait StreamSnapshot {
    /// The item one pass yields (an [`Edge`] or an [`EdgeUpdate`]).
    type Item: Copy + Send + Sync;

    /// Number of vertices `n` (vertex ids are `< n`).
    fn num_vertices(&self) -> usize;

    /// The items of one pass, in global stream order.
    fn items(&self) -> &[Self::Item];
}

impl StreamSnapshot for MemoryStream {
    type Item = Edge;

    fn num_vertices(&self) -> usize {
        crate::EdgeStream::num_vertices(self)
    }

    fn items(&self) -> &[Edge] {
        self.edges()
    }
}

impl StreamSnapshot for DynamicMemoryStream {
    type Item = EdgeUpdate;

    fn num_vertices(&self) -> usize {
        DynamicEdgeStream::num_vertices(self)
    }

    fn items(&self) -> &[EdgeUpdate] {
        self.updates()
    }
}

/// The generic sharded view over a snapshot slice: a [`Partition`] plus
/// the backing items and a pass counter. [`ShardedStream`] (edges) and
/// [`ShardedDynamicStream`] (updates) both wrap this, so the slicing,
/// ordering and worker-pool semantics live in exactly one place.
///
/// [`ShardedStream`]: crate::ShardedStream
#[derive(Debug)]
pub struct ShardedSnapshot<'a, T> {
    items: &'a [T],
    num_vertices: usize,
    partition: Partition,
    passes: AtomicU32,
}

impl<'a, T: Copy + Send + Sync> ShardedSnapshot<'a, T> {
    /// Creates a sharded view over `items` with up to `shards` contiguous
    /// shards (see [`Partition::new`] for the rounding rule).
    pub fn new(num_vertices: usize, items: &'a [T], shards: usize) -> Self {
        ShardedSnapshot {
            items,
            num_vertices,
            partition: Partition::new(items.len(), shards),
            passes: AtomicU32::new(0),
        }
    }

    /// Creates a sharded view of any [`StreamSnapshot`].
    pub fn from_snapshot<S: StreamSnapshot<Item = T>>(snapshot: &'a S, shards: usize) -> Self {
        ShardedSnapshot::new(snapshot.num_vertices(), snapshot.items(), shards)
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.partition.shards()
    }

    /// The items of shard `s` (zero-copy slice of the backing storage).
    pub fn shard(&self, s: usize) -> &'a [T] {
        &self.items[self.partition.range(s)]
    }

    /// The global index range shard `s` covers — the positions counter-mode
    /// randomness is keyed by.
    pub fn shard_range(&self, s: usize) -> Range<usize> {
        self.partition.range(s)
    }

    /// The full item slice in global stream order.
    pub fn items(&self) -> &'a [T] {
        self.items
    }

    /// Number of passes started over this view (plain and sharded passes
    /// both count as one — every item is delivered exactly once per pass).
    pub fn passes(&self) -> u32 {
        self.passes.load(Ordering::Relaxed)
    }

    pub(crate) fn note_pass(&self) {
        self.passes.fetch_add(1, Ordering::Relaxed);
    }

    /// One pass over the snapshot, executed shard-parallel: `fold` runs
    /// once per shard (receiving the shard index and its zero-copy item
    /// slice) on up to `workers` scoped threads, and the per-shard
    /// accumulators are returned **in shard order** so the caller's merge
    /// is deterministic regardless of scheduling.
    ///
    /// `fold` must be order-insensitive across shards (counting, membership
    /// marking, linear sketch updates, position-keyed max-merges, …) for
    /// the merged result to equal a sequential pass; within a shard it sees
    /// the items in global stream order.
    pub fn pass_sharded<A, F>(&self, workers: usize, fold: F) -> Vec<A>
    where
        A: Send,
        F: Fn(usize, &[T]) -> A + Sync,
    {
        self.note_pass();
        run_indexed_pool(
            workers,
            self.shards(),
            || (),
            |(), s| fold(s, self.shard(s)),
        )
    }

    /// [`pass_sharded`](Self::pass_sharded) with per-shard wall-clock
    /// timing: each accumulator is paired with the nanoseconds its shard's
    /// fold spent on a pool worker. The fold results are bit-identical to
    /// the untimed pass — the clock reads bracket the fold and never feed
    /// back into it — so observability callers can switch between the two
    /// without perturbing outcomes.
    pub fn pass_sharded_timed<A, F>(&self, workers: usize, fold: F) -> Vec<(A, u64)>
    where
        A: Send,
        F: Fn(usize, &[T]) -> A + Sync,
    {
        self.note_pass();
        run_indexed_pool(
            workers,
            self.shards(),
            || (),
            |(), s| {
                let started = Instant::now();
                let acc = fold(s, self.shard(s));
                (acc, started.elapsed().as_nanos() as u64)
            },
        )
    }
}

/// A contiguous, order-preserving partition of a turnstile snapshot —
/// the [`DynamicEdgeStream`] twin of
/// [`ShardedStream`](crate::ShardedStream). Plain passes walk the shards
/// in global update order (so the dynamic estimator's pass budget and
/// sequential semantics are unchanged); shardable folds use
/// [`pass_sharded`](ShardedDynamicStream::pass_sharded).
#[derive(Debug)]
pub struct ShardedDynamicStream<'a> {
    inner: ShardedSnapshot<'a, EdgeUpdate>,
}

impl<'a> ShardedDynamicStream<'a> {
    /// Creates a sharded view over `updates` with up to `shards` contiguous
    /// shards.
    pub fn new(num_vertices: usize, updates: &'a [EdgeUpdate], shards: usize) -> Self {
        ShardedDynamicStream {
            inner: ShardedSnapshot::new(num_vertices, updates, shards),
        }
    }

    /// Creates a sharded view of a [`DynamicMemoryStream`] snapshot.
    pub fn from_stream(stream: &'a DynamicMemoryStream, shards: usize) -> Self {
        ShardedDynamicStream {
            inner: ShardedSnapshot::from_snapshot(stream, shards),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards()
    }

    /// The updates of shard `s` (zero-copy slice of the backing storage).
    pub fn shard(&self, s: usize) -> &'a [EdgeUpdate] {
        self.inner.shard(s)
    }

    /// The global index range shard `s` covers.
    pub fn shard_range(&self, s: usize) -> Range<usize> {
        self.inner.shard_range(s)
    }

    /// The full update slice in global stream order.
    pub fn updates(&self) -> &'a [EdgeUpdate] {
        self.inner.items()
    }

    /// Number of passes started over this view.
    pub fn passes(&self) -> u32 {
        self.inner.passes()
    }

    /// One pass over the update stream, executed shard-parallel (see
    /// [`ShardedSnapshot::pass_sharded`]).
    pub fn pass_sharded<A, F>(&self, workers: usize, fold: F) -> Vec<A>
    where
        A: Send,
        F: Fn(usize, &[EdgeUpdate]) -> A + Sync,
    {
        self.inner.pass_sharded(workers, fold)
    }

    /// One timed pass over the update stream (see
    /// [`ShardedSnapshot::pass_sharded_timed`]).
    pub fn pass_sharded_timed<A, F>(&self, workers: usize, fold: F) -> Vec<(A, u64)>
    where
        A: Send,
        F: Fn(usize, &[EdgeUpdate]) -> A + Sync,
    {
        self.inner.pass_sharded_timed(workers, fold)
    }
}

impl StreamSnapshot for ShardedDynamicStream<'_> {
    type Item = EdgeUpdate;

    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn items(&self) -> &[EdgeUpdate] {
        self.inner.items()
    }
}

impl DynamicEdgeStream for ShardedDynamicStream<'_> {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn num_updates(&self) -> usize {
        self.inner.items().len()
    }

    fn pass(&self) -> Box<dyn Iterator<Item = EdgeUpdate> + '_> {
        self.inner.note_pass();
        Box::new(self.inner.items().iter().copied())
    }

    fn pass_batched(&self, batch_size: usize, visit: &mut dyn FnMut(&[EdgeUpdate])) {
        // Global stream order; shard boundaries do not affect plain passes.
        self.inner.note_pass();
        for chunk in self.inner.items().chunks(batch_size.max(1)) {
            visit(chunk);
        }
    }

    fn as_update_slice(&self) -> Option<&[EdgeUpdate]> {
        Some(self.inner.items())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degentri_graph::CsrGraph;

    fn graph() -> CsrGraph {
        CsrGraph::from_raw_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn partition_covers_every_position_in_order() {
        for len in 0..=12usize {
            for shards in 1..=(len + 3) {
                let p = Partition::new(len, shards);
                assert_eq!(p.len(), len);
                assert_eq!(p.is_empty(), len == 0);
                let mut at = 0usize;
                for s in 0..p.shards() {
                    let range = p.range(s);
                    assert_eq!(range.start, at);
                    if len > 0 {
                        assert!(!range.is_empty(), "len {len} shards {shards}");
                    }
                    at = range.end;
                }
                assert_eq!(at, len);
                assert!(p.shards() <= shards.max(1));
            }
        }
    }

    #[test]
    fn sharded_snapshot_is_generic_over_the_item_type() {
        let values: Vec<u64> = (0..17).collect();
        let view = ShardedSnapshot::new(0, &values, 4);
        let mut rebuilt = Vec::new();
        for s in 0..view.shards() {
            assert_eq!(view.shard(s), &values[view.shard_range(s)]);
            rebuilt.extend_from_slice(view.shard(s));
        }
        assert_eq!(rebuilt, values);
        let sums = view.pass_sharded(3, |_, items| items.iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), values.iter().sum::<u64>());
        assert_eq!(view.passes(), 1);
    }

    #[test]
    fn snapshot_trait_unifies_both_stream_flavors() {
        let g = graph();
        let insert_only = crate::MemoryStream::from_graph(&g, crate::StreamOrder::AsGiven);
        assert_eq!(StreamSnapshot::items(&insert_only).len(), 7);
        assert_eq!(StreamSnapshot::num_vertices(&insert_only), 6);

        let dynamic = DynamicMemoryStream::with_churn(&g, 0.5, 3);
        assert_eq!(StreamSnapshot::items(&dynamic).len(), dynamic.num_updates());
        let view = ShardedDynamicStream::from_stream(&dynamic, 3);
        assert_eq!(StreamSnapshot::items(&view), dynamic.updates());
    }

    #[test]
    fn dynamic_view_preserves_global_update_order() {
        let g = graph();
        let s = DynamicMemoryStream::with_churn(&g, 0.6, 7);
        let sequential: Vec<EdgeUpdate> = s.pass().collect();
        for shards in 1..=9 {
            let view = ShardedDynamicStream::from_stream(&s, shards);
            assert_eq!(view.num_updates(), s.num_updates());
            assert_eq!(view.pass().collect::<Vec<_>>(), sequential);
            let mut batched = Vec::new();
            view.pass_batched(4, &mut |chunk| batched.extend_from_slice(chunk));
            assert_eq!(batched, sequential);
            assert_eq!(view.as_update_slice().unwrap(), s.updates());
            // Shards concatenate to the stream, ranges line up.
            let mut rebuilt = Vec::new();
            for i in 0..view.shards() {
                assert_eq!(&s.updates()[view.shard_range(i)], view.shard(i));
                rebuilt.extend_from_slice(view.shard(i));
            }
            assert_eq!(rebuilt, sequential, "shards {shards}");
            assert_eq!(view.passes(), 2);
        }
    }

    #[test]
    fn dynamic_sharded_pass_merges_in_shard_order_at_any_worker_count() {
        let g = graph();
        let s = DynamicMemoryStream::with_churn(&g, 0.8, 11);
        let sequential: Vec<EdgeUpdate> = s.pass().collect();
        for shards in 1..=8 {
            for workers in [1, 2, 4, 9] {
                let view = ShardedDynamicStream::from_stream(&s, shards);
                let parts: Vec<Vec<EdgeUpdate>> =
                    view.pass_sharded(workers, |_, updates| updates.to_vec());
                assert_eq!(parts.len(), view.shards());
                assert_eq!(parts.concat(), sequential, "shards {shards}");
                assert_eq!(view.passes(), 1);
            }
        }
    }

    #[test]
    fn dynamic_sharded_net_counts_match_sequential_counts() {
        let g = graph();
        let s = DynamicMemoryStream::with_churn(&g, 0.7, 5);
        let mut expect = 0i64;
        for u in s.pass() {
            expect += u.delta();
        }
        for shards in 1..=6 {
            let view = ShardedDynamicStream::from_stream(&s, shards);
            let nets = view.pass_sharded(3, |_, updates| {
                updates.iter().map(|u| u.delta()).sum::<i64>()
            });
            assert_eq!(nets.iter().sum::<i64>(), expect);
        }
    }

    #[test]
    fn empty_dynamic_snapshot_has_one_empty_shard() {
        let view = ShardedDynamicStream::new(3, &[], 4);
        assert_eq!(view.shards(), 1);
        assert!(view.shard(0).is_empty());
        assert_eq!(view.num_updates(), 0);
    }
}
