//! Machine-word space accounting.
//!
//! The paper's theorems are statements about *bits of storage*. To compare
//! algorithms empirically we count the machine words (8 bytes) of state an
//! algorithm retains **between stream items**: samples, counters, hash-table
//! entries, memo tables. Transient per-item scratch space is not charged,
//! matching how streaming space complexity is usually accounted.
//!
//! [`SpaceMeter`] tracks the current and peak retained words; algorithms
//! charge and release as their state grows and shrinks, and report a
//! [`SpaceReport`] at the end. Constant factors obviously differ from the
//! paper's bit-level accounting, but the *scaling* in `m`, `κ`, `T`, `ε` and
//! `log n` — which is what every experiment checks — is preserved.

/// Tracks the number of machine words of retained state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpaceMeter {
    current: u64,
    peak: u64,
    charges: u64,
}

impl SpaceMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        SpaceMeter::default()
    }

    /// Charges `words` machine words of newly retained state.
    #[inline]
    pub fn charge(&mut self, words: u64) {
        self.current += words;
        self.charges += 1;
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Charges the space for one stored edge (two vertex ids: 1 word).
    #[inline]
    pub fn charge_edge(&mut self) {
        self.charge(1);
    }

    /// Charges the space for one stored counter or scalar.
    #[inline]
    pub fn charge_word(&mut self) {
        self.charge(1);
    }

    /// Charges a hash-table entry: key + value + constant overhead ≈ 3 words.
    #[inline]
    pub fn charge_table_entry(&mut self) {
        self.charge(3);
    }

    /// Releases `words` previously charged words (saturating at zero).
    #[inline]
    pub fn release(&mut self, words: u64) {
        self.current = self.current.saturating_sub(words);
    }

    /// Releases everything currently charged (peak is kept).
    pub fn release_all(&mut self) {
        self.current = 0;
    }

    /// Currently retained words.
    #[inline]
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Peak retained words observed so far.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Number of individual charge operations (a coarse allocation count).
    pub fn charge_operations(&self) -> u64 {
        self.charges
    }

    /// Merges another meter's peak into this one, as if the two pieces of
    /// state coexisted (used when an estimator is built from sub-estimators
    /// that run in parallel over the same passes).
    pub fn absorb_parallel(&mut self, other: &SpaceMeter) {
        self.current += other.current;
        self.peak += other.peak;
        self.charges += other.charges;
    }

    /// Takes the maximum of the two peaks, as if the two pieces of state ran
    /// one after the other reusing the same storage.
    pub fn absorb_sequential(&mut self, other: &SpaceMeter) {
        self.peak = self.peak.max(other.peak);
        self.current = self.current.max(other.current);
        self.charges += other.charges;
    }

    /// Produces the final report.
    pub fn report(&self) -> SpaceReport {
        SpaceReport {
            peak_words: self.peak,
            final_words: self.current,
        }
    }
}

/// Summary of the space used by one algorithm run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceReport {
    /// Peak number of retained machine words across the whole run.
    pub peak_words: u64,
    /// Words retained when the algorithm finished (normally ≈ peak).
    pub final_words: u64,
}

impl SpaceReport {
    /// Peak space in bytes (words × 8).
    pub fn peak_bytes(&self) -> u64 {
        self.peak_words * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release_track_current_and_peak() {
        let mut m = SpaceMeter::new();
        m.charge(10);
        m.charge(5);
        assert_eq!(m.current(), 15);
        assert_eq!(m.peak(), 15);
        m.release(12);
        assert_eq!(m.current(), 3);
        assert_eq!(m.peak(), 15);
        m.charge(20);
        assert_eq!(m.peak(), 23);
        m.release_all();
        assert_eq!(m.current(), 0);
        assert_eq!(m.peak(), 23);
        assert_eq!(m.charge_operations(), 3);
    }

    #[test]
    fn release_saturates() {
        let mut m = SpaceMeter::new();
        m.charge(2);
        m.release(10);
        assert_eq!(m.current(), 0);
    }

    #[test]
    fn helper_charges() {
        let mut m = SpaceMeter::new();
        m.charge_edge();
        m.charge_word();
        m.charge_table_entry();
        assert_eq!(m.current(), 5);
    }

    #[test]
    fn absorb_parallel_adds_peaks() {
        let mut a = SpaceMeter::new();
        a.charge(10);
        let mut b = SpaceMeter::new();
        b.charge(7);
        b.release(7);
        a.absorb_parallel(&b);
        assert_eq!(a.peak(), 17);
        assert_eq!(a.current(), 10);
    }

    #[test]
    fn absorb_sequential_takes_max_peak() {
        let mut a = SpaceMeter::new();
        a.charge(10);
        a.release(10);
        let mut b = SpaceMeter::new();
        b.charge(25);
        b.release(25);
        a.absorb_sequential(&b);
        assert_eq!(a.peak(), 25);
        assert_eq!(a.current(), 0);
    }

    #[test]
    fn report_and_bytes() {
        let mut m = SpaceMeter::new();
        m.charge(4);
        let r = m.report();
        assert_eq!(r.peak_words, 4);
        assert_eq!(r.final_words, 4);
        assert_eq!(r.peak_bytes(), 32);
    }
}
