//! Single-pass stream statistics.
//!
//! [`StreamStats`] makes one pass over a stream and records the quantities
//! several algorithms assume are known: the edge count `m`, the observed
//! vertex count, and the full degree vector. Storing the degree vector costs
//! `Θ(n)` words — that is exactly the cost of the *degree oracle* of the
//! paper's Section 4 warm-up model, which is why the warm-up estimator does
//! not charge it to its own space budget while the main Algorithm 2 never
//! builds it at all.

use degentri_graph::VertexId;

use crate::edge_stream::EdgeStream;

/// Statistics gathered in a single pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of edges seen in the pass.
    pub num_edges: usize,
    /// Number of vertices of the underlying graph (as declared by the
    /// stream).
    pub num_vertices: usize,
    /// Degree of every vertex.
    pub degrees: Vec<usize>,
}

impl StreamStats {
    /// Runs one pass over `stream` and gathers the statistics.
    pub fn compute<S: EdgeStream + ?Sized>(stream: &S) -> Self {
        let n = stream.num_vertices();
        let mut degrees = vec![0usize; n];
        let mut m = 0usize;
        for e in stream.pass() {
            degrees[e.u().index()] += 1;
            degrees[e.v().index()] += 1;
            m += 1;
        }
        StreamStats {
            num_edges: m,
            num_vertices: n,
            degrees,
        }
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v.index()]
    }

    /// Edge degree `d_e = min(d_u, d_v)`.
    pub fn edge_degree(&self, e: degentri_graph::Edge) -> usize {
        self.degree(e.u()).min(self.degree(e.v()))
    }

    /// The endpoint of `e` with the smaller degree (ties to the smaller id).
    pub fn lower_degree_endpoint(&self, e: degentri_graph::Edge) -> VertexId {
        if self.degree(e.u()) <= self.degree(e.v()) {
            e.u()
        } else {
            e.v()
        }
    }

    /// Sum of edge degrees `d_E = Σ_e min(d_u, d_v)`; requires a second pass.
    pub fn edge_degree_sum<S: EdgeStream + ?Sized>(&self, stream: &S) -> u64 {
        stream.pass().map(|e| self.edge_degree(e) as u64).sum()
    }

    /// Maximum degree `Δ`.
    pub fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0)
    }

    /// The words of state this structure retains (the degree-oracle cost).
    pub fn retained_words(&self) -> u64 {
        self.degrees.len() as u64 + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_stream::MemoryStream;
    use crate::ordering::StreamOrder;
    use crate::passes::PassCounter;
    use degentri_graph::{CsrGraph, Edge};

    fn graph() -> CsrGraph {
        CsrGraph::from_raw_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
    }

    #[test]
    fn degrees_match_graph() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(1));
        let stats = StreamStats::compute(&s);
        assert_eq!(stats.num_edges, g.num_edges());
        assert_eq!(stats.num_vertices, g.num_vertices());
        for v in g.vertices() {
            assert_eq!(stats.degree(v), g.degree(v));
        }
        assert_eq!(stats.max_degree(), g.max_degree());
    }

    #[test]
    fn edge_degree_and_sum_match_graph() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        let stats = StreamStats::compute(&s);
        for &e in g.edges() {
            assert_eq!(stats.edge_degree(e), g.edge_degree(e));
            assert_eq!(stats.lower_degree_endpoint(e), g.lower_degree_endpoint(e));
        }
        assert_eq!(stats.edge_degree_sum(&s), g.edge_degree_sum());
    }

    #[test]
    fn uses_exactly_one_pass() {
        let g = graph();
        let s = PassCounter::new(MemoryStream::from_graph(&g, StreamOrder::AsGiven));
        let _ = StreamStats::compute(&s);
        assert_eq!(s.passes(), 1);
    }

    #[test]
    fn retained_words_scale_with_n() {
        let g = graph();
        let s = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        let stats = StreamStats::compute(&s);
        assert_eq!(stats.retained_words(), 5 + 2);
    }

    #[test]
    fn works_on_edgeless_stream() {
        let s = MemoryStream::from_edges(3, Vec::<Edge>::new(), StreamOrder::AsGiven);
        let stats = StreamStats::compute(&s);
        assert_eq!(stats.num_edges, 0);
        assert_eq!(stats.max_degree(), 0);
    }
}
