//! Weight-proportional reservoir sampling (Chao's procedure).
//!
//! The ideal estimator of Section 4 samples an edge with probability
//! `d_e / d_E` in a single pass. With a degree oracle the weight `d_e` is
//! known on arrival, so Chao's unequal-probability reservoir procedure
//! applies: keep one slot, and replace it by the incoming item with
//! probability `w_item / W_so_far`. The slot is then distributed exactly
//! proportionally to weight over the prefix seen so far.
//!
//! [`WeightedSamplerBank`] runs `k` independent single-slot samplers over the
//! same pass, producing `k` i.i.d. weight-proportional samples — the form
//! the analysis of Algorithm 1 needs.

use rand::Rng;

/// A single-slot weight-proportional reservoir sampler.
#[derive(Debug, Clone)]
pub struct WeightedReservoirSampler<T> {
    slot: Option<(T, f64)>,
    total_weight: f64,
}

impl<T: Clone> WeightedReservoirSampler<T> {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        WeightedReservoirSampler {
            slot: None,
            total_weight: 0.0,
        }
    }

    /// Observes an item with the given non-negative weight.
    pub fn observe<R: Rng>(&mut self, item: T, weight: f64, rng: &mut R) {
        debug_assert!(
            weight >= 0.0 && weight.is_finite(),
            "weight must be finite and >= 0"
        );
        if weight <= 0.0 {
            return;
        }
        self.total_weight += weight;
        let replace = match self.slot {
            None => true,
            Some(_) => rng.gen_range(0.0..1.0) < weight / self.total_weight,
        };
        if replace {
            self.slot = Some((item, weight));
        }
    }

    /// The sampled item and its weight (None if only zero-weight items were
    /// observed).
    pub fn sample(&self) -> Option<(&T, f64)> {
        self.slot.as_ref().map(|(t, w)| (t, *w))
    }

    /// Total weight observed so far.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }
}

impl<T: Clone> Default for WeightedReservoirSampler<T> {
    fn default() -> Self {
        WeightedReservoirSampler::new()
    }
}

/// A bank of `k` independent single-slot weighted samplers sharing one pass.
#[derive(Debug, Clone)]
pub struct WeightedSamplerBank<T> {
    samplers: Vec<WeightedReservoirSampler<T>>,
}

impl<T: Clone> WeightedSamplerBank<T> {
    /// Creates a bank of `k` independent samplers.
    pub fn new(k: usize) -> Self {
        WeightedSamplerBank {
            samplers: vec![WeightedReservoirSampler::new(); k],
        }
    }

    /// Observes an item in every sampler (independent coin flips).
    pub fn observe<R: Rng>(&mut self, item: T, weight: f64, rng: &mut R) {
        for s in self.samplers.iter_mut() {
            s.observe(item.clone(), weight, rng);
        }
    }

    /// The samples held by the bank (skipping samplers that saw only
    /// zero-weight items).
    pub fn samples(&self) -> Vec<(T, f64)> {
        self.samplers
            .iter()
            .filter_map(|s| s.sample().map(|(t, w)| (t.clone(), w)))
            .collect()
    }

    /// Number of samplers in the bank.
    pub fn len(&self) -> usize {
        self.samplers.len()
    }

    /// Whether the bank has no samplers.
    pub fn is_empty(&self) -> bool {
        self.samplers.is_empty()
    }

    /// Retained machine words (≈ 2 per slot: item + weight).
    pub fn retained_words(&self) -> u64 {
        2 * self.samplers.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_item_is_always_selected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = WeightedReservoirSampler::new();
        s.observe("a", 3.0, &mut rng);
        assert_eq!(s.sample().unwrap().0, &"a");
        assert_eq!(s.total_weight(), 3.0);
    }

    #[test]
    fn zero_weight_items_are_ignored() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = WeightedReservoirSampler::new();
        s.observe("zero", 0.0, &mut rng);
        assert!(s.sample().is_none());
        s.observe("real", 1.0, &mut rng);
        assert_eq!(s.sample().unwrap().0, &"real");
    }

    #[test]
    fn selection_probabilities_are_proportional_to_weight() {
        // Items with weights 1, 2, 7 → selection probabilities 0.1, 0.2, 0.7.
        let weights = [1.0f64, 2.0, 7.0];
        let mut hits = [0u32; 3];
        let trials = 20_000u64;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = WeightedReservoirSampler::new();
            for (i, &w) in weights.iter().enumerate() {
                s.observe(i, w, &mut rng);
            }
            hits[*s.sample().unwrap().0] += 1;
        }
        let p: Vec<f64> = hits.iter().map(|&h| h as f64 / trials as f64).collect();
        assert!((p[0] - 0.1).abs() < 0.02, "{p:?}");
        assert!((p[1] - 0.2).abs() < 0.02, "{p:?}");
        assert!((p[2] - 0.7).abs() < 0.02, "{p:?}");
    }

    #[test]
    fn order_does_not_bias_selection() {
        let trials = 20_000u64;
        let mut hits_first = 0u32;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = WeightedReservoirSampler::new();
            // Equal weights in two different positions.
            s.observe("x", 5.0, &mut rng);
            s.observe("y", 5.0, &mut rng);
            if *s.sample().unwrap().0 == "x" {
                hits_first += 1;
            }
        }
        let p = hits_first as f64 / trials as f64;
        assert!((p - 0.5).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn bank_produces_k_samples() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut bank = WeightedSamplerBank::new(8);
        for i in 0..50u32 {
            bank.observe(i, 1.0 + (i % 3) as f64, &mut rng);
        }
        assert_eq!(bank.len(), 8);
        assert!(!bank.is_empty());
        assert_eq!(bank.samples().len(), 8);
        assert_eq!(bank.retained_words(), 16);
    }

    #[test]
    fn empty_bank() {
        let bank: WeightedSamplerBank<u32> = WeightedSamplerBank::new(0);
        assert!(bank.is_empty());
        assert!(bank.samples().is_empty());
    }
}
