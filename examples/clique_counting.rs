//! Example: the ℓ-clique extension of Section 7 (Conjecture 7.1).
//!
//! Builds a random 5-tree (degeneracy exactly 5), counts its triangles, K4s
//! and K5s exactly with the kClist counters, and then estimates the same
//! quantities from an edge stream with the conjectured
//! `Õ(mκ^{ℓ−2}/T)`-space streaming estimator.
//!
//! Run with: `cargo run --release --example clique_counting`

use degentri::cliques::{count_cliques, CliqueEstimator, CliqueEstimatorConfig};
use degentri::graph::degeneracy::degeneracy;
use degentri::prelude::*;

fn main() {
    let n = 3000;
    let k = 5;
    let graph = degentri::gen::random_ktree(n, k, 42).expect("valid k-tree parameters");
    let kappa = degeneracy(&graph);
    println!(
        "random {k}-tree: n = {}, m = {}, degeneracy = {kappa}",
        graph.num_vertices(),
        graph.num_edges()
    );

    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(7));
    for l in [3usize, 4, 5] {
        let exact = count_cliques(&graph, l);
        let config = CliqueEstimatorConfig::builder(l)
            .epsilon(0.15)
            .kappa(kappa)
            .clique_lower_bound(exact.max(1) / 2)
            .copies(5)
            .seed(11 + l as u64)
            .max_samples(50_000)
            .build();
        let outcome = CliqueEstimator::new(config)
            .run(&stream)
            .expect("stream is non-empty");
        let error = outcome.relative_error(exact) * 100.0;
        println!(
            "l = {l}: exact = {exact:>8}, estimate = {:>10.0}, error = {error:>5.1}%, \
             passes = {}, retained words = {}",
            outcome.estimate, outcome.passes, outcome.space.peak_words
        );
    }
    println!(
        "(conjectured space bound mκ^(l-2)/T grows with l; the estimator's sample sizes follow it)"
    );
}
