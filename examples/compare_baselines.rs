//! Table-1-style comparison on a single graph.
//!
//! Runs every implemented streaming algorithm — the degeneracy-aware
//! estimator of the paper plus the prior-work baselines — on the same
//! preferential-attachment stream, and prints estimate, error, passes and
//! retained space for each.
//!
//! Run with: `cargo run --release --example compare_baselines`

use degentri::baselines::*;
use degentri::graph::properties::GraphProperties;
use degentri::prelude::*;

fn main() {
    let graph = degentri::gen::barabasi_albert(15_000, 7, 3).expect("generator parameters valid");
    let props = GraphProperties::compute(&graph);
    println!(
        "graph: BA(n = {}, k = 7)  m = {}  max-deg = {}  degeneracy = {}  T = {}\n",
        props.num_vertices, props.num_edges, props.max_degree, props.degeneracy, props.triangles
    );

    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(9));
    let t_hint = props.triangles / 2;

    // The paper's estimator (multi-copy, median of means).
    let config = EstimatorConfig::builder()
        .epsilon(0.1)
        .kappa(props.degeneracy)
        .triangle_lower_bound(t_hint)
        .r_constant(30.0)
        .inner_constant(60.0)
        .assignment_constant(30.0)
        .copies(9)
        .seed(5)
        .build();
    let ours = estimate_triangles(&stream, &config).expect("non-empty stream");

    println!(
        "{:<48} {:>12} {:>8} {:>7} {:>14}",
        "algorithm", "estimate", "err %", "passes", "space (words)"
    );
    println!(
        "{:<48} {:>12.0} {:>8.1} {:>7} {:>14}",
        "this paper (mk/T, 6-pass)",
        ours.estimate,
        100.0 * ours.relative_error(props.triangles),
        ours.passes_per_copy,
        ours.space.peak_words
    );

    let baselines: Vec<Box<dyn StreamingTriangleCounter>> = vec![
        Box::new(DegeneracyObliviousEstimator::new(0.1, t_hint, 10.0, 5)),
        Box::new(VertexSamplingEstimator::for_triangle_hint(t_hint, 4.0, 5)),
        Box::new(NeighborhoodSampler::new(60_000, 5)),
        Box::new(JhaWedgeSampler::new(4000, 40_000, 5)),
        Box::new(BuriolEstimator::new(120_000, 5)),
        Box::new(TriestImpr::new(props.num_edges / 4, 5)),
        Box::new(ExactStreamCounter::new()),
    ];

    for b in &baselines {
        let out = b.estimate(&stream);
        println!(
            "{:<48} {:>12.0} {:>8.1} {:>7} {:>14}",
            format!("{} [{}]", b.name(), b.space_bound()),
            out.estimate,
            100.0 * out.relative_error(props.triangles),
            out.passes,
            out.space.peak_words
        );
    }

    println!("\nthe degeneracy-aware estimator reaches comparable accuracy with far less");
    println!("retained state than the mn/T, mD/T and m/sqrt(T) baselines; the full sweep");
    println!("over graph families is experiment E1 in EXPERIMENTS.md.");
}
