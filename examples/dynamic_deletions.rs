//! Example: triangle counting when edges can be deleted.
//!
//! Streams a preferential-attachment graph three times: insert-only, with
//! heavy churn (extra edges inserted and later deleted), and with a final
//! deletion wave that removes every edge touching the highest-degree hub.
//! The ℓ0-sampling estimator of `degentri-dynamic` tracks the *surviving*
//! graph in all three cases, which is exactly what an insert-only estimator
//! cannot do.
//!
//! Run with: `cargo run --release --example dynamic_deletions`

use degentri::dynamic::{DynamicEstimatorConfig, DynamicExactCounter, DynamicTriangleEstimator};
use degentri::graph::degeneracy::degeneracy;
use degentri::graph::triangles::count_triangles;
use degentri::prelude::*;

fn main() {
    let graph = degentri::gen::barabasi_albert(1200, 6, 3).expect("valid BA parameters");
    let kappa = degeneracy(&graph).max(1);
    let exact = count_triangles(&graph);
    println!(
        "base graph: n = {}, m = {}, degeneracy = {kappa}, triangles = {exact}",
        graph.num_vertices(),
        graph.num_edges()
    );

    // The hub with the largest degree; deleting its edges removes many triangles.
    let hub = graph
        .vertices()
        .max_by_key(|&v| graph.degree(v))
        .expect("graph has vertices");

    let scenarios: Vec<(&str, DynamicMemoryStream)> = vec![
        ("insert-only", DynamicMemoryStream::insert_only(&graph, 5)),
        ("50% churn", DynamicMemoryStream::with_churn(&graph, 0.5, 7)),
        (
            "delete the hub's edges",
            DynamicMemoryStream::insert_then_delete(&graph, |e| !e.contains(hub), 9),
        ),
    ];

    for (label, stream) in scenarios {
        let truth = DynamicExactCounter::new().count(&stream);
        let config = DynamicEstimatorConfig::new(kappa, truth.triangles.max(1) / 2)
            .with_epsilon(0.25)
            .with_copies(5)
            .with_seed(13)
            .with_constants(1.0, 2.0)
            .with_max_samples(1500);
        let outcome = DynamicTriangleEstimator::new(config)
            .run(&stream)
            .expect("surviving graph is non-empty");
        println!(
            "{label:>24}: updates = {:>6} ({} deletions), surviving T = {:>6}, \
             estimate = {:>8.0}, error = {:>5.1}%, words = {}",
            stream.num_updates(),
            stream.num_deletions(),
            truth.triangles,
            outcome.estimate,
            outcome.relative_error(truth.triangles) * 100.0,
            outcome.space.peak_words,
        );
    }
}
