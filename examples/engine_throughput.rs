//! Engine throughput: the Table-1 (E1-style) job batch at increasing worker
//! counts over one shared graph snapshot, plus a sharded-vs-copy-only
//! scheduling comparison.
//!
//! Generates a preferential-attachment graph with ≥ 10^5 edges, submits the
//! paper's estimator plus a spread of baselines as one engine job batch,
//! and reports wall time, streaming throughput, worker utilization and the
//! speedup over the single-worker run. A second section runs a *narrow*
//! job (fewer copies than workers) twice — once restricted to copy-level
//! parallelism, once with intra-copy sharded passes — and reports both
//! edges/sec. Estimates are bit-identical across worker counts and
//! scheduling modes (asserted below) — the engine's contract is that
//! scheduling changes wall-clock time only.
//!
//!   cargo run --release --example engine_throughput
//!   WORKERS=8 cargo run --release --example engine_throughput   # extend the sweep

use degentri::engine::{Engine, EngineConfig, EngineReport, JobSpec};
use degentri::prelude::*;

fn submit_table1_jobs(engine: &mut Engine, m: usize, t_hint: u64, seed: u64) {
    let config = EstimatorConfig::builder()
        .epsilon(0.1)
        .kappa(8)
        .triangle_lower_bound(t_hint.max(1))
        .r_constant(20.0)
        .inner_constant(40.0)
        .assignment_constant(10.0)
        .copies(8)
        .seed(seed)
        .try_build()
        .expect("example configuration is valid");
    engine.submit(JobSpec::main("this paper (6-pass)", config.clone()));
    engine.submit(JobSpec::ideal("ideal (3-pass, oracle)", config));
    engine.submit(JobSpec::baseline(
        "triest-impr",
        Box::new(degentri::baselines::TriestImpr::new((m / 4).max(16), seed)),
    ));
    engine.submit(JobSpec::baseline(
        "exact (store all)",
        Box::new(degentri::baselines::ExactStreamCounter::new()),
    ));
}

fn main() {
    let n = 13_000;
    let graph = degentri::gen::barabasi_albert(n, 8, 1).expect("valid BA parameters");
    let exact = degentri::graph::triangles::count_triangles(&graph);
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(1));
    let m = EdgeStream::num_edges(&stream);
    assert!(m >= 100_000, "the instance must have at least 1e5 edges");
    println!("graph: barabasi_albert(n = {n}, k = 8) — m = {m} edges, T = {exact} triangles");

    let max_workers: usize = std::env::var("WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let mut sweep: Vec<usize> = vec![1, 2, 4];
    if !sweep.contains(&max_workers) {
        sweep.push(max_workers);
    }
    sweep.retain(|&w| w >= 1);
    sweep.sort_unstable();

    let mut reports: Vec<(usize, EngineReport)> = Vec::new();
    for &workers in &sweep {
        let mut engine = Engine::new(EngineConfig::with_workers(workers));
        submit_table1_jobs(&mut engine, m, exact / 2, 42);
        let report = engine.run(&stream).expect("engine run succeeds");
        reports.push((workers, report));
    }

    // The engine's determinism contract: identical estimates at every
    // worker count.
    let reference = &reports[0].1;
    for (workers, report) in &reports[1..] {
        for (job, ref_job) in report.jobs.iter().zip(&reference.jobs) {
            assert_eq!(
                job.estimation().estimate.to_bits(),
                ref_job.estimation().estimate.to_bits(),
                "job {} differs at {workers} workers",
                job.label
            );
        }
    }

    println!("\nper-job estimates (identical at every worker count):");
    for job in &reference.jobs {
        let err = 100.0 * job.estimation().relative_error(exact);
        println!(
            "  {:<24} estimate {:>12.0}  err {err:>5.1}%  passes {}  words {}",
            job.label,
            job.estimation().estimate,
            job.estimation().passes_per_copy,
            job.estimation().space.peak_words
        );
    }

    println!("\nworkers  wall s   edges/s      utilization  speedup");
    let base_wall = reference.stats.wall_seconds;
    for (workers, report) in &reports {
        let s = &report.stats;
        println!(
            "{workers:>7}  {:>6.3}  {:>11.0}  {:>10.0}%  {:>6.2}x",
            s.wall_seconds,
            s.edges_per_second,
            100.0 * s.worker_utilization,
            base_wall / s.wall_seconds.max(1e-12)
        );
    }
    // ---- Sharded vs copy-only scheduling of a narrow job. ----------------
    // Two copies on `max_workers` workers: copy-level parallelism can use
    // at most two of them; intra-copy sharding folds the spare workers into
    // the order-insensitive passes instead.
    let narrow = EstimatorConfig::builder()
        .epsilon(0.1)
        .kappa(8)
        .triangle_lower_bound((exact / 2).max(1))
        .r_constant(20.0)
        .inner_constant(40.0)
        .assignment_constant(10.0)
        .copies(2)
        .seed(7)
        .try_build()
        .expect("example configuration is valid");
    let sweep_workers = max_workers.max(4);
    let run_mode = |sharding: bool| {
        let mut engine = Engine::new(
            EngineConfig::builder()
                .workers(sweep_workers)
                .intra_task_sharding(sharding)
                .try_build()
                .expect("example engine configuration is valid"),
        );
        engine.submit(JobSpec::main("narrow six-pass", narrow.clone()));
        engine.run(&stream).expect("engine run succeeds")
    };
    let copy_only = run_mode(false);
    let sharded = run_mode(true);
    assert_eq!(
        copy_only.jobs[0].estimation().estimate.to_bits(),
        sharded.jobs[0].estimation().estimate.to_bits(),
        "sharded scheduling must be bit-identical to copy-only"
    );
    println!("\nsharded vs copy-only (2 copies on {sweep_workers} workers):");
    for (mode, report) in [("copy-only", &copy_only), ("sharded", &sharded)] {
        let s = &report.stats;
        println!(
            "  {mode:<10} wall {:>6.3}s  {:>11.0} edges/s  intra-copy workers {}",
            s.wall_seconds, s.edges_per_second, s.intra_task_workers
        );
    }

    let cores = degentri::engine::config::available_workers();
    println!(
        "\n(measured on {cores} available core(s); speedup tracks min(workers, cores, runnable tasks),\n and intra-copy sharding needs spare physical cores to show a wall-clock win)"
    );
}
