//! The Section 6 lower-bound gadgets in action.
//!
//! The paper proves that `Ω(mκ/T)` space is necessary by exhibiting a family
//! of graphs — built from set-disjointness instances — on which triangle
//! *detection* already requires that much space. This example constructs
//! YES (triangle-free) and NO (≥ p²q triangles) instances, and shows how the
//! fixed-memory TRIÈST baseline's ability to distinguish them decays as its
//! budget drops below `mκ/T`, while it distinguishes them comfortably above.
//!
//! Run with: `cargo run --release --example lower_bound_instances`

use degentri::baselines::{StreamingTriangleCounter, TriestImpr};
use degentri::gen::LowerBoundGadget;
use degentri::graph::degeneracy::degeneracy;
use degentri::graph::triangles::count_triangles;
use degentri::prelude::*;

fn main() {
    // Parameters of Theorem 6.3: degeneracy κ = p, T = κ^r with r = 3.
    let (kappa, r) = (12usize, 3u32);
    let (p, q) = LowerBoundGadget::parameters_for(kappa, r);
    let universe = 90usize;

    let yes = LowerBoundGadget::yes_instance(p, q, universe, 1).expect("valid gadget");
    let no = LowerBoundGadget::no_instance(p, q, universe, 1, 1).expect("valid gadget");

    let m = no.graph.num_edges();
    let t = count_triangles(&no.graph);
    println!("lower-bound gadget family (Section 6):");
    println!(
        "  YES instance: n = {}, m = {}, k = {}, T = {}",
        yes.graph.num_vertices(),
        yes.graph.num_edges(),
        degeneracy(&yes.graph),
        count_triangles(&yes.graph)
    );
    println!(
        "  NO  instance: n = {}, m = {}, k = {}, T = {} (promised >= {})",
        no.graph.num_vertices(),
        m,
        degeneracy(&no.graph),
        t,
        no.guaranteed_triangles()
    );
    let critical = (m as f64 * kappa as f64 / t.max(1) as f64).ceil() as usize;
    println!("  critical space mk/T ~= {critical} words\n");

    println!(
        "{:>14} | {:>12} | {:>12} | separates?",
        "budget (edges)", "NO estimate", "YES estimate"
    );
    for factor in [8.0, 4.0, 2.0, 1.0, 0.5, 0.25] {
        let budget = ((critical as f64 * factor).ceil() as usize).max(4);
        // Average a few runs so the demo output is stable.
        let runs = 9;
        let mut separations = 0usize;
        let mut no_est_sum = 0.0;
        let mut yes_est_sum = 0.0;
        for seed in 0..runs as u64 {
            let no_stream = MemoryStream::from_graph(&no.graph, StreamOrder::UniformRandom(seed));
            let yes_stream = MemoryStream::from_graph(&yes.graph, StreamOrder::UniformRandom(seed));
            let no_out = TriestImpr::new(budget, seed).estimate(&no_stream);
            let yes_out = TriestImpr::new(budget, seed).estimate(&yes_stream);
            no_est_sum += no_out.estimate;
            yes_est_sum += yes_out.estimate;
            if no_out.estimate > t as f64 / 2.0 && yes_out.estimate < t as f64 / 2.0 {
                separations += 1;
            }
        }
        println!(
            "{:>14} | {:>12.0} | {:>12.0} | {}/{} runs",
            budget,
            no_est_sum / runs as f64,
            yes_est_sum / runs as f64,
            separations,
            runs
        );
    }
    println!("\nabove the mk/T threshold the instances separate reliably; below it the");
    println!("estimates collapse towards each other -- the behaviour the lower bound predicts.");
}
