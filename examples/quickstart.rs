//! Quickstart: estimate the triangle count of a small synthetic social
//! network and compare it against the exact count.
//!
//! Run with: `cargo run --release --example quickstart`

use degentri::prelude::*;

fn main() {
    // 1. Build a graph. Preferential-attachment graphs are the paper's
    //    flagship "natural" bounded-degeneracy class.
    let n = 20_000;
    let attach = 6;
    let graph = degentri::gen::barabasi_albert(n, attach, 42).expect("generator parameters valid");

    // 2. Ground truth (exact, in-memory): T, κ, m.
    let exact = degentri::graph::triangles::count_triangles(&graph);
    let kappa = degentri::graph::degeneracy::degeneracy(&graph);
    println!(
        "graph: n = {n}, m = {}, κ = {kappa}, T = {exact}",
        graph.num_edges()
    );

    // 3. Present the graph as an arbitrary-order edge stream.
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(7));

    // 4. Configure the estimator: ε, the degeneracy bound and a triangle
    //    lower bound (both standard advice parameters for this literature).
    let config = EstimatorConfig::builder()
        .epsilon(0.1)
        .kappa(kappa)
        .triangle_lower_bound(exact / 2)
        .r_constant(30.0)
        .inner_constant(60.0)
        .assignment_constant(30.0)
        .copies(9)
        .seed(1)
        .build();

    // 5. Run the six-pass estimator.
    let result = estimate_triangles(&stream, &config).expect("stream is non-empty");

    println!(
        "estimate = {:.0}  (relative error {:.1}%)",
        result.estimate,
        100.0 * result.relative_error(exact)
    );
    println!(
        "passes per copy = {}, copies = {}, retained state = {} words ({} KiB)",
        result.passes_per_copy,
        result.copies,
        result.space.peak_words,
        result.space.peak_bytes() / 1024
    );
    println!(
        "for comparison, storing the whole stream would take >= {} words",
        graph.num_edges()
    );
}
