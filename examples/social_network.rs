//! The paper's motivating scenario: triangle counting over a large,
//! skewed-degree "social network" stream, where the degeneracy is tiny even
//! though the maximum degree is huge.
//!
//! The example builds a Chung–Lu power-law graph, reports its structural
//! parameters (m, Δ, κ, T, clustering), then runs the degeneracy-aware
//! estimator and contrasts its space with the predictions for the prior
//! `m∆/T` and `m/√T` approaches.
//!
//! Run with: `cargo run --release --example social_network`

use degentri::core::theory::GraphParameters;
use degentri::graph::properties::GraphProperties;
use degentri::prelude::*;

fn main() {
    let n = 30_000;
    let graph = degentri::gen::chung_lu(n, 2.1, 300.0, 7).expect("generator parameters valid");
    let props = GraphProperties::compute(&graph);

    println!("synthetic social network (Chung–Lu power law, gamma = 2.1)");
    println!("  n  = {}", props.num_vertices);
    println!("  m  = {}", props.num_edges);
    println!("  max degree = {}", props.max_degree);
    println!("  degeneracy = {}", props.degeneracy);
    println!("  triangles  = {}", props.triangles);
    println!("  global clustering = {:.4}", props.global_clustering);
    println!(
        "  T/k^2 = {:.1}   (the paper's premise T = Omega(k^2) for real graphs)",
        props.triangle_to_degeneracy_squared_ratio()
    );

    let params = GraphParameters::new(
        props.num_vertices,
        props.num_edges,
        props.triangles,
        props.degeneracy,
        props.max_degree,
    );
    println!("\npredicted space scalings (words, up to constants):");
    println!(
        "  this paper   mk/T    = {:>12.1}",
        params.bound_m_kappa_over_t()
    );
    println!(
        "  prior        m/sqrtT = {:>12.1}",
        params.bound_m_over_sqrt_t()
    );
    println!(
        "  prior        m^1.5/T = {:>12.1}",
        params.bound_m_three_halves_over_t()
    );
    println!(
        "  Pavan et al. mD/T    = {:>12.1}",
        params.bound_m_delta_over_t()
    );

    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(3));
    let config = EstimatorConfig::builder()
        .epsilon(0.1)
        .kappa(props.degeneracy)
        .triangle_lower_bound(props.triangles.max(1) / 2)
        .r_constant(30.0)
        .inner_constant(60.0)
        .assignment_constant(30.0)
        .copies(9)
        .seed(11)
        .build();
    let result = estimate_triangles(&stream, &config).expect("non-empty stream");

    println!("\nsix-pass degeneracy-aware estimator:");
    println!("  estimate        = {:.0}", result.estimate);
    println!(
        "  relative error  = {:.1}%",
        100.0 * result.relative_error(props.triangles)
    );
    println!("  retained state  = {} words", result.space.peak_words);
    println!(
        "  vs. storing the stream: {:.1}x smaller",
        props.num_edges as f64 / result.space.peak_words.max(1) as f64
    );
}
