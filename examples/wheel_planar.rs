//! The Section 1.1 wheel-graph illustration.
//!
//! The wheel graph has `m = T = Θ(n)` and degeneracy 3, so the paper's
//! `mκ/T` bound is a constant (polylogarithmic space), while every prior
//! bound in Table 1 is `Ω(√n)`. This example sweeps the wheel size and
//! prints the measured retained state of the degeneracy-aware estimator next
//! to the `m/√T` and `m^{3/2}/T` predictions, showing one stays flat while
//! the others grow.
//!
//! Run with: `cargo run --release --example wheel_planar`

use degentri::core::theory::GraphParameters;
use degentri::prelude::*;

fn main() {
    println!(
        "{:>9} {:>9} {:>9} | {:>14} | {:>12} {:>12}",
        "n", "m", "T", "measured words", "m/sqrt(T)", "m^1.5/T"
    );
    for exponent in 11..=17u32 {
        let n = 1usize << exponent;
        let graph = degentri::gen::wheel(n).expect("wheel size is valid");
        let m = graph.num_edges();
        let t = degentri::graph::triangles::count_triangles(&graph);

        let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(5));
        let config = EstimatorConfig::builder()
            .epsilon(0.15)
            .kappa(3)
            .triangle_lower_bound(t / 2)
            .r_constant(20.0)
            .inner_constant(40.0)
            .assignment_constant(20.0)
            .copies(5)
            .seed(exponent as u64)
            .build();
        let result = estimate_triangles(&stream, &config).expect("non-empty stream");

        let params = GraphParameters::new(n, m, t, 3, n - 1);
        println!(
            "{:>9} {:>9} {:>9} | {:>14} | {:>12.0} {:>12.0}   (err {:>5.1}%)",
            n,
            m,
            t,
            result.space.peak_words,
            params.bound_m_over_sqrt_t(),
            params.bound_m_three_halves_over_t(),
            100.0 * result.relative_error(t)
        );
    }
    println!(
        "\nthe measured column stays (near) flat while both prior bounds grow like sqrt(n) --"
    );
    println!("this is exactly the separation claimed in Section 1.1 of the paper.");
}
