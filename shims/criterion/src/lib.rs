//! Offline stand-in for the subset of the [`criterion`] benchmarking API the
//! workspace's `benches/` use: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's full statistical machinery, each benchmark closure
//! is warmed up once and then timed over a small fixed number of iterations;
//! the mean wall time (and throughput, when declared) is printed. That keeps
//! `cargo bench` useful for the workspace's relative comparisons without the
//! crates.io dependency.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of a benchmark, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations (plus one warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// API-compatibility no-op (the real crate reads CLI arguments here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            iterations: 3,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    iterations: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement iterations (mapped from criterion's
    /// statistical sample size to a small fixed count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u64).clamp(1, 10);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// API-compatibility no-op (criterion's measurement-time hint).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn report(&self, id: &BenchmarkId, iterations: u64, elapsed: Duration) {
        let per_iter = elapsed.as_secs_f64() / iterations.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  ({:.0} elem/s)", n as f64 / per_iter),
            Some(Throughput::Bytes(n)) => format!("  ({:.0} B/s)", n as f64 / per_iter),
            None => String::new(),
        };
        let label = if self.name.is_empty() {
            id.name.clone()
        } else {
            format!("{}/{}", self.name, id.name)
        };
        println!("  {label}: {:.3} ms/iter{rate}", per_iter * 1e3);
    }

    /// Times one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, b.iterations, b.elapsed);
        self
    }

    /// Times one benchmark closure that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, b.iterations, b.elapsed);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function("trivial", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs >= 2);
    }
}
