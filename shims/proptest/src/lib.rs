//! Offline stand-in for the subset of the [`proptest`] crate API this
//! workspace uses: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`Just`], [`collection::vec`],
//! [`ProptestConfig`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Semantics are simplified relative to real proptest: each test runs a
//! configured number of randomized cases from a deterministic per-test seed,
//! assertions panic immediately (no shrinking), and `prop_assume!` skips the
//! current case. That preserves what the workspace's property tests check —
//! structural invariants over randomized inputs — without the crates.io
//! dependency.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to drive the strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample an empty range");
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Creates the deterministic generator for a named property test.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(h)
}

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a dependent strategy from it, and samples
    /// that strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

pub mod collection {
    //! Collection strategies ([`vec`]).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length.
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors with lengths in `size` and
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over randomized inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let mut __run = move || { $body };
                    __run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current randomized case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    //! The commonly used items, mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(a in 1usize..10, b in 0u64..5, f in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_vec_and_assume(n in 2u32..=8) {
            prop_assume!(n > 2);
            let strat = (Just(n), collection::vec((0..n, 0..n), 0..=5usize));
            let (m, pairs) = crate::Strategy::generate(&strat.prop_map(|x| x), &mut crate::test_rng("inner"));
            prop_assert_eq!(m, n);
            prop_assert!(pairs.len() <= 5);
            for (x, y) in pairs {
                prop_assert!(x < n && y < n);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("same");
        let mut b = crate::test_rng("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
