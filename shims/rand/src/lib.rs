//! Offline stand-in for the subset of the [`rand`] crate API this workspace
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to crates.io, so this local shim
//! provides the same call-site API backed by a xoshiro256** generator seeded
//! through SplitMix64 — the standard high-quality small PRNG construction.
//! Everything is deterministic given the seed, which is all the workspace
//! requires (every estimator and generator is seed-reproducible).
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the "standard" distribution by
/// [`Rng::gen`]: `f64` in `[0, 1)`, full-range integers, and `bool`.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range from which a uniform value can be drawn (the shim analogue of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire): uniform in `[0, span)`.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension methods over any [`RngCore`] (the shim analogue of
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range`. Panics on empty ranges.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    //! Concrete generators ([`StdRng`]).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64. (The real `rand::rngs::StdRng` is a
    /// different algorithm; only seed-reproducibility within this workspace
    /// is relied upon, not cross-crate stream compatibility.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    /// Alias: the shim's small generator is the same as its standard one.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related helpers ([`SliceRandom`]).

    use super::{Rng, RngCore};

    /// Extension trait providing uniform shuffling of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniform random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&y));
            let z = rng.gen_range(-4i64..5);
            assert!((-4..5).contains(&z));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}
