//! Offline stand-in for the [`rustc-hash`] crate: the Fx hash function and
//! the `FxHashMap` / `FxHashSet` aliases the workspace uses. Fx hashing is a
//! fast non-cryptographic multiply-rotate hash; being deterministic (no
//! per-process random state) it also keeps every run of the estimators
//! reproducible.
//!
//! [`rustc-hash`]: https://crates.io/crates/rustc-hash

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// A `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const ROTATE: u32 = 5;
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m[&1], 10);
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((3, 4)));
        assert!(!s.insert((3, 4)));
        assert!(s.contains(&(3, 4)));
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let hash_one = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(hash_one(12345), hash_one(12345));
        let distinct: std::collections::HashSet<u64> = (0..1000u64).map(hash_one).collect();
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn byte_writes_differ_by_length() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abc\0");
        assert_ne!(a.finish(), b.finish());
    }
}
