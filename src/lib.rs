//! # degentri — degeneracy-parameterized streaming triangle counting
//!
//! An open-source reproduction of *"How the Degeneracy Helps for Triangle
//! Counting in Graph Streams"* (Suman K. Bera and C. Seshadhri, PODS 2020):
//! a constant-pass, arbitrary-order streaming algorithm that
//! `(1 ± ε)`-approximates the triangle count `T` of a graph with `m` edges
//! and degeneracy `κ` in `Õ(mκ/T)` words of space, together with every
//! substrate needed to run and evaluate it:
//!
//! * [`graph`] — CSR graphs, core decomposition / degeneracy, exact triangle
//!   counting (ground truth);
//! * [`gen`] — seeded graph generators, including the paper's wheel and
//!   triangle-book examples and the Section 6 lower-bound gadgets;
//! * [`stream`] — multi-pass edge streams, reservoir sampling, pass and
//!   word-level space accounting;
//! * [`core`] — the paper's estimators (warm-up Algorithm 1 and the six-pass
//!   Algorithm 2) and its triangle-to-edge assignment procedure
//!   (Algorithm 3);
//! * [`baselines`] — the prior streaming algorithms of the paper's Table 1,
//!   on the same substrate, for apples-to-apples comparison;
//! * [`cliques`] — the ℓ-clique generalization conjectured in Section 7
//!   (exact kClist counters plus the streaming estimator);
//! * [`sketch`] — linear sketches (k-wise hashing, CountMin, CountSketch,
//!   ℓ0 sampling) for turnstile streams;
//! * [`dynamic`] — the insert/delete (dynamic-stream) port of the estimator
//!   built on those sketches;
//! * [`engine`] — the parallel, batched estimation engine: copy-parallel
//!   execution of the estimators and a concurrent job scheduler over a
//!   shared stream snapshot;
//! * [`obs`] — first-party observability: lock-free per-worker metric
//!   lanes (counters, span timers, log2 histograms) and the
//!   [`RunReport`](obs::RunReport) run → cohort → pass → shard breakdown
//!   the engine assembles when recording is on.
//!
//! # Quickstart
//!
//! The umbrella crate simply re-exports the pieces and the most common entry
//! points so applications can depend on a single crate:
//!
//! ```
//! use degentri::prelude::*;
//!
//! let graph = degentri::gen::wheel(2000).unwrap();
//! let exact = degentri::graph::triangles::count_triangles(&graph);
//! let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(1));
//! let config = EstimatorConfig::builder()
//!     .epsilon(0.15)
//!     .kappa(3)
//!     .triangle_lower_bound(exact / 2)
//!     .seed(7)
//!     .build();
//! let estimate = estimate_triangles(&stream, &config).unwrap();
//! assert!(estimate.relative_error(exact) < 0.5);
//! ```
//!
//! # Quickstart, at scale: the engine path
//!
//! [`estimate_triangles`] runs the independent estimator copies one at a
//! time. The engine runs the same copies on a worker pool — bit-identical
//! results, wall-clock time divided by the available parallelism — and
//! schedules whole *jobs* (different configurations, the oracle estimator,
//! any Table-1 baseline) concurrently over one shared snapshot:
//!
//! ```
//! use degentri::engine::{parallel_estimate_triangles, Engine, EngineConfig, JobSpec};
//! use degentri::prelude::*;
//!
//! let graph = degentri::gen::wheel(2000).unwrap();
//! let exact = degentri::graph::triangles::count_triangles(&graph);
//! let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(1));
//! let config = EstimatorConfig::builder()
//!     .epsilon(0.15)
//!     .kappa(3)
//!     .triangle_lower_bound(exact / 2)
//!     .seed(7)
//!     .try_build()
//!     .unwrap();
//!
//! // Drop-in parallel replacement for `estimate_triangles`:
//! let fast = parallel_estimate_triangles(&stream, &config, 4).unwrap();
//! assert_eq!(
//!     fast.copy_estimates,
//!     estimate_triangles(&stream, &config).unwrap().copy_estimates,
//! );
//!
//! // Many workloads, one shared snapshot, one worker pool:
//! let mut engine = Engine::new(EngineConfig::with_workers(4));
//! engine.submit(JobSpec::main("eps 0.15", config.clone()));
//! engine.submit(JobSpec::ideal("oracle model", config));
//! engine.submit(JobSpec::baseline(
//!     "triest",
//!     Box::new(degentri::baselines::TriestImpr::new(512, 3)),
//! ));
//! let report = engine.run(&stream).unwrap();
//! assert_eq!(report.jobs.len(), 3);
//! assert!(report.stats.edges_per_second > 0.0);
//! ```
//!
//! # Quickstart: sharded passes
//!
//! Copy-level parallelism saturates once every worker has a copy; beyond
//! that, a single pass is serialized on one iterator. A [`ShardedStream`]
//! view partitions the snapshot into contiguous, order-preserving shards so
//! the estimator's order-insensitive passes (degree counting, closure
//! marking) run shard-parallel, with per-shard accumulators merged in shard
//! order — bit-identical results at any shard or worker count. The engine
//! does this automatically whenever it has more workers than runnable
//! copies (see [`EngineConfig`]'s `intra_task_sharding`); it is also
//! available directly:
//!
//! ```
//! use degentri::core::{EstimatorScratch, MainEstimator};
//! use degentri::prelude::*;
//! use degentri::stream::DEFAULT_BATCH_SIZE;
//!
//! let graph = degentri::gen::wheel(2000).unwrap();
//! let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(1));
//! let config = EstimatorConfig::builder()
//!     .epsilon(0.15)
//!     .kappa(3)
//!     .triangle_lower_bound(999)
//!     .seed(7)
//!     .try_build()
//!     .unwrap();
//!
//! let estimator = MainEstimator::new(config);
//! let sequential = estimator.run_seeded(&stream, 7).unwrap();
//!
//! // Four shards, two shard workers, one reusable scratch arena:
//! let view = ShardedStream::from_stream(&stream, 4);
//! let mut scratch = EstimatorScratch::new();
//! let sharded = estimator
//!     .run_seeded_sharded(&view, 7, DEFAULT_BATCH_SIZE, 2, &mut scratch)
//!     .unwrap();
//! assert_eq!(sharded.estimate.to_bits(), sequential.estimate.to_bits());
//! assert_eq!(view.passes(), 6); // sharding keeps the paper's pass budget
//! ```
//!
//! # Quickstart: counter-based randomness (`RngMode`)
//!
//! Under the default [`RngMode::Sequential`](core::RngMode) the estimators
//! consume one stateful PRNG stream in stream order, so only the
//! order-insensitive passes above can shard. Switching the configuration
//! to [`RngMode::Counter`](core::RngMode) derives every sampling decision
//! from `hash(seed, stream position, draw index)` instead (see
//! [`core::rng`] for the position-keyed reservoir rule) — same
//! distributions, but now **every** pass of both estimators is a fold with
//! an associative merge, so all six passes (and the ideal estimator's
//! three) run shard-parallel, and pass 5 collapses its per-candidate-edge
//! sampling into one table per distinct endpoint. The engine forces
//! counter mode onto its jobs by default; `job_rng_mode()` makes it
//! respect each job's own setting:
//!
//! ```
//! use degentri::core::{EstimatorScratch, MainEstimator, RngMode};
//! use degentri::prelude::*;
//! use degentri::stream::DEFAULT_BATCH_SIZE;
//!
//! let graph = degentri::gen::wheel(2000).unwrap();
//! let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(1));
//! let config = EstimatorConfig::builder()
//!     .epsilon(0.15)
//!     .kappa(3)
//!     .triangle_lower_bound(999)
//!     .rng_mode(RngMode::Counter)
//!     .seed(7)
//!     .try_build()
//!     .unwrap();
//!
//! // All six passes shard now — and still bit-identical to the plain run
//! // at every shard/worker count.
//! let estimator = MainEstimator::new(config.clone());
//! let plain = estimator.run_seeded(&stream, 7).unwrap();
//! let view = ShardedStream::from_stream(&stream, 8);
//! let mut scratch = EstimatorScratch::new();
//! let sharded = estimator
//!     .run_seeded_sharded(&view, 7, DEFAULT_BATCH_SIZE, 2, &mut scratch)
//!     .unwrap();
//! assert_eq!(sharded.estimate.to_bits(), plain.estimate.to_bits());
//! assert_eq!(sharded.sharded_passes, [true; 6]);
//!
//! // The engine runs jobs in counter mode by default and reports it:
//! let mut engine = Engine::new(EngineConfig::with_workers(2));
//! engine.submit(JobSpec::main("counter", config));
//! let report = engine.run(&stream).unwrap();
//! assert_eq!(report.stats.rng_mode, Some(RngMode::Counter));
//! ```
//!
//! # Quickstart: turnstile streams through the engine
//!
//! Insert/delete workloads run through the same engine: a
//! [`DynamicMemoryStream`] snapshot is shared across every submitted
//! `JobSpec::dynamic` job (no re-snapshotting between jobs), the engine
//! forces counter-mode randomness onto the turnstile estimator — its
//! sketch folds are linear, so spare workers shard each copy's passes
//! over a [`ShardedDynamicStream`] view — and results are bit-identical
//! to the standalone `degentri::dynamic` estimator at any worker count:
//!
//! ```
//! use degentri::core::RngMode;
//! use degentri::dynamic::{DynamicEstimatorConfig, DynamicTriangleEstimator};
//! use degentri::prelude::*;
//!
//! let graph = degentri::gen::wheel(300).unwrap();
//! let exact = degentri::graph::triangles::count_triangles(&graph);
//! // Insert every edge, plus churn: extra copies inserted then deleted.
//! let stream = DynamicMemoryStream::with_churn(&graph, 0.5, 7);
//! let config = DynamicEstimatorConfig::new(3, exact / 2)
//!     .with_epsilon(0.3)
//!     .with_copies(2)
//!     .with_seed(11)
//!     .with_max_samples(150);
//!
//! // Standalone reference in counter mode (the regime the engine forces):
//! let standalone = DynamicTriangleEstimator::new(
//!     config.clone().with_rng_mode(RngMode::Counter),
//! )
//! .run(&stream)
//! .unwrap();
//!
//! // The same job through the engine's shared dynamic-snapshot path:
//! let mut engine = Engine::new(EngineConfig::with_workers(4));
//! engine.submit(JobSpec::dynamic("churned wheel", config));
//! let report = engine.run_dynamic(&stream).unwrap();
//! assert_eq!(
//!     report.jobs[0].estimation().copy_estimates,
//!     standalone.copy_estimates,
//! );
//! let outcome = report.jobs[0].dynamic().unwrap();
//! assert_eq!(outcome.surviving_edges, graph.num_edges());
//! ```
//!
//! # Quickstart: fused sweep execution
//!
//! The engine runs counter-mode jobs **fused** by default: every copy of
//! every compatible job exposes its passes as resumable stage objects
//! (`begin_pass → fold → finish_pass`), and the scheduler executes each
//! pass stage as **one** sweep over the snapshot that feeds every copy's
//! fold — with cohort-level union probe structures, so each edge pays one
//! lookup for the whole cohort instead of one per copy. A four-copy job
//! therefore reads the snapshot six times, not twenty-four, and results
//! stay bit-identical to per-copy scheduling
//! (`EngineConfig::fused_execution(false)`). One [`Snapshot`] entry point
//! serves both stream flavors:
//!
//! ```
//! use degentri::prelude::*;
//!
//! let graph = degentri::gen::wheel(400).unwrap();
//! let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
//! let config = EstimatorConfig::builder()
//!     .kappa(3)
//!     .triangle_lower_bound(399)
//!     .copies(4)
//!     .seed(7)
//!     .try_build()
//!     .unwrap();
//!
//! // The unified entry point: one snapshot enum for edges or updates.
//! let snapshot = Snapshot::of_edges(&stream).unwrap();
//! let mut engine = Engine::new(EngineConfig::with_workers(2));
//! engine.submit(JobSpec::main("wheel", config.clone()));
//! let fused = engine.run_snapshot(&snapshot).unwrap();
//! // Four copies of six passes in six shared physical sweeps.
//! assert_eq!(fused.stats.fused_cohorts, 1);
//! assert_eq!(fused.stats.sweeps_executed, 6);
//!
//! // Per-copy scheduling reads the snapshot 24 times — and produces
//! // bit-identical estimates.
//! let mut engine = Engine::new(
//!     EngineConfig::builder()
//!         .workers(2)
//!         .fused_execution(false)
//!         .try_build()
//!         .unwrap(),
//! );
//! engine.submit(JobSpec::main("wheel", config));
//! let per_copy = engine.run_snapshot(&snapshot).unwrap();
//! assert_eq!(per_copy.stats.sweeps_executed, 24);
//! assert_eq!(
//!     fused.jobs[0].estimation().copy_estimates,
//!     per_copy.jobs[0].estimation().copy_estimates,
//! );
//! ```
//!
//! # Quickstart: observability
//!
//! Flip [`EngineConfig`]'s `recording` switch and the run records metrics
//! into lock-free per-worker lanes and attaches a
//! [`RunReport`](obs::RunReport) to the [`EngineReport`](engine::EngineReport):
//! a run → cohort → pass → shard breakdown with self/total times, work
//! tallies (items folded, probe hits, sketch updates), per-job
//! queue-to-completion latency, and the merged counter/span/histogram
//! snapshot. Recording is observation-only — estimates are bit-identical
//! with it on or off — and the default (off) compiles the instrumentation
//! points down to nothing. The report prints as an aligned text tree and
//! serializes to a stable hand-rolled JSON schema:
//!
//! ```
//! use degentri::obs::RunReport;
//! use degentri::prelude::*;
//!
//! let graph = degentri::gen::wheel(400).unwrap();
//! let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
//! let config = EstimatorConfig::builder()
//!     .kappa(3)
//!     .triangle_lower_bound(399)
//!     .copies(4)
//!     .seed(7)
//!     .try_build()
//!     .unwrap();
//!
//! let mut engine = Engine::new(
//!     EngineConfig::builder()
//!         .workers(2)
//!         .recording(true)
//!         .try_build()
//!         .unwrap(),
//! );
//! engine.submit(JobSpec::main("wheel", config.clone()));
//! let recorded = engine.run(&stream).unwrap();
//!
//! // The report nests the fused cohort's six passes inside the run:
//! let report = recorded.run_report.as_ref().unwrap();
//! assert_eq!(report.cohorts[0].passes.len(), 6);
//! let tree = report.to_string();
//! assert!(tree.contains("cohort six-pass") && tree.contains("p2_degrees"));
//!
//! // ...round-trips through its JSON schema...
//! let parsed = RunReport::from_json(&report.to_json()).unwrap();
//! assert_eq!(&parsed, report);
//!
//! // ...and recording never changes the estimate.
//! let mut silent = Engine::new(EngineConfig::with_workers(2));
//! silent.submit(JobSpec::main("wheel", config));
//! let baseline = silent.run(&stream).unwrap();
//! assert_eq!(
//!     recorded.jobs[0].estimation().copy_estimates,
//!     baseline.jobs[0].estimation().copy_estimates,
//! );
//! ```
//!
//! # Quickstart: robustness — retries, quorums, graceful degradation
//!
//! Execution failures are contained per job (a panicking, erroring, late,
//! or cancelled job never disturbs its batchmates), and an opt-in recovery
//! layer shrinks the failure unit further, to the **copy**: a
//! [`RetryPolicy`](engine::RetryPolicy) re-executes failed copies with
//! deterministic [`Backoff`](engine::Backoff) pacing — copy seeds are
//! position-keyed, so a retried copy reproduces its undisturbed result bit
//! for bit — and a [`QuorumPolicy`](engine::QuorumPolicy) lets a job that
//! still loses copies succeed **degraded**, aggregating exactly the
//! surviving copies and carrying a [`Degradation`](engine::Degradation)
//! record instead of an error. Both default off (all-or-nothing), and on a
//! clean run they are pure metadata:
//!
//! ```
//! use degentri::engine::{QuorumPolicy, RetryPolicy};
//! use degentri::prelude::*;
//!
//! let graph = degentri::gen::wheel(400).unwrap();
//! let stream = MemoryStream::from_graph(&graph, StreamOrder::AsGiven);
//! let config = EstimatorConfig::builder()
//!     .kappa(3)
//!     .triangle_lower_bound(399)
//!     .copies(3)
//!     .seed(7)
//!     .try_build()
//!     .unwrap();
//!
//! let mut engine = Engine::new(EngineConfig::with_workers(2));
//! engine.submit(
//!     JobSpec::main("resilient", config.clone())
//!         .retry(RetryPolicy::new(2))          // one retry per failed copy
//!         .quorum(QuorumPolicy::at_least(2)),  // then accept 2-of-3
//! );
//! let report = engine.run(&stream).unwrap();
//!
//! // Nothing failed, so nothing engaged: full strength, zero retries,
//! // and bit-identical to a job submitted without any policies.
//! assert!(report.jobs[0].is_ok() && !report.jobs[0].is_degraded());
//! assert_eq!(report.stats.copies_retried, 0);
//! assert_eq!(report.stats.jobs_degraded, 0);
//!
//! let mut plain = Engine::new(EngineConfig::with_workers(2));
//! plain.submit(JobSpec::main("plain", config));
//! assert_eq!(
//!     report.jobs[0].estimation().copy_estimates,
//!     plain.run(&stream).unwrap().jobs[0].estimation().copy_estimates,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use degentri_baselines as baselines;
pub use degentri_cliques as cliques;
pub use degentri_core as core;
pub use degentri_dynamic as dynamic;
pub use degentri_engine as engine;
pub use degentri_gen as gen;
pub use degentri_graph as graph;
pub use degentri_obs as obs;
pub use degentri_sketch as sketch;
pub use degentri_stream as stream;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use degentri_baselines::{BaselineOutcome, StreamingTriangleCounter};
    pub use degentri_cliques::{count_cliques, CliqueEstimator, CliqueEstimatorConfig};
    pub use degentri_core::{
        estimate_triangles, estimate_triangles_with_oracle, EstimatorConfig, RngMode,
        TriangleEstimation,
    };
    pub use degentri_dynamic::{
        CounterSelection, DynamicEstimatorConfig, DynamicOutcome, DynamicTriangleEstimator,
    };
    pub use degentri_engine::{
        parallel_estimate_triangles, Engine, EngineConfig, EngineStats, JobSpec,
    };
    pub use degentri_graph::{CsrGraph, Edge, GraphBuilder, Triangle, VertexId};
    pub use degentri_obs::RunReport;
    pub use degentri_stream::{
        DynamicEdgeStream, DynamicMemoryStream, EdgeStream, EdgeUpdate, MemoryStream,
        ShardedDynamicStream, ShardedStream, Snapshot, SpaceReport, StreamOrder,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let g = degentri_gen::wheel(10).unwrap();
        let stream = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        assert_eq!(EdgeStream::num_edges(&stream), 18);
        let _ = EstimatorConfig::builder().build();
    }

    #[test]
    fn engine_is_reachable_through_the_prelude() {
        use crate::prelude::*;
        let g = degentri_gen::wheel(60).unwrap();
        let stream = MemoryStream::from_graph(&g, StreamOrder::AsGiven);
        let config = EstimatorConfig::builder()
            .kappa(3)
            .triangle_lower_bound(59)
            .copies(3)
            .build();
        let parallel = parallel_estimate_triangles(&stream, &config, 2).unwrap();
        let sequential = estimate_triangles(&stream, &config).unwrap();
        assert_eq!(parallel.copy_estimates, sequential.copy_estimates);

        let mut engine = Engine::new(EngineConfig::with_workers(2));
        engine.submit(JobSpec::main("prelude", config));
        let report = engine.run(&stream).unwrap();
        assert_eq!(report.jobs.len(), 1);
        let _: EngineStats = report.stats;
    }
}
