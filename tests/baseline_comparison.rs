//! Cross-crate comparison tests: the baselines and the paper's estimator
//! agree with the exact count on the same streams, and the space ordering
//! between them matches the theory on low-degeneracy triangle-rich graphs
//! (the qualitative content of Table 1 / experiment E1).

use degentri::baselines::*;
use degentri::prelude::*;
use degentri_graph::properties::GraphProperties;
use degentri_graph::triangles::count_triangles;

#[test]
fn all_baselines_return_zero_on_triangle_free_stream() {
    let g = degentri::gen::grid(20, 20).unwrap();
    let stream = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(3));
    let baselines: Vec<Box<dyn StreamingTriangleCounter>> = vec![
        Box::new(ExactStreamCounter::new()),
        Box::new(BuriolEstimator::new(2000, 1)),
        Box::new(NeighborhoodSampler::new(2000, 1)),
        Box::new(JhaWedgeSampler::new(200, 500, 1)),
        Box::new(VertexSamplingEstimator::new(0.5, 1)),
        Box::new(TriestImpr::new(200, 1)),
        Box::new(DegeneracyObliviousEstimator::new(0.2, 1, 5.0, 1)),
    ];
    for b in baselines {
        let out = b.estimate(&stream);
        assert_eq!(out.estimate, 0.0, "{} should report zero", b.name());
    }
}

#[test]
fn exact_baseline_matches_ground_truth_everywhere() {
    for g in [
        degentri::gen::wheel(500).unwrap(),
        degentri::gen::barabasi_albert(500, 4, 2).unwrap(),
        degentri::gen::book(300).unwrap(),
    ] {
        let exact = count_triangles(&g);
        let stream = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(7));
        let out = ExactStreamCounter::new().estimate(&stream);
        assert_eq!(out.estimate, exact as f64);
    }
}

#[test]
fn degeneracy_aware_estimator_uses_less_space_than_oblivious_at_similar_accuracy() {
    // The headline comparison: on a low-degeneracy, triangle-rich graph the
    // degeneracy-aware sample sizes (∝ mκ/T) are far below the
    // degeneracy-oblivious ones (∝ m^{3/2}/T).
    let g = degentri::gen::barabasi_albert(4000, 6, 11).unwrap();
    let props = GraphProperties::compute(&g);
    let stream = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(5));
    let t_hint = props.triangles / 2;

    let aware_config = EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(props.degeneracy)
        .triangle_lower_bound(t_hint)
        .r_constant(10.0)
        .inner_constant(20.0)
        .assignment_constant(10.0)
        .copies(1)
        .seed(3)
        .build();
    let aware = degentri_core::estimate_triangles(&stream, &aware_config).unwrap();

    let oblivious = DegeneracyObliviousEstimator::new(0.15, t_hint, 10.0, 3).estimate(&stream);

    assert!(
        oblivious.space.peak_words > 3 * aware.space.peak_words,
        "oblivious {} words vs aware {} words",
        oblivious.space.peak_words,
        aware.space.peak_words
    );
}

#[test]
fn triest_accuracy_degrades_as_its_budget_shrinks_while_ours_is_budget_free() {
    // TRIÈST's accuracy is tied to the fraction of the stream its reservoir
    // holds: starve it to Θ(mκ/T) edges (the scaling the paper's estimator
    // lives at) and its error blows up, while the paper's estimator at its
    // own mκ/T-scaled sample sizes stays accurate. This is the qualitative
    // content of the Table-1 comparison without pretending the two share a
    // constant factor.
    let g = degentri::gen::wheel(12_000).unwrap();
    let exact = count_triangles(&g);
    let stream = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(17));

    let config = EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(3)
        .triangle_lower_bound(exact / 2)
        .r_constant(10.0)
        .inner_constant(20.0)
        .assignment_constant(6.0)
        .copies(5)
        .seed(9)
        .build();
    let ours = degentri_core::estimate_triangles(&stream, &config).unwrap();
    assert!(ours.relative_error(exact) < 0.3, "ours {}", ours.estimate);

    let m = g.num_edges();
    let starved_budget = 10 * m * 3 / exact as usize; // 10 · mκ/T ≈ 60 edges
    let generous_budget = m / 3;
    let mean_error = |budget: usize| {
        let total: f64 = (0..5u64)
            .map(|seed| {
                TriestImpr::new(budget, seed)
                    .estimate(&stream)
                    .relative_error(exact)
            })
            .sum();
        total / 5.0
    };
    let starved = mean_error(starved_budget);
    let generous = mean_error(generous_budget);
    assert!(
        starved > 2.0 * generous + 0.2,
        "starved TRIEST error {starved:.3} should be far above generous {generous:.3}"
    );
    assert!(
        starved > ours.relative_error(exact),
        "starved TRIEST error {starved:.3} vs ours {:.3}",
        ours.relative_error(exact)
    );
}

#[test]
fn vertex_sampling_baseline_is_accurate_with_adequate_probability() {
    let g = degentri::gen::triangular_lattice(40, 40).unwrap();
    let exact = count_triangles(&g);
    let stream = MemoryStream::from_graph(&g, StreamOrder::UniformRandom(23));
    let out = VertexSamplingEstimator::new(0.3, 5).estimate(&stream);
    assert!(
        out.relative_error(exact) < 0.35,
        "estimate {} vs exact {exact}",
        out.estimate
    );
}
