//! End-to-end integration tests: the full pipeline (generator → stream →
//! estimator) produces accurate estimates within the paper's pass and space
//! budgets, across graph families and stream orderings.

use degentri::prelude::*;
use degentri_core::ExactDegreeOracle;
use degentri_graph::degeneracy::degeneracy;
use degentri_graph::triangles::count_triangles;
use degentri_graph::CsrGraph;
use degentri_stream::PassCounter;

fn standard_config(kappa: usize, t_hint: u64, seed: u64) -> EstimatorConfig {
    EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(kappa)
        .triangle_lower_bound(t_hint.max(1))
        .r_constant(30.0)
        .inner_constant(60.0)
        .assignment_constant(30.0)
        .copies(9)
        .seed(seed)
        .build()
}

fn check_accuracy(graph: &CsrGraph, tolerance: f64, seed: u64) {
    let exact = count_triangles(graph);
    let kappa = degeneracy(graph);
    let stream = MemoryStream::from_graph(graph, StreamOrder::UniformRandom(seed));
    let config = standard_config(kappa, exact / 2, seed);
    let result = estimate_triangles(&stream, &config).unwrap();
    assert!(
        result.relative_error(exact) < tolerance,
        "estimate {} vs exact {exact} (tolerance {tolerance})",
        result.estimate
    );
}

#[test]
fn accurate_on_wheel() {
    check_accuracy(&degentri::gen::wheel(2000).unwrap(), 0.3, 1);
}

#[test]
fn accurate_on_triangular_lattice() {
    check_accuracy(&degentri::gen::triangular_lattice(45, 45).unwrap(), 0.3, 2);
}

#[test]
fn accurate_on_preferential_attachment() {
    check_accuracy(
        &degentri::gen::barabasi_albert(2000, 6, 5).unwrap(),
        0.35,
        3,
    );
}

#[test]
fn accurate_on_book() {
    check_accuracy(&degentri::gen::book(1000).unwrap(), 0.35, 4);
}

#[test]
fn accurate_on_friendship() {
    check_accuracy(&degentri::gen::friendship(700).unwrap(), 0.35, 5);
}

#[test]
fn accurate_on_planted_triangles() {
    check_accuracy(
        &degentri::gen::planted_triangles(4000, 3, 600, 11).unwrap(),
        0.35,
        6,
    );
}

#[test]
fn zero_estimate_on_triangle_free_families() {
    for graph in [
        degentri::gen::grid(30, 30).unwrap(),
        degentri::gen::complete_bipartite(20, 20).unwrap(),
    ] {
        let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(7));
        let config = standard_config(degeneracy(&graph).max(1), 1, 7);
        let result = estimate_triangles(&stream, &config).unwrap();
        assert_eq!(result.estimate, 0.0);
    }
}

#[test]
fn estimate_is_insensitive_to_stream_order() {
    let graph = degentri::gen::wheel(1500).unwrap();
    let exact = count_triangles(&graph);
    for (i, order) in [
        StreamOrder::AsGiven,
        StreamOrder::UniformRandom(3),
        StreamOrder::SortedLexicographic,
        StreamOrder::ReverseSorted,
        StreamOrder::Interleaved { chunks: 7 },
    ]
    .into_iter()
    .enumerate()
    {
        let stream = MemoryStream::from_graph(&graph, order);
        let config = standard_config(3, exact / 2, 100 + i as u64);
        let result = estimate_triangles(&stream, &config).unwrap();
        assert!(
            result.relative_error(exact) < 0.35,
            "order {order:?}: estimate {} vs exact {exact}",
            result.estimate
        );
    }
}

#[test]
fn main_estimator_respects_six_pass_budget() {
    let graph = degentri::gen::barabasi_albert(800, 5, 9).unwrap();
    let exact = count_triangles(&graph);
    let stream = PassCounter::new(MemoryStream::from_graph(
        &graph,
        StreamOrder::UniformRandom(1),
    ));
    let config = standard_config(5, exact / 2, 13);
    let result = estimate_triangles(&stream, &config).unwrap();
    assert_eq!(result.passes_per_copy, 6);
    assert_eq!(stream.passes(), 6 * config.copies as u32);
}

#[test]
fn ideal_estimator_respects_three_pass_budget_and_agrees_with_main() {
    let graph = degentri::gen::wheel(1200).unwrap();
    let exact = count_triangles(&graph);
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(21));
    let oracle = ExactDegreeOracle::build(&stream);
    let config = standard_config(3, exact / 2, 17);

    let ideal = degentri_core::estimate_triangles_with_oracle(&stream, &oracle, &config).unwrap();
    let main = estimate_triangles(&stream, &config).unwrap();

    assert_eq!(ideal.passes_per_copy, 3);
    assert_eq!(main.passes_per_copy, 6);
    assert!(
        ideal.relative_error(exact) < 0.3,
        "ideal {}",
        ideal.estimate
    );
    assert!(main.relative_error(exact) < 0.3, "main {}", main.estimate);
}

#[test]
fn retained_space_is_sublinear_on_triangle_rich_low_degeneracy_graphs() {
    // On the wheel family mκ/T = Θ(1); the retained state should be far
    // below m and grow much slower than m as n doubles. A single lean copy
    // keeps the absolute comparison against m meaningful at these sizes.
    let lean = |t: u64, seed: u64| {
        EstimatorConfig::builder()
            .epsilon(0.15)
            .kappa(3)
            .triangle_lower_bound(t)
            .r_constant(6.0)
            .inner_constant(12.0)
            .assignment_constant(4.0)
            .copies(1)
            .seed(seed)
            .build()
    };
    let small = degentri::gen::wheel(8000).unwrap();
    let large = degentri::gen::wheel(32000).unwrap();
    let run = |g: &CsrGraph, seed: u64| {
        let exact = count_triangles(g);
        let stream = MemoryStream::from_graph(g, StreamOrder::UniformRandom(seed));
        estimate_triangles(&stream, &lean(exact, seed)).unwrap()
    };
    let out_small = run(&small, 31);
    let out_large = run(&large, 32);
    assert!((out_small.space.peak_words as usize) < small.num_edges());
    assert!((out_large.space.peak_words as usize) < large.num_edges());
    let space_growth = out_large.space.peak_words as f64 / out_small.space.peak_words as f64;
    let edge_growth = large.num_edges() as f64 / small.num_edges() as f64;
    assert!(
        space_growth < edge_growth / 1.5,
        "space grew {space_growth:.2}x while edges grew {edge_growth:.2}x"
    );
}

#[test]
fn lower_bound_gadgets_separate_at_adequate_space() {
    let (p, q) = degentri::gen::LowerBoundGadget::parameters_for(8, 3);
    let yes = degentri::gen::LowerBoundGadget::yes_instance(p, q, 30, 3).unwrap();
    let no = degentri::gen::LowerBoundGadget::no_instance(p, q, 30, 1, 3).unwrap();
    let t_no = count_triangles(&no.graph);
    assert_eq!(count_triangles(&yes.graph), 0);
    assert!(t_no >= no.guaranteed_triangles());

    let config = standard_config(2 * p, t_no / 2, 19);
    let yes_stream = MemoryStream::from_graph(&yes.graph, StreamOrder::UniformRandom(2));
    let no_stream = MemoryStream::from_graph(&no.graph, StreamOrder::UniformRandom(2));
    let yes_result = estimate_triangles(&yes_stream, &config).unwrap();
    let no_result = estimate_triangles(&no_stream, &config).unwrap();
    assert_eq!(yes_result.estimate, 0.0);
    assert!(
        no_result.estimate > t_no as f64 / 3.0,
        "NO-instance estimate {} should be well above zero (T = {t_no})",
        no_result.estimate
    );
}
