//! Statistical properties of the estimators: (near-)unbiasedness, error
//! shrinking with the sample-size constants, agreement between the ideal
//! (degree-oracle) and the six-pass estimators, and behaviour when the
//! advice parameters (κ, T̂) are misestimated.

use degentri::prelude::*;
use degentri_core::median_of_means::{mean, sample_variance};
use degentri_core::{ExactDegreeOracle, IdealEstimator, MainEstimator};
use degentri_graph::triangles::count_triangles;

fn wheel_stream(n: usize, seed: u64) -> (MemoryStream, u64) {
    let g = degentri::gen::wheel(n).unwrap();
    let exact = count_triangles(&g);
    (
        MemoryStream::from_graph(&g, StreamOrder::UniformRandom(seed)),
        exact,
    )
}

#[test]
fn main_estimator_is_nearly_unbiased() {
    // Average many independent single-copy runs; the mean should approach
    // the exact count well within its standard error.
    let (stream, exact) = wheel_stream(600, 3);
    let config = EstimatorConfig::builder()
        .epsilon(0.2)
        .kappa(3)
        .triangle_lower_bound(exact / 2)
        .r_constant(10.0)
        .inner_constant(20.0)
        .assignment_constant(10.0)
        .copies(1)
        .build();
    let estimator = MainEstimator::new(config);
    let runs = 60;
    let estimates: Vec<f64> = (0..runs)
        .map(|i| estimator.run_seeded(&stream, 10_000 + i).unwrap().estimate)
        .collect();
    let mu = mean(&estimates).unwrap();
    let sd = sample_variance(&estimates).unwrap().sqrt();
    let standard_error = sd / (runs as f64).sqrt();
    assert!(
        (mu - exact as f64).abs() < 4.0 * standard_error + 0.05 * exact as f64,
        "mean {mu:.1} vs exact {exact} (SE {standard_error:.1})"
    );
}

#[test]
fn ideal_estimator_is_nearly_unbiased() {
    let (stream, exact) = wheel_stream(600, 5);
    let oracle = ExactDegreeOracle::build(&stream);
    let config = EstimatorConfig::builder()
        .epsilon(0.2)
        .kappa(3)
        .triangle_lower_bound(exact / 2)
        .r_constant(10.0)
        .copies(1)
        .build();
    let runs = 60;
    let estimates: Vec<f64> = (0..runs)
        .map(|i| {
            let mut c = config.clone();
            c.seed = 20_000 + i;
            IdealEstimator::new(c)
                .run(&stream, &oracle)
                .unwrap()
                .estimate
        })
        .collect();
    let mu = mean(&estimates).unwrap();
    let sd = sample_variance(&estimates).unwrap().sqrt();
    let standard_error = sd / (runs as f64).sqrt();
    assert!(
        (mu - exact as f64).abs() < 4.0 * standard_error + 0.05 * exact as f64,
        "mean {mu:.1} vs exact {exact} (SE {standard_error:.1})"
    );
}

#[test]
fn error_shrinks_as_sample_constants_grow() {
    // Lemmas 5.5/5.7: more samples ⇒ tighter concentration. Compare the
    // spread of single-copy estimates at a small and a large constant.
    let (stream, exact) = wheel_stream(900, 7);
    let spread = |constant: f64| {
        let config = EstimatorConfig::builder()
            .epsilon(0.2)
            .kappa(3)
            .triangle_lower_bound(exact / 2)
            .r_constant(constant)
            .inner_constant(2.0 * constant)
            .assignment_constant(constant)
            .copies(1)
            .build();
        let estimator = MainEstimator::new(config);
        let estimates: Vec<f64> = (0..24)
            .map(|i| estimator.run_seeded(&stream, 500 + i).unwrap().estimate)
            .collect();
        sample_variance(&estimates).unwrap().sqrt()
    };
    let coarse = spread(3.0);
    let fine = spread(30.0);
    assert!(
        fine < coarse,
        "spread should shrink with more samples: coarse {coarse:.1}, fine {fine:.1}"
    );
}

#[test]
fn underestimated_triangle_hint_still_works() {
    // T̂ is only a lower bound; supplying T/10 costs space (larger samples)
    // but must not hurt accuracy.
    let (stream, exact) = wheel_stream(1000, 9);
    let config = EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(3)
        .triangle_lower_bound(exact / 10)
        .r_constant(10.0)
        .inner_constant(20.0)
        .assignment_constant(10.0)
        .copies(7)
        .seed(1)
        .build();
    let result = degentri_core::estimate_triangles(&stream, &config).unwrap();
    assert!(
        result.relative_error(exact) < 0.3,
        "estimate {} vs exact {exact}",
        result.estimate
    );
}

#[test]
fn overestimated_degeneracy_still_works() {
    // Supplying a loose κ bound (e.g. 10 × the truth) costs space but not
    // correctness.
    let (stream, exact) = wheel_stream(1000, 11);
    let config = EstimatorConfig::builder()
        .epsilon(0.15)
        .kappa(30)
        .triangle_lower_bound(exact / 2)
        .r_constant(10.0)
        .inner_constant(20.0)
        .assignment_constant(10.0)
        .copies(7)
        .seed(2)
        .build();
    let result = degentri_core::estimate_triangles(&stream, &config).unwrap();
    assert!(
        result.relative_error(exact) < 0.3,
        "estimate {} vs exact {exact}",
        result.estimate
    );
}

#[test]
fn larger_sample_budget_costs_more_space() {
    let (stream, exact) = wheel_stream(2000, 13);
    let run = |constant: f64| {
        let config = EstimatorConfig::builder()
            .epsilon(0.15)
            .kappa(3)
            .triangle_lower_bound(exact / 2)
            .r_constant(constant)
            .inner_constant(2.0 * constant)
            .assignment_constant(constant)
            .copies(1)
            .seed(3)
            .build();
        degentri_core::estimate_triangles(&stream, &config).unwrap()
    };
    let lean = run(5.0);
    let rich = run(40.0);
    assert!(rich.space.peak_words > 3 * lean.space.peak_words);
}

#[test]
fn paper_faithful_parameters_are_derivable_even_if_impractical() {
    // The paper-faithful constants produce valid (huge) sample sizes; run
    // them through derivation only, not through an actual stream pass.
    let config = degentri_core::EstimatorConfig::paper_faithful(0.1, 3, 1_000);
    assert!(config.validate().is_ok());
    let derived = config.derive(100_000, 50_000);
    let practical = EstimatorConfig::builder()
        .epsilon(0.1)
        .kappa(3)
        .triangle_lower_bound(1_000)
        .build()
        .derive(100_000, 50_000);
    assert!(derived.r > 10 * practical.r);
}
