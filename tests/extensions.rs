//! Integration tests for the two extension subsystems: the ℓ-clique
//! estimator of Conjecture 7.1 (`degentri-cliques`) and the dynamic-stream
//! port (`degentri-dynamic`), exercised through the umbrella crate exactly
//! as an application would use them.

use degentri::cliques::{
    count_cliques, AssignmentMode, CliqueAssignmentOracle, CliqueAssignmentParams, CliqueEstimator,
    CliqueEstimatorConfig,
};
use degentri::dynamic::{DynamicEstimatorConfig, DynamicExactCounter, DynamicTriangleEstimator};
use degentri::graph::degeneracy::degeneracy;
use degentri::graph::triangles::count_triangles;
use degentri::prelude::*;

/// The ℓ = 3 instance of the clique estimator and the paper's triangle
/// estimator answer the same question; on an easy instance they must agree
/// with the exact count and (hence) roughly with each other.
#[test]
fn clique_estimator_at_l3_agrees_with_the_triangle_machinery() {
    let graph = degentri::gen::wheel(1200).unwrap();
    let exact = count_triangles(&graph);
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(3));

    let triangle_config = EstimatorConfig::builder()
        .epsilon(0.2)
        .kappa(3)
        .triangle_lower_bound(exact / 2)
        .seed(5)
        .build();
    let triangle_estimate = estimate_triangles(&stream, &triangle_config).unwrap();

    let clique_config = CliqueEstimatorConfig::builder(3)
        .epsilon(0.2)
        .kappa(3)
        .clique_lower_bound(exact / 2)
        .copies(5)
        .seed(7)
        .build();
    let clique_estimate = CliqueEstimator::new(clique_config).run(&stream).unwrap();

    assert!(triangle_estimate.relative_error(exact) < 0.4);
    assert!(clique_estimate.relative_error(exact) < 0.4);
}

/// Exact clique counts obey the nesting structure of k-trees: every K5 of a
/// 5-tree contains K4s and triangles, and the counts follow the closed forms
/// of the construction.
#[test]
fn ktree_clique_counts_follow_the_construction() {
    let k = 5usize;
    let n = 500usize;
    let graph = degentri::gen::random_ktree(n, k, 11).unwrap();
    assert_eq!(degeneracy(&graph), k);
    // Each attachment step adds C(k, l-1) new l-cliques to the seed clique's
    // C(k+1, l).
    let choose = |n: u64, r: u64| -> u64 {
        if r > n {
            return 0;
        }
        (0..r).fold(1u64, |acc, i| acc * (n - i) / (i + 1))
    };
    for l in 3..=5u64 {
        let expected =
            choose(k as u64 + 1, l) + (n as u64 - k as u64 - 1) * choose(k as u64, l - 1);
        assert_eq!(count_cliques(&graph, l as usize), expected, "l = {l}");
    }
}

/// The oracle-backed assignment mode must not change what is being estimated
/// (the total count), only how it is attributed — and on the book graph it
/// must keep the spine edge heavy.
#[test]
fn assignment_mode_estimates_the_same_quantity_on_the_book_graph() {
    let graph = degentri::gen::book(600).unwrap();
    let exact = count_triangles(&graph);
    let stream = MemoryStream::from_graph(&graph, StreamOrder::UniformRandom(9));

    let oracle = CliqueAssignmentOracle::build(
        &graph,
        CliqueAssignmentParams {
            clique_size: 3,
            epsilon: 0.25,
            kappa: 2,
        },
    );
    let assigned = oracle.assigned_counts(&graph);
    assert_eq!(assigned.values().sum::<u64>(), exact);

    let config = CliqueEstimatorConfig::builder(3)
        .epsilon(0.2)
        .kappa(2)
        .clique_lower_bound(exact / 2)
        .copies(5)
        .seed(3)
        .mode(AssignmentMode::MinCliqueEdge(oracle))
        .build();
    let out = CliqueEstimator::new(config).run(&stream).unwrap();
    assert!(
        out.relative_error(exact) < 0.4,
        "estimate {} vs exact {exact}",
        out.estimate
    );
}

/// End-to-end dynamic-stream run through the umbrella crate: churn must not
/// bias the estimate, and the exact turnstile counter provides the ground
/// truth for the surviving graph.
#[test]
fn dynamic_estimator_tracks_the_surviving_graph_under_churn() {
    let graph = degentri::gen::random_ktree(500, 3, 7).unwrap();
    let exact = count_triangles(&graph);
    let stream = DynamicMemoryStream::with_churn(&graph, 0.6, 13);
    assert!(stream.num_deletions() > 0);

    let truth = DynamicExactCounter::new().count(&stream);
    assert_eq!(truth.triangles, exact);

    let config = DynamicEstimatorConfig::new(3, exact / 2)
        .with_epsilon(0.3)
        .with_copies(5)
        .with_seed(21)
        .with_constants(1.0, 2.0)
        .with_max_samples(800);
    let out = DynamicTriangleEstimator::new(config).run(&stream).unwrap();
    assert!(
        out.relative_error(exact) < 0.5,
        "estimate {} vs exact {exact}",
        out.estimate
    );
    assert_eq!(out.surviving_edges, graph.num_edges());
}

/// Deleting every triangle-closing edge must drive the dynamic estimate to
/// exactly zero, not merely to a small value.
#[test]
fn dynamic_estimator_sees_deletions_that_destroy_all_triangles() {
    let graph = degentri::gen::wheel(500).unwrap();
    // Keep only the spokes (edges incident to the hub 0): a star, no triangles.
    let stream = DynamicMemoryStream::insert_then_delete(
        &graph,
        |e| e.u().index() == 0 || e.v().index() == 0,
        17,
    );
    let truth = DynamicExactCounter::new().count(&stream);
    assert_eq!(truth.triangles, 0);

    let config = DynamicEstimatorConfig::new(3, 100)
        .with_epsilon(0.3)
        .with_copies(3)
        .with_seed(2)
        .with_max_samples(400);
    let out = DynamicTriangleEstimator::new(config).run(&stream).unwrap();
    assert_eq!(out.estimate, 0.0);
}

/// The prelude exposes the extension entry points alongside the original ones.
#[test]
fn prelude_covers_the_extensions() {
    let graph = degentri::gen::complete(10).unwrap();
    assert_eq!(count_cliques(&graph, 4), 210);
    let _ = CliqueEstimatorConfig::builder(4).build();
    let _ = DynamicEstimatorConfig::new(3, 10);
    let stream = DynamicMemoryStream::insert_only(&graph, 1);
    assert_eq!(stream.num_updates(), 45);
    let update = EdgeUpdate::insert(Edge::from_raw(0, 1));
    assert_eq!(update.delta(), 1);
}
