//! Cross-crate checks of the paper's structural lemmas and premises on the
//! generator suite: Lemma 3.1 (Chiba–Nishizeki), Corollary 3.2, Lemma 5.12
//! (heavy/costly triangles), the κ ≤ √(2m) fact, the arboricity sandwich,
//! and the `T = Ω(κ²)` premise on the triangle-rich families.

use degentri::core::heavy::HeavyCostlyAnalysis;
use degentri::core::theory::GraphParameters;
use degentri::graph::arboricity::ArboricityBounds;
use degentri::graph::degeneracy::CoreDecomposition;
use degentri::graph::properties::GraphProperties;
use degentri::graph::triangles::TriangleCounts;
use degentri::graph::CsrGraph;

fn suite() -> Vec<(String, CsrGraph)> {
    vec![
        ("wheel_2000".into(), degentri::gen::wheel(2000).unwrap()),
        (
            "lattice_40x40".into(),
            degentri::gen::triangular_lattice(40, 40).unwrap(),
        ),
        (
            "ba_3000_6".into(),
            degentri::gen::barabasi_albert(3000, 6, 1).unwrap(),
        ),
        (
            "chunglu_3000".into(),
            degentri::gen::chung_lu(3000, 2.3, 60.0, 2).unwrap(),
        ),
        (
            "gnp_1000".into(),
            degentri::gen::gnp(1000, 0.01, 3).unwrap(),
        ),
        ("book_1500".into(), degentri::gen::book(1500).unwrap()),
        (
            "friendship_800".into(),
            degentri::gen::friendship(800).unwrap(),
        ),
        (
            "rmat_12".into(),
            degentri::gen::rmat(12, 30_000, 0.57, 0.19, 0.19, 4).unwrap(),
        ),
        (
            "planted".into(),
            degentri::gen::planted_triangles(3000, 3, 500, 5).unwrap(),
        ),
        ("complete_40".into(), degentri::gen::complete(40).unwrap()),
    ]
}

#[test]
fn chiba_nishizeki_lemma_holds_on_suite() {
    for (name, g) in suite() {
        let kappa = CoreDecomposition::compute(&g).degeneracy as u64;
        let m = g.num_edges() as u64;
        let d_e = g.edge_degree_sum();
        assert!(
            d_e <= 2 * m * kappa.max(1),
            "{name}: d_E = {d_e} exceeds 2mκ = {}",
            2 * m * kappa
        );
    }
}

#[test]
fn triangle_count_bound_holds_on_suite() {
    for (name, g) in suite() {
        let kappa = CoreDecomposition::compute(&g).degeneracy as u64;
        let m = g.num_edges() as u64;
        let t = TriangleCounts::compute(&g).total;
        assert!(
            t <= 2 * m * kappa.max(1),
            "{name}: T = {t} exceeds 2mκ = {}",
            2 * m * kappa
        );
    }
}

#[test]
fn degeneracy_is_at_most_sqrt_2m_on_suite() {
    for (name, g) in suite() {
        let kappa = CoreDecomposition::compute(&g).degeneracy as f64;
        let bound = (2.0 * g.num_edges() as f64).sqrt();
        assert!(
            kappa <= bound + 1.0,
            "{name}: κ = {kappa} > √(2m) = {bound:.1}"
        );
    }
}

#[test]
fn arboricity_sandwich_holds_on_suite() {
    for (name, g) in suite() {
        let b = ArboricityBounds::compute(&g);
        assert!(
            b.is_consistent(),
            "{name}: inconsistent arboricity bounds {b:?}"
        );
        let kappa = CoreDecomposition::compute(&g).degeneracy;
        // α ≤ κ ≤ 2α − 1 ⇒ the certified lower bound cannot exceed κ and the
        // upper bound is κ itself.
        assert!(b.lower <= kappa.max(1), "{name}");
        assert_eq!(b.upper, kappa, "{name}");
    }
}

#[test]
fn heavy_and_costly_triangles_are_a_small_fraction() {
    // Lemma 5.12: ≤ 2εT heavy and ≤ 2εT costly triangles.
    let epsilon = 0.2;
    for (name, g) in suite() {
        let props = GraphProperties::compute(&g);
        if props.triangles == 0 {
            continue;
        }
        let analysis = HeavyCostlyAnalysis::compute(&g, epsilon, props.degeneracy.max(1));
        let t = props.triangles as f64;
        assert!(
            (analysis.heavy_triangles as f64) <= 2.0 * epsilon * t + 1e-9,
            "{name}: {} heavy triangles out of {}",
            analysis.heavy_triangles,
            props.triangles
        );
        assert!(
            (analysis.costly_triangles as f64) <= 2.0 * epsilon * t + 1e-9,
            "{name}: {} costly triangles out of {}",
            analysis.costly_triangles,
            props.triangles
        );
        assert!(
            analysis.unassignable_fraction() <= 4.0 * epsilon + 1e-9,
            "{name}: unassignable fraction {}",
            analysis.unassignable_fraction()
        );
    }
}

#[test]
fn triangle_rich_families_satisfy_t_at_least_kappa_squared() {
    // The paper's premise for real-world graphs (Section 1.1): T = Ω(κ²).
    for name in ["wheel", "lattice", "ba", "book", "friendship"] {
        let g = match name {
            "wheel" => degentri::gen::wheel(2000).unwrap(),
            "lattice" => degentri::gen::triangular_lattice(40, 40).unwrap(),
            "ba" => degentri::gen::barabasi_albert(3000, 6, 1).unwrap(),
            "book" => degentri::gen::book(1500).unwrap(),
            _ => degentri::gen::friendship(800).unwrap(),
        };
        let props = GraphProperties::compute(&g);
        assert!(
            props.triangle_to_degeneracy_squared_ratio() >= 1.0,
            "{name}: T = {} vs κ² = {}",
            props.triangles,
            props.degeneracy * props.degeneracy
        );
    }
}

#[test]
fn paper_bound_beats_prior_bounds_on_low_degeneracy_triangle_rich_graphs() {
    for (name, g) in [
        ("wheel", degentri::gen::wheel(4000).unwrap()),
        ("ba", degentri::gen::barabasi_albert(4000, 6, 9).unwrap()),
        (
            "lattice",
            degentri::gen::triangular_lattice(60, 60).unwrap(),
        ),
    ] {
        let props = GraphProperties::compute(&g);
        let params = GraphParameters::new(
            props.num_vertices,
            props.num_edges,
            props.triangles,
            props.degeneracy,
            props.max_degree,
        );
        assert!(
            params.improvement_over_prior() > 2.0,
            "{name}: improvement only {:.2}",
            params.improvement_over_prior()
        );
        assert!(params.in_dominating_regime(), "{name}");
    }
}

#[test]
fn wheel_graph_matches_section_1_1_arithmetic() {
    // m = 2(n−1), T = n−1, κ = 3 ⇒ mκ/T = 6 independent of n.
    for n in [1 << 10, 1 << 13, 1 << 16] {
        let g = degentri::gen::wheel(n).unwrap();
        let props = GraphProperties::compute(&g);
        assert_eq!(props.num_edges, 2 * (n - 1));
        assert_eq!(props.triangles, (n - 1) as u64);
        assert_eq!(props.degeneracy, 3);
        let params = GraphParameters::new(
            props.num_vertices,
            props.num_edges,
            props.triangles,
            props.degeneracy,
            props.max_degree,
        );
        assert!((params.bound_m_kappa_over_t() - 6.0).abs() < 0.1);
        assert!(params.bound_m_over_sqrt_t() > (n as f64).sqrt());
    }
}
